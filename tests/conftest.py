"""Suite-wide fixtures.

The sweep cache's disk tier (``repro.harness.cache``) defaults to
``.repro-cache/`` under the working directory; tests must neither read a
developer's warm cache (entries could predate a local edit only in their
working tree, not in the salt-hashed installed sources) nor litter the
repository, so the whole session is pointed at a throwaway directory.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    previous = {
        name: os.environ.get(name) for name in ("REPRO_CACHE_DIR", "REPRO_JOBS")
    }
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    # An inherited REPRO_JOBS would silently fan tests out; tests opt into
    # parallelism explicitly.
    os.environ.pop("REPRO_JOBS", None)
    yield
    for name, value in previous.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
