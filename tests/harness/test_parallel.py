"""Parallel sweep execution and the two-tier sweep cache.

The headline guarantees:

* a sweep fanned out over worker processes is **byte-identical** to the
  serial sweep (record books pickle to the same bytes, figure tables
  match);
* the in-memory tier is LRU-bounded;
* the disk tier is namespaced by fault plan and code version, and
  ``clear_cache`` / ``cache=False`` really do bypass it.
"""

import pickle

import pytest

from repro.harness import runner
from repro.harness.cache import DiskCache
from repro.harness.narada_experiments import run_scaling_sweep
from repro.harness.parallel import map_points, resolve_jobs
from repro.harness.scale import Scale
from repro.telemetry import Telemetry
from repro.telemetry import context as tel_context

#: Tiny scale: parallel tests run whole sweeps several times over.
TINY = Scale(
    name="tiny",
    duration=6.0,
    creation_interval_narada=0.005,
    creation_interval_rgma=0.005,
    warmup=(0.5, 1.0),
    drain=4.0,
)

SWEEP = (20, 40)


@pytest.fixture(autouse=True)
def clear_runner_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


# ------------------------------------------------------------- resolve_jobs

def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_then_default(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None, default=2) == 5
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs(None, default=2) == 2
    assert resolve_jobs(None) == 1


def test_resolve_jobs_rejects_nonpositive():
    with pytest.raises(ValueError):
        resolve_jobs(0)


# -------------------------------------------------------------- determinism

def test_parallel_sweep_byte_identical_to_serial():
    serial = run_scaling_sweep(SWEEP, dbn=False, scale=TINY, seed=9, jobs=1)
    parallel = run_scaling_sweep(SWEEP, dbn=False, scale=TINY, seed=9, jobs=4)
    assert list(serial) == list(parallel) == list(SWEEP)
    for n in SWEEP:
        assert pickle.dumps(serial[n].book) == pickle.dumps(parallel[n].book)
        assert serial[n].mean_rtt_ms == parallel[n].mean_rtt_ms
        assert serial[n].vmstat == parallel[n].vmstat


def test_fig7_table_identical_serial_vs_parallel(monkeypatch):
    monkeypatch.setattr(
        "repro.harness.narada_experiments.SINGLE_SWEEP", SWEEP
    )
    monkeypatch.setattr(
        "repro.harness.narada_experiments.DBN_SWEEP", (30,)
    )
    serial = runner.run("fig7", scale=TINY, seed=9, jobs=1, cache=False)
    parallel = runner.run("fig7", scale=TINY, seed=9, jobs=3, cache=False)
    assert serial.series == parallel.series
    assert serial.notes == parallel.notes


def test_map_points_preserves_input_order():
    points = [
        dict(connections=n, scale=TINY, seed=9) for n in (40, 20, 30)
    ]
    results = map_points(
        "repro.harness.narada_experiments", "narada_run", points, jobs=3
    )
    assert [r.connections for r in results] == [40, 20, 30]


def test_parallel_merges_telemetry_like_serial():
    tel_parallel = Telemetry("parallel")
    with tel_context.session(tel_parallel):
        parallel = run_scaling_sweep(
            SWEEP, dbn=False, scale=TINY, seed=11, jobs=2
        )
    tel_serial = Telemetry("serial")
    with tel_context.session(tel_serial):
        serial = run_scaling_sweep(
            SWEEP, dbn=False, scale=TINY, seed=11, jobs=1
        )
    assert [s.to_dict() for s in tel_parallel.tracer.spans] == [
        s.to_dict() for s in tel_serial.tracer.spans
    ]
    # Spans re-bind to the *unpickled* books, so span-based decompositions
    # (fig15-style) keep working after fan-out.
    for n in SWEEP:
        spans = tel_parallel.spans_for_book(parallel[n].book)
        assert len(spans) == len(parallel[n].book.records)
        assert len(spans) == len(tel_serial.spans_for_book(serial[n].book))
    counters = lambda tel: {
        str(key): instrument.value
        for key, instrument in tel.metrics
        if instrument.kind == "counter"
    }
    assert counters(tel_parallel) == counters(tel_serial)
    assert len(tel_parallel.samplers) == len(tel_serial.samplers)
    assert [s.summary() for s in tel_parallel.samplers] == [
        s.summary() for s in tel_serial.samplers
    ]


# ------------------------------------------------------------ memory tier

def test_memory_tier_is_lru_bounded(monkeypatch):
    monkeypatch.setattr(runner, "SWEEP_CACHE_MAX", 2)
    # An active session makes _cached skip the disk tier, isolating the LRU.
    with tel_context.session(Telemetry("lru")):
        calls = []

        def builder(tag):
            def build():
                calls.append(tag)
                return tag

            return build

        runner._cached(("a",), builder("a"))
        runner._cached(("b",), builder("b"))
        runner._cached(("a",), builder("a2"))  # hit; refreshes a
        runner._cached(("c",), builder("c"))  # evicts b (LRU)
        runner._cached(("a",), builder("a3"))  # still cached
        runner._cached(("b",), builder("b2"))  # rebuilt
        assert calls == ["a", "b", "c", "b2"]


def test_cache_disabled_calls_builder_every_time(monkeypatch):
    monkeypatch.setattr(runner, "_cache_enabled", False)
    calls = []
    for _ in range(2):
        runner._cached(("k",), lambda: calls.append(1))
    assert len(calls) == 2


# -------------------------------------------------------------- disk tier

def test_disk_tier_survives_memory_clear():
    built = []

    def build():
        built.append(1)
        return {"value": 42}

    key = ("disk_roundtrip", 1)
    assert runner._cached(key, build) == {"value": 42}
    runner._sweep_cache.clear()  # drop the memory tier only
    assert runner._cached(key, build) == {"value": 42}
    assert len(built) == 1  # second lookup came from disk


def test_fault_plan_namespaces_disk_entries(monkeypatch):
    """A fault-plan sweep must never satisfy a fault-free lookup."""
    key = ("chaos_namespacing", 5)
    monkeypatch.setattr(runner, "_active_fault_plan", "loss_burst")
    assert runner._cached(key, lambda: "faulted") == "faulted"

    monkeypatch.setattr(runner, "_active_fault_plan", None)
    runner._sweep_cache.clear()  # force both lookups to the disk tier
    assert runner._cached(key, lambda: "clean") == "clean"

    # ... while the same plan does hit its own entry.
    monkeypatch.setattr(runner, "_active_fault_plan", "loss_burst")
    runner._sweep_cache.clear()
    assert runner._cached(key, lambda: "rebuilt?") == "faulted"


def test_telemetry_session_bypasses_disk_tier():
    """Disk entries carry no live spans, so --trace runs must not use them."""
    key = ("telemetry_bypass", 3)
    assert runner._cached(key, lambda: "cold") == "cold"  # seeds the disk
    runner._sweep_cache.clear()
    with tel_context.session(Telemetry("probe")):
        assert runner._cached(key, lambda: "live") == "live"
    # Sessionless lookups still see the sessionless entry.
    runner._sweep_cache.clear()
    assert runner._cached(key, lambda: "rebuilt?") == "cold"


def test_clear_cache_empties_both_tiers():
    key = ("clear_both", 7)
    runner._cached(key, lambda: "warm")
    assert DiskCache().get(runner._disk_key(key)) == "warm"
    runner.clear_cache()
    assert runner._sweep_cache == {}
    assert DiskCache().get(runner._disk_key(key)) is None


def test_corrupt_disk_entry_is_a_miss():
    cache = DiskCache()
    key = ("corrupt", 1)
    cache.put(key, "good")
    cache.path_for(key).write_bytes(b"\x80garbage")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()  # dropped, not retried forever


def test_scale_cache_key_distinguishes_same_name():
    fast = Scale("bench", 1.0, 0.01, 0.01, (0.1, 0.2), 1.0)
    assert fast.cache_key() != Scale.bench().cache_key()
    assert Scale.bench().cache_key() == Scale.bench().cache_key()
