"""Runner/telemetry integration: cache context, CLI trace flags.

The sweep cache must never hand a fault-free (or span-free) sweep to a
lookup made under a fault plan (or an active telemetry session) — the
regression this file pins down — and the ``--trace`` / ``--metrics-out``
CLI flags must produce a schema-valid JSONL trace end to end.
"""

import json

import pytest

from repro.core import ExperimentResult
from repro.harness import runner
from repro.harness.narada_experiments import narada_run
from repro.harness.scale import Scale
from repro.telemetry import Telemetry
from repro.telemetry.context import session
from repro.telemetry.exporters import validate_trace_file

SMOKE = Scale.smoke()


@pytest.fixture(autouse=True)
def clear_runner_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


# ------------------------------------------------------------- cache context
def test_cache_reuses_only_matching_context(monkeypatch):
    builds = []

    def lookup():
        return runner._cached(("sweep", "smoke", 1), lambda: builds.append(1))

    lookup()
    lookup()
    assert len(builds) == 1  # plain lookups share one build

    # An active fault plan must force a fresh sweep (and get its own entry).
    monkeypatch.setattr(runner, "_active_fault_plan", "loss_burst")
    lookup()
    lookup()
    assert len(builds) == 2
    monkeypatch.setattr(runner, "_active_fault_plan", None)

    # A telemetry session must force a fresh sweep too: a cached sweep was
    # built without span hooks, so reusing it would return empty traces.
    with session(Telemetry("t1")):
        lookup()
        lookup()  # ... but within one session the sweep is shared
    assert len(builds) == 3

    # A *different* session cannot reuse the previous session's sweep.
    with session(Telemetry("t2")):
        lookup()
    assert len(builds) == 4

    lookup()  # back to the plain cached entry
    assert len(builds) == 4


def test_run_sets_and_restores_active_fault_plan(monkeypatch):
    seen = {}

    def stub(scale, seed, fault_plan):
        seen["plan"] = fault_plan
        seen["context"] = runner._cache_context()
        return ExperimentResult("chaos_threeway", "stub", "", "")

    monkeypatch.setitem(runner.EXPERIMENTS, "chaos_threeway", stub)
    runner.run("chaos_threeway", scale=SMOKE, seed=1, fault_plan="mixed")
    assert seen["plan"] == "mixed"
    assert seen["context"][0] == "mixed"  # folded into cache keys inside
    assert runner._active_fault_plan is None  # restored afterwards

    # Default plan applies when --fault-plan is not given.
    runner.run("chaos_threeway", scale=SMOKE, seed=1)
    assert seen["plan"] == "loss_burst"

    with pytest.raises(ValueError, match="only applies to chaos"):
        runner.run("table1", scale=SMOKE, seed=1, fault_plan="mixed")


# ------------------------------------------------------------------ CLI path
def test_cli_trace_and_metrics_out(tmp_path, monkeypatch, capsys):
    def tiny(scale, seed):
        run = narada_run(20, scale=scale, seed=seed)
        result = ExperimentResult("tiny", "tiny traced run", "", "ms")
        result.table = (["received"], [[run.received]])
        return result

    monkeypatch.setitem(runner.EXPERIMENTS, "tiny", tiny)
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    rc = runner.main([
        "tiny", "--scale", "smoke", "--seed", "3",
        "--trace", str(trace), "--metrics-out", str(metrics),
    ])
    assert rc == 0

    summary = validate_trace_file(str(trace))
    assert summary["spans"] > 0
    assert summary["complete"] == summary["spans"]
    assert summary["middlewares"] == ["narada"]

    doc = json.loads(metrics.read_text())
    assert doc["metrics"]["narada/harness/messages_sent"]["value"] > 0
    assert doc["samplers"] and doc["samplers"][0]["node"] == "hydra1"
    assert doc["runs"][0]["middleware"] == "narada"

    out = capsys.readouterr().out
    assert "== telemetry:" in out
    assert f"-> {trace}" in out


def test_cli_without_flags_prints_no_telemetry(monkeypatch, capsys):
    monkeypatch.setitem(
        runner.EXPERIMENTS,
        "tiny",
        lambda scale, seed: ExperimentResult("tiny", "t", "", ""),
    )
    assert runner.main(["tiny", "--scale", "smoke"]) == 0
    assert "telemetry" not in capsys.readouterr().out
