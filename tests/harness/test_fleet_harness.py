"""Fleet harness acceptance: sweep-cache folding, sweep legs and the
fleet_scaling result shape (incl. the agreement + zoom gates)."""

import pytest

from repro.harness import runner
from repro.harness.cache import DiskCache
from repro.harness.fleet_experiments import (
    AGREEMENT_RTOL,
    COHORT_SIZE,
    fleet_scaling,
    run_fleet_sweep,
    sweep_cache_key,
    sweep_points,
    zoom_check,
)
from repro.harness.scale import Scale
from repro.powergrid.fleet_engine import FLEET_MIDDLEWARES, verify_agreement

SMOKE = Scale.smoke()
POINTS = (200, 400)


def _sweep_key(middleware="narada", mode="aggregate", points=POINTS,
               cohort_size=COHORT_SIZE, scale=SMOKE, seed=1):
    return (
        "fleet",
        sweep_cache_key(points, middleware, mode, cohort_size),
        scale.cache_key(),
        seed,
    )


# ------------------------------------------------------------ cache keying

def test_disk_cache_separates_aggregate_from_process():
    """The satellite's regression: an aggregate-mode entry must never
    satisfy a per-process lookup (or vice versa)."""
    cache = DiskCache()
    assert cache.path_for(_sweep_key(mode="aggregate")) != cache.path_for(
        _sweep_key(mode="process")
    )


def test_disk_cache_separates_cohort_and_model_parameters():
    cache = DiskCache()
    base = cache.path_for(_sweep_key())
    assert base != cache.path_for(_sweep_key(cohort_size=1024))
    assert base != cache.path_for(_sweep_key(middleware="plog"))
    assert base != cache.path_for(_sweep_key(points=(200,)))
    assert base != cache.path_for(_sweep_key(seed=2))


def test_sweep_cache_key_folds_mode_cohort_and_service_model():
    key = sweep_cache_key((200,), "narada", "aggregate", 512)
    assert len(key) == 1
    n, mw, mode, cohort, model_key = key[0]
    assert (n, mw, mode, cohort) == (200, "narada", "aggregate", 512)
    assert model_key[0] == "narada"  # recalibration invalidates the sweep


# ------------------------------------------------------------- sweep legs

def test_run_fleet_sweep_returns_point_keyed_outcomes():
    sweep = run_fleet_sweep(POINTS, "narada", "aggregate", scale=SMOKE)
    assert set(sweep) == set(POINTS)
    for n, outcome in sweep.items():
        assert outcome.n_publishers == n
        assert outcome.published > 0


def test_zoom_check_verifies_and_returns_both():
    plain, zoomed = zoom_check("narada", 300, SMOKE, zoom=(64, 128))
    assert plain.mode == "aggregate"
    assert zoomed.mode == "aggregate+zoom"
    verify_agreement(plain, zoomed, rtol=AGREEMENT_RTOL)


# ----------------------------------------------------------- result shape

def test_fleet_scaling_result_shape_and_gates():
    aggregate = {
        mw: run_fleet_sweep(POINTS, mw, "aggregate", scale=SMOKE)
        for mw in FLEET_MIDDLEWARES
    }
    process = {
        mw: run_fleet_sweep(POINTS[:1], mw, "process", scale=SMOKE)
        for mw in FLEET_MIDDLEWARES
    }
    result = fleet_scaling(aggregate, process, scale=SMOKE, zoom=(16, 48))
    assert result.experiment_id == "fleet_scaling"
    headers, rows = result.table
    # 2 aggregate + 1 process rows per middleware
    assert len(rows) == 3 * len(FLEET_MIDDLEWARES)
    for mw in FLEET_MIDDLEWARES:
        assert f"{mw} aggregate" in result.series
        assert f"{mw} process" in result.series
        assert result.meta["agreement"][mw][POINTS[0]] is True
        assert result.meta["zoom_ok"][mw] is True
    assert set(result.meta["speedup_per_publisher"]) == set(FLEET_MIDDLEWARES)


def test_fleet_scaling_raises_on_disagreement():
    sweep = run_fleet_sweep(POINTS[:1], "narada", "aggregate", scale=SMOKE)
    n = POINTS[0]
    import dataclasses
    tampered = {n: dataclasses.replace(sweep[n], lost=sweep[n].lost + 1)}
    with pytest.raises(AssertionError, match="disagree"):
        fleet_scaling(
            {"narada": sweep}, {"narada": tampered}, scale=SMOKE, zoom=None
        )


# ----------------------------------------------------------- registration

def test_runner_registers_fleet_scaling():
    assert "fleet_scaling" in runner.EXPERIMENTS
    assert "fleet_scaling" in runner.DESCRIPTIONS


def test_sweep_points_per_mode():
    agg = sweep_points(SMOKE, "aggregate")
    proc = sweep_points(SMOKE, "process")
    assert max(agg) == 1_000_000
    assert set(proc) <= set(agg)  # every reference point has an aggregate twin
