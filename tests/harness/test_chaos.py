"""Chaos experiment family: registration, plan plumbing, and (slow) the
acceptance properties — loss under faults, recovery, and bit-identical
same-seed reruns."""

import pytest

from repro.faults import PLANS, named_plan
from repro.harness import runner
from repro.harness.scale import Scale


def test_chaos_experiments_are_registered():
    for experiment_id in runner.CHAOS_EXPERIMENTS:
        assert experiment_id in runner.EXPERIMENTS
        assert experiment_id in runner.DESCRIPTIONS
        assert experiment_id in runner.list_experiments()


def test_fault_plan_is_rejected_for_non_chaos_experiments():
    with pytest.raises(ValueError, match="only applies to chaos"):
        runner.run("table1", scale="smoke", fault_plan="loss_burst")


def test_chaos_experiment_rejects_unknown_plan_before_running():
    with pytest.raises(ValueError, match="unknown fault plan"):
        runner.run("chaos_threeway", scale="smoke", fault_plan="bogus")


def test_cli_exposes_fault_plan_choices():
    with pytest.raises(SystemExit):
        runner.main(["chaos_threeway", "--fault-plan", "bogus"])
    assert runner.main(["--list"]) == 0


@pytest.mark.slow
def test_same_seed_chaos_runs_are_bit_identical():
    """Acceptance: identical fault schedule + seed => identical results."""
    import numpy as np

    from repro.faults import RetryPolicy
    from repro.harness.plog_experiments import plog_run
    from repro.plog import PlogConfig

    config = PlogConfig().with_(
        producer_retry=RetryPolicy(retries=4, backoff=0.1),
        consumer_recovery=True,
    )
    scale = Scale.named("smoke")

    def one_run():
        return plog_run(
            100,
            transport_kind="udp",
            scale=scale,
            seed=9,
            config=config,
            fault_plan=named_plan("loss_burst"),
        )

    a, b = one_run(), one_run()
    assert a.sent == b.sent
    assert a.received == b.received
    assert a.loss_rate == b.loss_rate
    assert a.producer_retries == b.producer_retries
    assert np.array_equal(a.rtts, b.rtts)
    assert a.fault_log == b.fault_log


@pytest.mark.slow
def test_chaos_threeway_smoke_acceptance():
    """Acceptance: loss burst is visible without retry, healed with it."""
    result = runner.run("chaos_threeway", scale="smoke")
    header, rows = result.table
    assert len(rows) == 4
    runs = result.meta["runs"]
    assert runs["Plog (UDP, no retry)"].loss_rate > 0.0
    assert runs["Plog (UDP, retry)"].loss_rate < 0.005
    assert runs["R-GMA (TCP)"].loss_rate == 0.0
    assert any(line.startswith("fault:") for line in result.notes)


@pytest.mark.slow
def test_chaos_broker_failover_ordering():
    """Recovery machinery strictly improves loss: one-shot > retry > failover."""
    result = runner.run("chaos_broker_failover", scale="smoke")
    header, rows = result.table
    losses = [float(row[3].rstrip("%")) / 100.0 for row in rows]
    assert losses[0] > losses[1] > losses[2] or (
        losses[0] > losses[1] and losses[2] == 0.0
    )
    assert losses[2] < 0.005


def test_all_plans_resolve():
    for name in PLANS:
        template = named_plan(name)
        plan = template(100.0, 30.0)
        assert len(plan) >= 1
