"""Tests for the experiment harness at reduced (test-sized) loads.

The full sweeps run in benchmarks/; here we check the machinery: runs
complete, records are produced, figures assemble, shapes hold at small N.
"""

import pytest

from repro.harness.narada_experiments import narada_run
from repro.harness.rgma_experiments import rgma_run
from repro.harness.scale import Scale
from repro.harness import runner

SMOKE = Scale.smoke()


@pytest.fixture(autouse=True)
def clear_runner_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


# ------------------------------------------------------------------- narada
def test_narada_run_produces_steady_state_records():
    run = narada_run(100, scale=SMOKE, seed=3)
    assert not run.oom
    assert run.sent > 0
    assert run.received == run.sent
    assert 0.5 < run.mean_rtt_ms < 50


def test_narada_run_udp_slower_than_tcp():
    tcp = narada_run(100, transport_kind="tcp", scale=SMOKE, seed=3)
    udp = narada_run(100, transport_kind="udp", scale=SMOKE, seed=3)
    assert udp.mean_rtt_ms > tcp.mean_rtt_ms


def test_narada_run_dbn_crosses_network():
    run = narada_run(80, dbn=True, scale=SMOKE, seed=3)
    assert run.received == run.sent
    total_forwards = sum(
        s["forwarded"] for s in run.broker_stats.values()
    )
    assert total_forwards > 0  # events crossed the BNM


def test_narada_oom_wall_reproduced_when_budget_small():
    from repro.narada import NaradaConfig

    config = NaradaConfig(native_budget_bytes=50 * 256 * 1024)  # 50 threads
    run = narada_run(100, scale=SMOKE, seed=3, config=config)
    assert run.oom
    assert run.refused > 0


def test_scale_presets():
    assert Scale.named("full").duration == 1800.0
    assert Scale.named("bench").duration < 200
    with pytest.raises(ValueError):
        Scale.named("nope")


# -------------------------------------------------------------------- rgma
def test_rgma_run_produces_records():
    run = rgma_run(20, scale=SMOKE, seed=3)
    assert not run.oom
    assert run.sent > 0
    assert run.loss_rate < 0.05
    assert 100 < run.mean_rtt_ms < 4000


def test_rgma_distributed_faster_than_single_at_same_load():
    single = rgma_run(60, scale=SMOKE, seed=3)
    dist = rgma_run(60, distributed=True, scale=SMOKE, seed=3)
    assert dist.mean_rtt_ms < single.mean_rtt_ms


def test_rgma_secondary_producer_adds_delay():
    run = rgma_run(10, secondary_producer=True, scale=SMOKE, seed=3)
    assert run.received > 0
    assert run.mean_rtt_ms > 29_000  # the 30 s republish delay


def test_rgma_skip_warmup_loses_first_tuples():
    # Warm-up must exceed the mediation period for the clean case — exactly
    # the paper's point: "each thread must wait for a short time (5 ~ 10
    # seconds) before publishing data otherwise data will probably be lost".
    scale = Scale(
        name="test", duration=30.0, creation_interval_narada=0.01,
        creation_interval_rgma=0.01, warmup=(5.0, 7.0), drain=10.0,
    )
    lossy = rgma_run(60, skip_warmup=True, scale=scale, seed=3)
    clean = rgma_run(60, skip_warmup=False, scale=scale, seed=3)
    from repro.core import rtt_stats

    lossy_total = rtt_stats(lossy.book, since=0.0)
    clean_total = rtt_stats(clean.book, since=0.0)
    assert lossy_total.loss_rate > 0
    assert clean_total.loss_rate == 0


# ------------------------------------------------------------------ runner
def test_runner_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        runner.run("fig99")


def test_runner_table1():
    result = runner.run("table1", scale="smoke")
    assert result.table is not None
    text = result.render()
    assert "Pentium III" in text
    assert "NaradaBrokering" in text


def test_runner_fig15_decomposition_shape():
    result = runner.run("fig15", scale="smoke")
    assert result.table is not None
    rows = {row[0]: row[1:] for row in result.table[1]}
    rgma_prt, rgma_pt, rgma_srt, rgma_rtt = rows["RGMA"]
    narada_rtt = rows["Narada"][3]
    # Paper Fig 15: R-GMA's PT dominates; Narada's phases are all short.
    assert rgma_pt > rgma_prt and rgma_pt > rgma_srt
    assert rgma_rtt > 50 * narada_rtt


def test_runner_cache_reuses_sweeps(monkeypatch):
    calls = {"n": 0}
    from repro.harness import narada_experiments as ne

    original = ne.run_comparison_tests

    def counting(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(ne, "run_comparison_tests", counting)
    monkeypatch.setattr(
        ne, "COMPARISON_TESTS", {"TCP": dict(transport_kind="tcp")}
    )
    monkeypatch.setattr(ne, "COMPARISON_CONNECTIONS", 40)
    runner.run("table2_fig3", scale="smoke", seed=5)
    runner.run("fig4", scale="smoke", seed=5)
    assert calls["n"] == 1  # second figure reused the cached sweep


def test_runner_main_cli(capsys, monkeypatch):
    from repro.harness import narada_experiments as ne

    rc = runner.main(["table1", "--scale", "smoke"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "table1" in out


def test_experiment_ids_cover_design_inventory():
    """Every experiment in DESIGN.md §4 has a registered id."""
    for required in (
        "table1", "table2_fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "losses",
        "table3", "table3_extended", "plog_scaling", "plog_percentiles",
        "fig15_threeway",
    ):
        assert required in runner.EXPERIMENT_IDS


def test_runner_list_flag(capsys):
    rc = runner.main(["--list"])
    out = capsys.readouterr().out
    assert rc == 0
    for experiment_id in runner.EXPERIMENT_IDS:
        assert experiment_id in out
    assert "Partitioned log" in out  # descriptions, not just ids


def test_runner_every_id_has_a_description():
    assert set(runner.DESCRIPTIONS) == set(runner.EXPERIMENT_IDS)


def test_runner_no_args_errors(capsys):
    with pytest.raises(SystemExit):
        runner.main([])


def test_runner_fig15_threeway_shape():
    result = runner.run("fig15_threeway", scale="smoke")
    rows = {row[0]: row[1:] for row in result.table[1]}
    assert set(rows) == {"RGMA", "Narada", "Plog"}
    plog_prt, plog_pt, plog_srt, plog_rtt = rows["Plog"]
    rgma_rtt = rows["RGMA"][3]
    # The plog's RTT is linger-dominated: tens of ms — an order of magnitude
    # above Narada but two below R-GMA's mediated SQL pipeline.
    assert rows["Narada"][3] < plog_rtt < rgma_rtt
    assert plog_prt > plog_srt  # the produce ack includes the linger
