"""Federation harness acceptance: sweep-cache namespacing, routed-vs-
broadcast behaviour, fault recovery and span decomposition."""

from repro.faults import FaultPlan
from repro.harness.cache import DiskCache
from repro.harness.federation_experiments import (
    FANOUT,
    federation_broadcast_run,
    federation_run,
    federation_scaling,
    sweep_cache_key,
)
from repro.harness.scale import Scale
from repro.telemetry import Telemetry, phase_breakdown
from repro.telemetry.context import session

SMOKE = Scale.smoke()


def _sweep_key(routing, counts=(3, 7), fanout=FANOUT, scale=SMOKE, seed=1):
    return (
        "federation",
        sweep_cache_key(counts, fanout, routing),
        scale.cache_key(),
        seed,
    )


# ------------------------------------------------------------ cache keying

def test_disk_cache_separates_routing_modes():
    cache = DiskCache()
    routed = cache.path_for(_sweep_key("routed"))
    broadcast = cache.path_for(_sweep_key("broadcast"))
    assert routed != broadcast


def test_disk_cache_separates_topology_shape():
    cache = DiskCache()
    base = cache.path_for(_sweep_key("routed"))
    assert base != cache.path_for(_sweep_key("routed", counts=(3, 7, 15)))
    assert base != cache.path_for(_sweep_key("routed", fanout=3))
    assert base != cache.path_for(_sweep_key("routed", seed=2))


def test_sweep_cache_key_carries_depth_fanout_routing():
    key = sweep_cache_key((3, 7), 2, "routed")
    assert key == (
        (3, ("federation_params", 2, 2, "routed")),
        (7, ("federation_params", 3, 2, "routed")),
    )


# ------------------------------------------------------------- run smokes

def test_federation_run_delivers_everything():
    run = federation_run(3, scale=SMOKE)
    assert run.routing == "routed"
    assert run.sent > 0
    assert run.loss_rate == 0.0
    assert run.converged
    assert run.per_link_mean > 0
    assert run.orphaned_up == 0
    # covering bound: the root holds at most one entry per (child x topic)
    # plus its local control-room topics
    root = run.broker_stats["fed0"]
    assert root["routing_entries"] <= 2 * 3 + 3


def test_broadcast_leg_floods_every_link():
    routed = federation_run(7, scale=SMOKE)
    broadcast = federation_broadcast_run(7, scale=SMOKE)
    assert broadcast.routing == "broadcast"
    assert broadcast.loss_rate == 0.0
    # the headline: the routed tree moves strictly less per link
    assert routed.per_link_mean < broadcast.per_link_mean
    # ... and the broadcast DBN flooded the idle links the tree skipped
    assert min(broadcast.link_messages.values()) > 0
    assert min(routed.link_messages.values()) == 0  # leaf downlinks idle


def test_federation_scaling_result_shape():
    routed = {n: federation_run(n, scale=SMOKE) for n in (3, 7)}
    broadcast = {n: federation_broadcast_run(n, scale=SMOKE) for n in (3, 7)}
    result = federation_scaling(routed, broadcast)
    assert result.experiment_id == "federation_scaling"
    headers, rows = result.table
    assert len(rows) == 2
    assert {"routed", "broadcast"} <= set(result.series)
    # broadcast grows faster than routed between the two scales
    assert (
        broadcast[7].per_link_mean / broadcast[3].per_link_mean
        > routed[7].per_link_mean / routed[3].per_link_mean
    )


# ---------------------------------------------------------------- recovery

def test_broker_crash_fault_plan_reparents_and_recovers():
    def plan(measure_since, duration):
        return FaultPlan().broker_crash(
            at=measure_since + 0.25 * duration,
            broker="fed1",
            restart_after=0.3 * duration,
        )

    run = federation_run(7, scale=SMOKE, fault_plan=plan, detect_interval=0.5)
    assert run.reparents >= 2  # crash rewire + restore rewires
    assert run.converged
    # the tree keeps delivering through the outage window; the only losses
    # are events orphaned while uplinks were down
    assert run.received > 0
    assert run.sent - run.received <= run.orphaned_up + run.sent // 10


def test_tree_link_partition_is_held_not_lost():
    # TCP holds stream traffic across a partition: events published in the
    # window arrive after the heal, so the run ends converged and lossless.
    def plan(measure_since, duration):
        return FaultPlan().partition(
            at=measure_since + 0.2 * duration,
            duration=0.2 * duration,
            hosts=("fed5",),
        )

    run = federation_run(7, scale=SMOKE, fault_plan=plan)
    assert run.converged
    assert run.loss_rate == 0.0


# --------------------------------------------------------------- telemetry

def test_federated_spans_decompose_and_count_hops():
    tel = Telemetry("federation test")
    with session(tel):
        run = federation_run(7, scale=SMOKE)
    spans = tel.spans_for_book(run.book)
    assert spans
    assert all(s.middleware == "federation" for s in spans)
    phases = phase_breakdown(spans, since=run.measure_since)
    assert phases.prt_ms >= 0
    assert phases.pt_ms > 0
    assert phases.srt_ms >= 0
    # a leaf publish crosses 3 brokers to reach the control room: more
    # broker-side marks than a single-broker path would ever produce
    assert max(s.hops for s in spans) >= 4
    # the first broker to see the event recorded itself on the span
    assert any(
        s.components.get("broker_in", "").startswith("fed") for s in spans
    )


def test_link_counters_reach_metrics_registry():
    tel = Telemetry("federation counters")
    with session(tel):
        federation_run(3, scale=SMOKE)
    link_counters = [
        key
        for key, _instrument in tel.metrics
        if key.middleware == "federation" and key.component.startswith("link:")
    ]
    assert link_counters, "per-link telemetry counters missing"
