"""Scenario experiment family: registration, CLI plumbing, and (slow) the
acceptance properties — byte-identical same-seed scorecards and the plog
acks=all zero-duplicate guarantee."""

import pytest

from repro.harness import runner, scenario_experiments
from repro.scenario import SCENARIOS


def test_scenario_experiments_are_registered():
    for experiment_id in runner.SCENARIO_EXPERIMENTS:
        assert experiment_id in runner.EXPERIMENTS
        assert experiment_id in runner.DESCRIPTIONS
        assert experiment_id in runner.list_experiments()


def test_scenario_flag_is_rejected_for_other_experiments():
    with pytest.raises(ValueError, match="--scenario only applies"):
        runner.run("table1", scale="smoke", scenario="storm_front")
    with pytest.raises(ValueError, match="--scenario only applies"):
        runner.run("chaos_threeway", scale="smoke", scenario="storm_front")


def test_scenario_experiment_rejects_unknown_scenario_before_running():
    with pytest.raises(ValueError, match="unknown scenario"):
        runner.run("scenario_threeway", scale="smoke", scenario="heat_dome")


def test_fault_plan_is_accepted_by_scenario_experiments_only_if_known():
    with pytest.raises(ValueError, match="unknown fault plan"):
        runner.run("scenario_threeway", scale="smoke", fault_plan="bogus")


def test_cli_exposes_scenario_choices():
    with pytest.raises(SystemExit):
        runner.main(["scenario_threeway", "--scenario", "heat_dome"])


def test_scenario_cache_key_is_stable_and_structure_sensitive():
    a = scenario_experiments.scenario_cache_key("storm_front")
    b = scenario_experiments.scenario_cache_key("storm_front")
    c = scenario_experiments.scenario_cache_key("alarm_storm")
    assert a == b
    assert a != c
    assert a[0] == "storm_front"


def test_default_scenarios_are_in_the_library():
    for experiment_id, default in runner._SCENARIO_DEFAULT.items():
        assert experiment_id in runner.SCENARIO_EXPERIMENTS
        assert default in SCENARIOS
    for name, template in SCENARIOS.items():
        assert template(0.0, 1.0).name == name


@pytest.mark.slow
def test_same_seed_scorecards_are_byte_identical():
    """Acceptance: same scenario + seed => byte-identical scorecard."""
    a = runner.run("scenario_threeway", scale="smoke", seed=3)
    b = runner.run("scenario_threeway", scale="smoke", seed=3)
    assert a.meta["scorecard"] == b.meta["scorecard"]
    assert a.table == b.table


@pytest.mark.slow
def test_plog_acks_all_leg_has_zero_duplicates():
    """Acceptance: the plog acks=all leg delivers exactly-once."""
    result = runner.run("scenario_threeway", scale="smoke")
    plog = result.meta["scores"]["Plog (TCP, acks=all)"]
    assert plog["duplicates"] == 0
    assert plog["duplicate_pct"] == 0.0
    # The scorecard row renders the same guarantee.
    headers, rows = result.table[0], result.meta["scorecard"]
    dup_col = headers.index("dup")
    (plog_row,) = [r for r in rows if r[0] == "Plog (TCP, acks=all)"]
    assert plog_row[dup_col] == "0.000%"


@pytest.mark.slow
def test_scorecard_shape_matches_the_leg_set():
    result = runner.run("scenario_threeway", scale="smoke")
    rows = result.meta["scorecard"]
    assert rows == result.table[1]
    assert len(rows) == len(scenario_experiments.THREEWAY_LEGS)
    assert result.meta["scenario"] == "storm_front"
