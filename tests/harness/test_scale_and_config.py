"""Tests for scale presets, env selection and config derivation."""

import pytest

from repro.harness.scale import Scale
from repro.narada import NaradaConfig
from repro.rgma import RGMAConfig


def test_from_env_default_is_bench(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert Scale.from_env().name == "bench"


def test_from_env_full(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    scale = Scale.from_env()
    assert scale.name == "full"
    assert scale.duration == 1800.0
    assert scale.creation_interval_narada == 0.5
    assert scale.warmup == (10.0, 20.0)


def test_full_scale_matches_paper_parameters():
    """§III.E/F: 0.5 s (Narada) and 1 s (R-GMA) creation stagger, 10-20 s
    warm-up, 30-minute tests."""
    full = Scale.full()
    assert full.creation_interval_narada == 0.5
    assert full.creation_interval_rgma == 1.0
    assert full.duration == 30 * 60


def test_narada_config_with_derivation():
    base = NaradaConfig()
    variant = base.with_(broadcast_flaw=False, aggregation_window=0.1)
    assert base.broadcast_flaw is True
    assert variant.broadcast_flaw is False
    assert variant.aggregation_window == 0.1
    assert variant.routing_cpu == base.routing_cpu  # untouched fields copy


def test_narada_config_frozen():
    config = NaradaConfig()
    with pytest.raises(Exception):
        config.routing_cpu = 1.0  # type: ignore[misc]


def test_rgma_config_paper_constants():
    """The values §III.F states explicitly are defaults, not knobs we moved."""
    config = RGMAConfig()
    assert config.latest_retention == 30.0
    assert config.history_retention == 60.0
    assert config.poll_interval == 0.1
    assert config.secondary_producer_delay == 30.0
    assert config.max_connections == 1000  # "increased to 1000"
    assert config.heap_bytes == 1024**3  # -Xmx1024m


def test_narada_config_paper_constants():
    config = NaradaConfig()
    assert config.heap_bytes == 1024**3  # -Xms1024m -Xmx1024m
    # The thread wall must sit between the paper's observed 3000-works and
    # 4000-fails points.
    assert 3000 < config.native_budget_bytes / config.thread_stack_bytes < 4000
