"""Tests for the SOAP codec and the WS publishing proxy."""

import numpy as np
import pytest

from repro.cluster import HydraCluster
from repro.jms import MapMessage, Topic
from repro.narada import Broker, narada_connection_factory
from repro.powergrid import narada_map_message
from repro.powergrid.generator import PowerGenerator
from repro.sim import Simulator
from repro.transport import TcpTransport
from repro.webservices import SoapCodec, WsPublishProxy, WsPublisherClient

TOPIC = Topic("power.monitoring")


def monitoring_message(gen_id=1):
    gen = PowerGenerator(gen_id, np.random.default_rng(3))
    return narada_map_message(gen.sample(10.0))


# ---------------------------------------------------------------------- codec
def test_xml_expansion_is_severalfold():
    codec = SoapCodec()
    message = monitoring_message()
    message.destination = TOPIC
    factor = codec.expansion_factor(message)
    assert 2.0 < factor < 10.0


def test_float_values_counted():
    codec = SoapCodec()
    encoding = codec.encode(monitoring_message())
    # Paper payload: 5 floats + 3 doubles.
    assert encoding.float_values == 8


def test_encode_cpu_scales_with_floats():
    codec = SoapCodec()
    few = MapMessage()
    few.set_string("s", "x")
    many = MapMessage()
    for i in range(20):
        many.set_double(f"d{i}", 1.0)
    assert codec.encode(many).encode_cpu > codec.encode(few).encode_cpu


def test_non_map_messages_encodable():
    from repro.jms import TextMessage

    codec = SoapCodec()
    encoding = codec.encode(TextMessage("hello world"))
    assert encoding.xml_bytes > len("hello world")


# ---------------------------------------------------------------------- proxy
def build_proxy_env():
    sim = Simulator(seed=63)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    broker = Broker(sim, cluster.node("hydra1"), "b")
    broker.serve(tcp, 5045)
    # Native subscriber.
    got = []

    def subscribe():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra3"), "hydra1", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(subscribe())

    # The proxy, with its own JMS connection, on hydra2.
    def build_proxy():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra2"), "hydra1", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        return WsPublishProxy(
            sim, cluster.node("hydra2"), tcp, 8099, conn, TOPIC
        )

    proxy = sim.run_process(build_proxy())
    return sim, cluster, tcp, broker, proxy, got


def test_ws_publish_reaches_native_subscriber():
    sim, cluster, tcp, broker, proxy, got = build_proxy_env()
    client = WsPublisherClient(sim, tcp, cluster.node("hydra4"), "hydra2", 8099)

    def publish():
        latency = yield from client.publish(monitoring_message(7))
        return latency

    latency = sim.run_process(publish())
    sim.run(until=sim.now + 2.0)
    assert len(got) == 1
    assert got[0].get_int("genid") == 7
    assert proxy.published == 1
    assert latency > 0


def test_ws_path_much_slower_than_native_jms():
    """The §III.D claim: SOAP publishing costs ~an order of magnitude more."""
    sim, cluster, tcp, broker, proxy, got = build_proxy_env()
    ws_client = WsPublisherClient(sim, tcp, cluster.node("hydra4"), "hydra2", 8099)

    def ws_publish():
        times = []
        for i in range(10):
            latency = yield from ws_client.publish(monitoring_message(i))
            times.append(latency)
            yield sim.timeout(0.1)
        return times

    ws_times = sim.run_process(ws_publish())

    def native_publish():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra4"), "hydra1", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        pub = session.create_publisher(TOPIC)
        times = []
        for i in range(10):
            t0 = sim.now
            yield from pub.publish(monitoring_message(i))
            times.append(sim.now - t0)
            yield sim.timeout(0.1)
        return times

    native_times = sim.run_process(native_publish())
    assert sum(ws_times) > 4 * sum(native_times)
