"""Tests for the GMA abstraction: directory service and transfer modes."""

import pytest

from repro.cluster import HydraCluster
from repro.gma import (
    DirectoryService,
    NotificationTransfer,
    ProducerRecord,
    PublishSubscribeTransfer,
    QueryResponseTransfer,
)
from repro.sim import Simulator


class ListProducer:
    def __init__(self, name, address, events=()):
        self.record = ProducerRecord(name, "producer", "gridmon", address)
        self.events = list(events)

    def events_since(self, cursor):
        return self.events[cursor:]

    def all_events(self):
        return list(self.events)


class ListConsumer:
    def __init__(self, name, address):
        self.record = ProducerRecord(name, "consumer", "gridmon", address)
        self.got = []

    def deliver(self, events):
        self.got.extend(events)


def setup():
    sim = Simulator(seed=31)
    cluster = HydraCluster(sim)
    return sim, cluster


# ------------------------------------------------------------------ directory
def test_directory_publish_and_search():
    sim, cluster = setup()
    ds = DirectoryService(sim, cluster.node("hydra1"))
    p = ProducerRecord("pp1", "producer", "gridmon", "hydra2")
    c = ProducerRecord("c1", "consumer", "gridmon", "hydra3")

    def run():
        yield from ds.publish(p)
        yield from ds.publish(c)
        producers = yield from ds.search(kind="producer")
        gridmon = yield from ds.search(event_type="gridmon")
        return producers, gridmon

    producers, gridmon = sim.run_process(run())
    assert [r.name for r in producers] == ["pp1"]
    assert {r.name for r in gridmon} == {"pp1", "c1"}
    assert len(ds) == 2


def test_directory_unpublish():
    sim, cluster = setup()
    ds = DirectoryService(sim, cluster.node("hydra1"))

    def run():
        yield from ds.publish(ProducerRecord("x", "producer", "t", "hydra2"))
        ds.unpublish("x")
        found = yield from ds.search()
        return found

    assert sim.run_process(run()) == []


def test_directory_search_costs_time():
    sim, cluster = setup()
    ds = DirectoryService(sim, cluster.node("hydra1"))

    def run():
        t0 = sim.now
        yield from ds.search()
        return sim.now - t0

    assert sim.run_process(run()) > 0


def test_directory_refresh_overwrites():
    sim, cluster = setup()
    ds = DirectoryService(sim, cluster.node("hydra1"))

    def run():
        yield from ds.publish(ProducerRecord("x", "producer", "a", "hydra2"))
        yield from ds.publish(ProducerRecord("x", "producer", "b", "hydra2"))
        found = yield from ds.search(event_type="b")
        return found

    assert len(sim.run_process(run())) == 1


# -------------------------------------------------------------- transfer modes
def test_query_response_returns_all_in_one_response():
    sim, cluster = setup()
    producer = ListProducer("pp", "hydra1", events=["e1", "e2", "e3"])
    consumer = ListConsumer("c", "hydra2")
    qr = QueryResponseTransfer(sim, cluster.lan, producer, consumer)

    def run():
        events = yield from qr.query()
        return events

    assert sim.run_process(run()) == ["e1", "e2", "e3"]
    assert consumer.got == ["e1", "e2", "e3"]


def test_notification_producer_initiates():
    sim, cluster = setup()
    producer = ListProducer("pp", "hydra1", events=["n1", "n2"])
    consumer = ListConsumer("c", "hydra2")
    notify = NotificationTransfer(sim, cluster.lan, producer, consumer)

    def run():
        n = yield from notify.notify()
        return n

    assert sim.run_process(run()) == 2
    assert consumer.got == ["n1", "n2"]


def test_pubsub_streams_continuously_and_terminates():
    sim, cluster = setup()
    producer = ListProducer("pp", "hydra1")
    consumer = ListConsumer("c", "hydra2")
    ps = PublishSubscribeTransfer(
        sim, cluster.lan, producer, consumer, period=1.0
    )
    ps.start()

    def feed():
        for i in range(5):
            producer.events.append(f"e{i}")
            yield sim.timeout(1.0)
        yield sim.timeout(3.0)
        ps.terminate()

    sim.process(feed())
    sim.run(until=20.0)
    assert consumer.got == [f"e{i}" for i in range(5)]
    count_at_terminate = len(consumer.got)
    producer.events.append("late")
    sim.run(until=30.0)
    assert len(consumer.got) == count_at_terminate  # stream really stopped


def test_transfer_accounts_events():
    sim, cluster = setup()
    producer = ListProducer("pp", "hydra1", events=["a", "b"])
    consumer = ListConsumer("c", "hydra2")
    notify = NotificationTransfer(sim, cluster.lan, producer, consumer)

    def run():
        yield from notify.notify()

    sim.run_process(run())
    assert notify.events_transferred == 2
