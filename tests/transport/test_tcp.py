"""Tests for the TCP transport: handshake, delivery, ordering, close."""

import pytest

from repro.cluster import HydraCluster
from repro.sim import Simulator
from repro.transport import ChannelClosed, TcpTransport, TransportError
from repro.transport.base import EOF


def setup():
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    return sim, cluster, tcp


def test_connect_requires_listener():
    sim, cluster, tcp = setup()

    def client():
        yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)

    with pytest.raises(TransportError, match="refused"):
        sim.run_process(client())


def test_connect_creates_channel_pair():
    sim, cluster, tcp = setup()
    accepted = []
    tcp.listen(cluster.node("hydra2"), 9000, accepted.append)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        return ch

    ch = sim.run_process(client())
    assert len(accepted) == 1
    assert ch.peer is accepted[0]
    assert accepted[0].peer is ch
    assert ch.host == "hydra1"
    assert ch.peer_host == "hydra2"
    assert sim.now > 0  # handshake took time


def test_send_delivers_payload_to_peer_inbox():
    sim, cluster, tcp = setup()
    server_channels = []
    tcp.listen(cluster.node("hydra2"), 9000, server_channels.append)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        ev = yield from ch.send({"k": "v"}, 512)
        yield ev  # wait for delivery
        return ev.value

    latency = sim.run_process(client())
    assert latency > 0
    server = server_channels[0]
    assert len(server.inbox) == 1
    d = server.inbox.get_nowait()
    assert d.payload == {"k": "v"}
    assert d.nbytes == 512
    assert d.delivered_at - d.sent_at == pytest.approx(latency)


def test_send_returns_before_delivery():
    """Blocking TCP send() returns once data is buffered, not delivered."""
    sim, cluster, tcp = setup()
    tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        t0 = sim.now
        ev = yield from ch.send("x", 100_000)
        returned_at = sim.now
        yield ev
        delivered_at = sim.now
        return returned_at - t0, delivered_at - t0

    send_time, delivery_time = sim.run_process(client())
    assert send_time < delivery_time


def test_in_order_delivery_many_messages():
    sim, cluster, tcp = setup()
    received = []
    server_ch = []

    def acceptor(ch):
        server_ch.append(ch)

        def reader():
            while True:
                d = yield ch.receive()
                if d.payload is EOF:
                    return
                received.append(d.payload)

        sim.process(reader())

    tcp.listen(cluster.node("hydra2"), 9000, acceptor)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        for i in range(50):
            yield from ch.send(i, 400)
        yield sim.timeout(1.0)
        ch.close()

    sim.process(client())
    sim.run()
    assert received == list(range(50))


def test_send_on_closed_channel_raises():
    sim, cluster, tcp = setup()
    tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        ch.close()
        yield from ch.send("x", 10)

    with pytest.raises(ChannelClosed):
        sim.run_process(client())


def test_close_delivers_eof_to_peer():
    sim, cluster, tcp = setup()
    chans = []
    tcp.listen(cluster.node("hydra2"), 9000, chans.append)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        ch.close()
        d = yield chans[0].receive()
        return d.payload is EOF

    assert sim.run_process(client()) is True


def test_duplicate_listen_rejected():
    sim, cluster, tcp = setup()
    tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)
    with pytest.raises(TransportError, match="already bound"):
        tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)


def test_unlisten_frees_port():
    sim, cluster, tcp = setup()
    tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)
    tcp.unlisten(cluster.node("hydra2"), 9000)
    tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)


def test_acceptor_exception_propagates_to_connector():
    sim, cluster, tcp = setup()

    def refuse(ch):
        raise TransportError("server full")

    tcp.listen(cluster.node("hydra2"), 9000, refuse)

    def client():
        yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)

    with pytest.raises(TransportError, match="server full"):
        sim.run_process(client())


def test_bigger_payload_higher_latency():
    sim, cluster, tcp = setup()
    tcp.listen(cluster.node("hydra2"), 9000, lambda ch: None)

    def client():
        ch = yield from tcp.connect(cluster.node("hydra1"), "hydra2", 9000)
        ev_small = yield from ch.send("s", 100)
        yield ev_small
        small = ev_small.value
        yield sim.timeout(1.0)  # drain queues
        ev_big = yield from ch.send("b", 500_000)
        yield ev_big
        return small, ev_big.value

    small, big = sim.run_process(client())
    assert big > small * 5
