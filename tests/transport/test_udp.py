"""Tests for UDP: raw loss, acked mode, retransmission, dedupe."""

import pytest

from repro.cluster import HydraCluster
from repro.sim import Simulator
from repro.transport import MessageLost, UdpTransport


def setup(**kw):
    sim = Simulator(seed=2)
    cluster = HydraCluster(sim)
    udp = UdpTransport(sim, cluster.lan, **kw)
    return sim, cluster, udp


def connect(sim, cluster, udp, server_chans):
    udp.listen(cluster.node("hydra2"), 9100, server_chans.append)

    def client():
        ch = yield from udp.connect(cluster.node("hydra1"), "hydra2", 9100)
        return ch

    return sim.run_process(client())


def test_connect_without_listener_raises():
    from repro.transport import TransportError

    sim, cluster, udp = setup()

    def client():
        yield from udp.connect(cluster.node("hydra1"), "hydra2", 9100)

    with pytest.raises(TransportError):
        sim.run_process(client())


def test_lossless_unacked_delivery():
    sim, cluster, udp = setup(loss_probability=0.0, acked=False)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)

    def client():
        ev = yield from ch.send("hello", 200)
        yield ev
        return ev.value

    latency = sim.run_process(client())
    assert latency > 0
    assert len(server_chans[0].inbox) == 1


def test_unacked_loss_raises_message_lost():
    sim, cluster, udp = setup(loss_probability=0.5, acked=False)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)
    lost = delivered = 0

    def client():
        nonlocal lost, delivered
        for _ in range(100):
            try:
                yield from ch.send("m", 200)
                delivered += 1
            except MessageLost:
                lost += 1

    sim.run_process(client())
    assert lost > 20
    assert delivered > 20
    assert ch.datagrams_lost == lost


def test_acked_mode_recovers_from_loss():
    """With retransmission, high raw loss still yields ~full delivery."""
    sim, cluster, udp = setup(loss_probability=0.15, acked=True, max_retries=5)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)
    ok = 0

    def client():
        nonlocal ok
        for _ in range(100):
            try:
                yield from ch.send("m", 200)
                ok += 1
            except MessageLost:
                pass

    sim.run_process(client())
    assert ok >= 98
    assert len(server_chans[0].inbox) == ok  # dedupe: no duplicates
    assert ch.retransmissions > 0


def test_acked_send_blocks_for_ack_round_trip():
    sim, cluster, udp = setup(loss_probability=0.0, acked=True)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)

    def client():
        t0 = sim.now
        ev = yield from ch.send("m", 200)
        assert ev.processed  # delivery already happened when send returns
        return sim.now - t0

    elapsed = sim.run_process(client())
    # Must include at least two one-way trips (data + ack).
    sim2, cluster2, udp2 = setup(loss_probability=0.0, acked=False)
    chans2 = []
    ch2 = connect(sim2, cluster2, udp2, chans2)

    def one_way():
        ev = yield from ch2.send("m", 200)
        yield ev
        return ev.value

    ow = sim2.run_process(one_way())
    assert elapsed > 1.5 * ow


def test_acked_gives_up_after_max_retries():
    sim, cluster, udp = setup(loss_probability=1.0, acked=True, max_retries=2, rto=0.05)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)

    def client():
        t0 = sim.now
        with pytest.raises(MessageLost):
            yield from ch.send("m", 200)
        return sim.now - t0

    elapsed = sim.run_process(client())
    # 3 attempts x 0.05 s RTO.
    assert elapsed == pytest.approx(0.15, rel=0.2)
    assert ch.datagrams_lost == 1


def test_retransmission_adds_latency_tail():
    """Messages that needed a retransmit arrive >= RTO later: the mechanism
    behind UDP's fat percentile tail in paper Fig 4."""
    sim, cluster, udp = setup(loss_probability=0.3, acked=True, rto=0.1, max_retries=8)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)
    times = []

    def client():
        for _ in range(60):
            t0 = sim.now
            try:
                yield from ch.send("m", 200)
                times.append(sim.now - t0)
            except MessageLost:
                pass

    sim.run_process(client())
    fast = min(times)
    slow = max(times)
    assert slow >= fast + 0.1  # at least one RTO in the tail


def test_retry_exhaustion_is_counted_as_loss_in_rtt_stats():
    """An acked send that exhausts its retries must surface twice: as
    MessageLost at the call site AND as loss in the record book's
    ``RttStats.loss_rate`` — the number every loss table in the paper
    reproduction reads."""
    from repro.core import RecordBook
    from repro.core.metrics import rtt_stats

    sim, cluster, udp = setup(loss_probability=0.6, acked=True, max_retries=1, rto=0.05)
    server_chans = []
    ch = connect(sim, cluster, udp, server_chans)
    book = RecordBook()
    n, exhausted = 40, 0

    def client():
        nonlocal exhausted
        for seq in range(n):
            record = book.new_record(0, seq, sim.now)
            try:
                yield from ch.send(("m", record), 200)
            except MessageLost:
                exhausted += 1
                continue
            # The receiver stamps arrival; here the ack doubles as receipt.
            record.t_arrived = record.t_received = sim.now

    sim.run_process(client())
    assert exhausted > 0  # p=0.6 with one retry must exhaust sometimes
    assert ch.datagrams_lost == exhausted

    stats = rtt_stats(book)
    assert stats.sent == n
    assert stats.count == n - exhausted
    assert stats.loss_rate == pytest.approx(exhausted / n)
    assert 0.0 < stats.loss_rate < 1.0
