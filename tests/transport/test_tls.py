"""Tests for the TLS transport overhead model."""

import pytest

from repro.cluster import HydraCluster
from repro.sim import Simulator
from repro.transport.tcp import TcpTransport
from repro.transport.tls import TLS_HANDSHAKE_CPU, TlsTransport


def connect_and_send(transport_cls, nbytes=10_000, messages=5):
    sim = Simulator(seed=61)
    cluster = HydraCluster(sim)
    transport = transport_cls(sim, cluster.lan)
    server_chans = []
    transport.listen(cluster.node("hydra2"), 9000, server_chans.append)

    def client():
        t0 = sim.now
        ch = yield from transport.connect(cluster.node("hydra1"), "hydra2", 9000)
        connect_time = sim.now - t0
        latencies = []
        for _ in range(messages):
            ev = yield from ch.send("m", nbytes)
            yield ev
            latencies.append(ev.value)
        return connect_time, latencies

    connect_time, latencies = sim.run_process(client())
    return sim, cluster, connect_time, latencies


def test_tls_handshake_slower_than_tcp():
    _, _, tcp_connect, _ = connect_and_send(TcpTransport)
    _, _, tls_connect, _ = connect_and_send(TlsTransport)
    assert tls_connect > tcp_connect + 2 * TLS_HANDSHAKE_CPU


def test_tls_per_message_overhead():
    _, _, _, tcp_lat = connect_and_send(TcpTransport)
    _, _, _, tls_lat = connect_and_send(TlsTransport)
    assert sum(tls_lat) > sum(tcp_lat)


def test_tls_delivers_payload_intact():
    sim = Simulator(seed=62)
    cluster = HydraCluster(sim)
    tls = TlsTransport(sim, cluster.lan)
    chans = []
    tls.listen(cluster.node("hydra2"), 9000, chans.append)

    def client():
        ch = yield from tls.connect(cluster.node("hydra1"), "hydra2", 9000)
        ev = yield from ch.send({"secret": 42}, 500)
        yield ev

    sim.run_process(client())
    assert chans[0].inbox.get_nowait().payload == {"secret": 42}


def test_tls_charges_cpu_on_both_ends():
    sim, cluster, _, _ = connect_and_send(TlsTransport, nbytes=500_000, messages=2)
    sim.run()
    assert cluster.node("hydra1").cpu_busy_time > 0.05  # encrypt + handshake
    assert cluster.node("hydra2").cpu_busy_time > 0.05  # decrypt + handshake
