"""Tests for HTTP request/response over TCP."""

import pytest

from repro.cluster import HydraCluster
from repro.sim import Simulator
from repro.transport import HttpClient, HttpServer, TcpTransport


def setup_server(handler_work=0.0):
    sim = Simulator(seed=3)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    served = []

    def dispatcher(request, respond):
        def work():
            if handler_work:
                yield from cluster.node("hydra2").execute(handler_work)
            else:
                yield sim.timeout(0.0)
            served.append(request.path)
            respond(200, {"echo": request.body}, 300)

        sim.process(work())

    server = HttpServer(sim, tcp, cluster.node("hydra2"), 8080, dispatcher)
    return sim, cluster, tcp, server, served


def test_request_response_round_trip():
    sim, cluster, tcp, server, served = setup_server()
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        resp = yield from client.request("/insert", {"sql": "INSERT"}, 500)
        return resp

    resp = sim.run_process(run())
    assert resp.status == 200
    assert resp.body == {"echo": {"sql": "INSERT"}}
    assert resp.latency > 0
    assert served == ["/insert"]
    assert server.requests_served == 1


def test_keepalive_reuses_connection():
    sim, cluster, tcp, server, served = setup_server()
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        r1 = yield from client.request("/a", None, 100)
        ch = client._channel
        r2 = yield from client.request("/b", None, 100)
        return ch is client._channel and r1.status == r2.status == 200

    assert sim.run_process(run()) is True
    assert served == ["/a", "/b"]


def test_server_work_adds_latency():
    sim1, c1, t1, s1, _ = setup_server(handler_work=0.0)
    client1 = HttpClient(sim1, t1, c1.node("hydra1"), "hydra2", 8080)

    def quick():
        r = yield from client1.request("/x", None, 100)
        return r.latency

    fast = sim1.run_process(quick())

    sim2, c2, t2, s2, _ = setup_server(handler_work=0.5)
    client2 = HttpClient(sim2, t2, c2.node("hydra1"), "hydra2", 8080)

    def slow():
        r = yield from client2.request("/x", None, 100)
        return r.latency

    assert sim2.run_process(slow()) > fast + 0.4


def test_reconnect_after_server_closes_channel():
    sim, cluster, tcp, server, served = setup_server()
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        r1 = yield from client.request("/a", None, 100)
        client._channel.close()
        r2 = yield from client.request("/b", None, 100)
        return (r1.status, r2.status)

    assert sim.run_process(run()) == (200, 200)


def test_accept_hook_can_reject_connection():
    sim = Simulator(seed=4)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)

    from repro.transport import TransportError

    def reject(ch):
        raise TransportError("connector limit")

    HttpServer(
        sim, tcp, cluster.node("hydra2"), 8080,
        dispatcher=lambda req, respond: None, accept_hook=reject,
    )
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        yield from client.request("/a", None, 100)

    with pytest.raises(TransportError, match="connector limit"):
        sim.run_process(run())


def test_server_close_unbinds_port():
    sim, cluster, tcp, server, _ = setup_server()
    server.close()
    HttpServer(sim, tcp, cluster.node("hydra2"), 8080, lambda req, respond: None)


# ------------------------------------------------------- timeout / long-poll

def test_request_timeout_raises_http_timeout():
    from repro.transport.http import HttpTimeout

    sim = Simulator(seed=5)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    # Dispatcher that parks the respond callable and never calls it.
    HttpServer(
        sim, tcp, cluster.node("hydra2"), 8080,
        dispatcher=lambda req, respond: None,
    )
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        t0 = sim.now
        try:
            yield from client.request("/poll", None, 100, timeout=2.0)
        except HttpTimeout:
            return sim.now - t0
        raise AssertionError("expected HttpTimeout")

    elapsed = sim.run_process(run())
    # Fires at timeout plus however long the request took to reach the wire.
    assert 2.0 <= elapsed < 2.5


def test_request_timeout_closes_channel_and_reconnects():
    from repro.transport.http import HttpTimeout

    sim = Simulator(seed=6)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    answer = {"now": False}

    def dispatcher(request, respond):
        if answer["now"]:
            respond(200, {"ok": True}, 100)

    HttpServer(sim, tcp, cluster.node("hydra2"), 8080, dispatcher)
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        try:
            yield from client.request("/poll", None, 100, timeout=1.0)
        except HttpTimeout:
            pass
        # The timed-out channel is torn down; the next request must open a
        # fresh connection and succeed.
        assert client._channel is None
        answer["now"] = True
        resp = yield from client.request("/poll", None, 100, timeout=1.0)
        return resp.status

    assert sim.run_process(run()) == 200


def test_deferred_respond_models_long_poll():
    """A dispatcher may hold the respond callable and fire it later — the
    long-poll primitive the edge gateway is built on."""
    sim = Simulator(seed=7)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    parked = []

    def dispatcher(request, respond):
        parked.append(respond)

    HttpServer(sim, tcp, cluster.node("hydra2"), 8080, dispatcher)
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)
    sim.call_at(3.0, lambda: parked[0](200, {"event": 42}, 140))

    def run():
        t0 = sim.now
        resp = yield from client.request("/poll", None, 100, timeout=10.0)
        return resp, sim.now - t0

    resp, elapsed = sim.run_process(run())
    assert resp.status == 200
    assert resp.body == {"event": 42}
    assert elapsed >= 3.0  # held until the event, well before the timeout


def test_response_within_timeout_is_delivered():
    sim, cluster, tcp, server, served = setup_server()
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 8080)

    def run():
        resp = yield from client.request("/a", {"k": 1}, 100, timeout=5.0)
        return resp

    resp = sim.run_process(run())
    assert resp.status == 200
    assert resp.body == {"echo": {"k": 1}}
