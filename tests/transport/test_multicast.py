"""Tests for multicast fan-out."""

from repro.cluster import HydraCluster
from repro.sim import Simulator
from repro.transport import MulticastGroup


def setup(loss=0.0):
    sim = Simulator(seed=5)
    cluster = HydraCluster(sim)
    group = MulticastGroup(sim, cluster.lan, "239.0.0.1", loss_probability=loss)
    return sim, cluster, group


def test_send_reaches_all_members():
    sim, cluster, group = setup()
    got = []
    for name in ("hydra2", "hydra3", "hydra4"):
        group.join(cluster.node(name), lambda p, lat, n=name: got.append((n, p)))

    def sender():
        n = yield from group.send(cluster.node("hydra1"), "tick", 400)
        return n

    reached = sim.run_process(sender())
    sim.run()
    assert reached == 3
    assert sorted(g[0] for g in got) == ["hydra2", "hydra3", "hydra4"]
    assert all(g[1] == "tick" for g in got)


def test_sender_not_delivered_to_itself():
    sim, cluster, group = setup()
    got = []
    group.join(cluster.node("hydra1"), lambda p, lat: got.append(p))
    group.join(cluster.node("hydra2"), lambda p, lat: got.append(p))

    def sender():
        n = yield from group.send(cluster.node("hydra1"), "x", 100)
        return n

    assert sim.run_process(sender()) == 1
    sim.run()
    assert got == ["x"]


def test_leave_stops_delivery():
    sim, cluster, group = setup()
    group.join(cluster.node("hydra2"), lambda p, lat: None)
    assert group.member_count == 1
    group.leave(cluster.node("hydra2"))
    assert group.member_count == 0


def test_lossy_multicast_reaches_subset():
    sim, cluster, group = setup(loss=0.5)
    counts = {"n": 0}
    for name in ("hydra2", "hydra3", "hydra4", "hydra5"):
        group.join(cluster.node(name), lambda p, lat: None)

    def sender():
        total = 0
        for _ in range(50):
            n = yield from group.send(cluster.node("hydra1"), "x", 100)
            total += n
        return total

    total = sim.run_process(sender())
    assert 40 < total < 160  # ~50% of 200


def test_single_tx_serialization_for_group():
    """Multicast charges the sender's NIC once per send, not per member."""
    sim, cluster, group = setup()
    for name in ("hydra2", "hydra3", "hydra4", "hydra5"):
        group.join(cluster.node(name), lambda p, lat: None)

    def sender():
        yield from group.send(cluster.node("hydra1"), "x", 1000)

    sim.run_process(sender())
    sim.run()
    assert cluster.lan.tx_link("hydra1").stats.frames == 1
