"""The shared (source, seq) dedup index under every exactly-once path."""

from repro.core.dedup import DedupIndex


def test_in_order_stream_marks_once_and_stays_compact():
    idx = DedupIndex()
    for seq in range(100):
        assert idx.mark("gen-1", seq)
    assert idx.unique == 100
    assert idx.repeats == 0
    assert idx.next_expected("gen-1") == 100
    # Contiguous stream: only the floor is kept, no sparse set.
    assert idx._above == {}


def test_repeat_is_suppressed_and_counted():
    idx = DedupIndex()
    assert idx.mark("a", 0)
    assert not idx.mark("a", 0)
    assert not idx.mark("a", 0)
    assert idx.unique == 1
    assert idx.repeats == 2


def test_sources_are_independent():
    idx = DedupIndex()
    assert idx.mark("a", 0)
    assert idx.mark("b", 0)
    assert not idx.mark("a", 0)
    assert idx.sources() == 2
    assert idx.next_expected("a") == 1
    assert idx.next_expected("c") == 0  # unknown source starts at 0


def test_out_of_order_floor_advances_when_gap_fills():
    idx = DedupIndex()
    assert idx.mark("a", 0)
    assert idx.mark("a", 2)  # gap at 1
    assert idx.next_expected("a") == 1
    assert not idx.mark("a", 2)  # sparse sighting deduped too
    assert idx.mark("a", 1)  # gap fills: floor swallows 1 and 2
    assert idx.next_expected("a") == 3
    assert idx._above == {}  # sparse set collapsed into the floor
    assert not idx.mark("a", 2)  # now below the floor


def test_seen_has_no_side_effects():
    idx = DedupIndex()
    assert not idx.seen("a", 0)
    idx.mark("a", 0)
    idx.mark("a", 5)
    assert idx.seen("a", 0)
    assert idx.seen("a", 5)
    assert not idx.seen("a", 3)
    assert idx.unique == 2 and idx.repeats == 0


def test_mark_run_marks_contiguous_batch():
    idx = DedupIndex()
    idx.mark_run("pid-7", 0, 5)
    assert idx.next_expected("pid-7") == 5
    assert all(idx.seen("pid-7", s) for s in range(5))
    assert idx.unique == 5


def test_snapshot_restore_is_monotonic():
    idx = DedupIndex()
    idx.mark_run("a", 0, 10)
    snap = idx.snapshot()
    assert snap == {"a": 9}

    other = DedupIndex()
    other.mark("a", 3)  # out-of-order sighting below the incoming floor
    other.mark("a", 12)  # and one above it
    other.restore(snap)
    assert other.next_expected("a") == 10
    assert other.seen("a", 12)  # above-floor sighting survives the merge
    assert not other.seen("a", 11)
    # Restoring an older floor must not regress.
    other.restore({"a": 2})
    assert other.next_expected("a") == 10


def test_len_counts_unique_sightings():
    idx = DedupIndex()
    idx.mark("a", 0)
    idx.mark("a", 1)
    idx.mark("a", 1)
    assert len(idx) == 2
