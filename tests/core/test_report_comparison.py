"""Tests for report rendering and the Table III rating derivation."""

from repro.core.comparison import (
    MiddlewareMeasurements,
    Rating,
    rate_middleware,
    table_iii,
)
from repro.core.experiment import ExperimentResult
from repro.core.report import render_series, render_table


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_render_table_nan_dash():
    out = render_table(["x"], [[float("nan")]])
    assert "-" in out.splitlines()[-1]


def test_experiment_result_render():
    result = ExperimentResult("fig7", "Narada scaling", "connections", "ms")
    result.add_point("RTT", 500, 5.0)
    result.add_point("RTT", 1000, 9.0)
    result.add_point("STDDEV", 500, 2.0)
    result.note("single broker OOM at 4000")
    text = result.render()
    assert "fig7" in text
    assert "RTT (ms)" in text
    assert "note: single broker OOM at 4000" in text


def test_render_series_merges_on_x():
    from repro.core.experiment import SeriesPoint

    out = render_series(
        "x", "y",
        {"a": [SeriesPoint(1, 10.0)], "b": [SeriesPoint(2, 20.0)]},
    )
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, two x rows


# ------------------------------------------------------------------ Table III
def narada_measurements():
    """Values in the ranges our fig3/fig7 benches produce."""
    return MiddlewareMeasurements(
        name="Narada",
        rtt_ms_light=4.0,
        max_connections_single=3000,
        max_connections_distributed=4000,
        distributed_rtt_ratio=1.3,   # DBN slower (broadcast flaw)
        distributed_idle_ratio=0.8,  # DBN busier
    )


def rgma_measurements():
    return MiddlewareMeasurements(
        name="R-GMA",
        rtt_ms_light=1400.0,
        max_connections_single=600,
        max_connections_distributed=1000,
        distributed_rtt_ratio=0.8,   # distributed faster
        distributed_idle_ratio=1.4,  # distributed less loaded
    )


def test_table_iii_matches_paper_verdicts():
    headers, rows = table_iii(rgma_measurements(), narada_measurements())
    verdicts = {row[0]: row[1:] for row in rows}
    assert verdicts["R-GMA"] == ["Average", "Average", "Very good"]
    assert verdicts["Narada"] == ["Very good", "Very good", "Average"]


def test_rating_boundaries():
    m = narada_measurements()
    import dataclasses

    slow = dataclasses.replace(m, rtt_ms_light=10_000)
    assert rate_middleware(slow).realtime == Rating.POOR
    tiny = dataclasses.replace(m, max_connections_single=100)
    assert rate_middleware(tiny).concurrency == Rating.POOR
