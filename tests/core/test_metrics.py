"""Tests for the measurement core: records, metrics, decomposition."""

import numpy as np
import pytest

from repro.core import (
    MessageRecord,
    RecordBook,
    decompose,
    loss_rate,
    percentile_curve,
    rtt_stats,
)
from repro.core.metrics import soft_realtime_compliance, within_threshold


def make_book(rtts, lost=0):
    book = RecordBook()
    for i, rtt in enumerate(rtts):
        r = book.new_record(gen_id=i, seq=1, t_before_send=float(i))
        r.t_after_send = r.t_before_send + 0.001
        r.t_arrived = r.t_before_send + rtt - 0.0005
        r.t_received = r.t_before_send + rtt
    for i in range(lost):
        book.new_record(gen_id=1000 + i, seq=1, t_before_send=0.0)
    return book


def test_rtt_stats_mean_and_stddev():
    book = make_book([0.010, 0.020, 0.030])
    stats = rtt_stats(book)
    assert stats.count == 3
    assert stats.mean_ms == pytest.approx(20.0)
    assert stats.stddev_ms == pytest.approx(np.std([10, 20, 30]))
    assert stats.min_ms == pytest.approx(10.0)
    assert stats.max_ms == pytest.approx(30.0)
    assert stats.loss_rate == 0.0


def test_rtt_stats_counts_losses():
    book = make_book([0.010] * 9, lost=1)
    stats = rtt_stats(book)
    assert stats.sent == 10
    assert stats.count == 9
    assert stats.loss_rate == pytest.approx(0.1)


def test_rtt_stats_since_cut():
    book = make_book([0.010, 0.020, 0.030])  # sent at t=0,1,2
    stats = rtt_stats(book, since=1.5)
    assert stats.count == 1
    assert stats.mean_ms == pytest.approx(30.0)


def test_rtt_stats_empty():
    # Nothing sent: zeros across the board, not NaN (an idle window is a
    # well-defined measurement, not a failed one).
    stats = rtt_stats(RecordBook())
    assert stats.count == 0
    assert stats.sent == 0
    assert stats.mean_ms == 0.0
    assert stats.stddev_ms == 0.0
    assert stats.min_ms == 0.0
    assert stats.max_ms == 0.0
    assert stats.loss_rate == 0.0


def test_rtt_stats_all_lost_keeps_nan_latency():
    # Sent but nothing delivered: loss carries the signal; latency stays
    # NaN so comparisons like `mean_rtt_ms < 1000` can never pass.
    stats = rtt_stats(make_book([], lost=3))
    assert stats.sent == 3
    assert stats.count == 0
    assert stats.loss_rate == 1.0
    assert np.isnan(stats.mean_ms)
    assert not stats.mean_ms < 1000


def test_rtt_stats_empty_window_after_since_cut():
    book = make_book([0.010])  # sent at t=0
    stats = rtt_stats(book, since=100.0)
    assert stats.sent == 0
    assert stats.mean_ms == 0.0
    assert stats.loss_rate == 0.0


def test_loss_rate():
    assert loss_rate(144000, 143914) == pytest.approx(0.0006, rel=0.01)
    assert loss_rate(0, 0) == 0.0
    with pytest.raises(ValueError):
        loss_rate(5, 6)


def test_percentile_curve_monotone_and_anchored():
    rtts = np.linspace(0.001, 0.100, 1000)
    curve = percentile_curve(rtts)
    pcts = [p for p, _ in curve]
    values = [v for _, v in curve]
    assert pcts == [95.0, 96.0, 97.0, 98.0, 99.0, 100.0]
    assert values == sorted(values)
    assert values[-1] == pytest.approx(100.0)  # 100th pct == max, in ms


def test_percentile_curve_empty():
    # No samples -> no curve; callers iterate the pairs, so an empty list
    # cleanly omits the series instead of plotting NaNs.
    assert percentile_curve([]) == []


def test_within_threshold():
    rtts = [0.01, 0.05, 0.2]
    assert within_threshold(rtts, 0.1) == pytest.approx(2 / 3)


def test_within_threshold_empty_is_vacuous():
    assert within_threshold([], 0.1) == 1.0


def test_decompose_empty_book():
    phases = decompose(RecordBook())
    assert np.isnan(phases.prt_ms)
    assert np.isnan(phases.rtt_ms)


def test_soft_realtime_compliance_empty_book():
    ok, frac, loss = soft_realtime_compliance(RecordBook())
    assert ok is True
    assert frac == 0.0
    assert loss == 0.0


def test_decompose_sums_to_rtt():
    book = make_book([0.010, 0.030])
    phases = decompose(book)
    stats = rtt_stats(book)
    assert phases.rtt_ms == pytest.approx(stats.mean_ms)
    assert phases.prt_ms == pytest.approx(1.0)
    assert phases.srt_ms == pytest.approx(0.5)
    assert phases.pt_ms > 0


def test_record_properties_raise_when_incomplete():
    r = MessageRecord(gen_id=1, seq=1, t_before_send=0.0)
    assert not r.delivered
    with pytest.raises(ValueError):
        _ = r.rtt
    with pytest.raises(ValueError):
        _ = r.prt


def test_soft_realtime_compliance():
    book = make_book([0.5, 1.0, 2.0])
    ok, frac, loss = soft_realtime_compliance(book, deadline_s=5.0)
    assert ok and frac == 0.0 and loss == 0.0
    book2 = make_book([0.5, 6.0], lost=1)
    ok2, frac2, loss2 = soft_realtime_compliance(book2, deadline_s=5.0)
    assert not ok2
    assert frac2 == pytest.approx(2 / 3)
    assert loss2 == pytest.approx(1 / 3)


def test_record_book_merge_and_after():
    a = make_book([0.01])
    b = make_book([0.02])
    a.merge(b)
    assert a.sent_count == 2
    cut = a.after(0.5)
    assert cut.sent_count == 0 or all(
        r.t_before_send >= 0.5 for r in cut.records
    )
