"""Tests for ExperimentResult JSON export."""

import json

from repro.core.experiment import ExperimentResult


def make_result():
    r = ExperimentResult("figX", "Title", "conns", "ms")
    r.add_point("RTT", 500, 3.2)
    r.add_point("RTT", 1000, 4.1, stddev=1.2)
    r.table = (["a", "b"], [[1, 2.5]])
    r.note("a note")
    return r


def test_to_dict_round_trips_through_json():
    d = make_result().to_dict()
    encoded = json.dumps(d)
    decoded = json.loads(encoded)
    assert decoded["experiment_id"] == "figX"
    assert decoded["series"]["RTT"][0] == {"x": 500, "y": 3.2}
    assert decoded["series"]["RTT"][1]["extra"] == {"stddev": 1.2}
    assert decoded["table"]["rows"] == [[1, 2.5]]
    assert decoded["notes"] == ["a note"]


def test_to_dict_without_table():
    r = ExperimentResult("figY", "T", "x", "y")
    assert r.to_dict()["table"] is None
