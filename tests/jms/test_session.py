"""Tests for sessions, producers, consumers and ack modes (loopback provider)."""

import pytest

from repro.jms import (
    AckMode,
    DeliveryMode,
    IllegalStateException,
    MapMessage,
    TextMessage,
    Topic,
)


TOPIC = Topic("power.monitoring")


def publish_one(sim, session, text="hello", **send_kwargs):
    pub = session.create_publisher(TOPIC)

    def go():
        yield from pub.publish(TextMessage(text), **send_kwargs)

    sim.run_process(go())
    return pub


# ------------------------------------------------------------ basic pub/sub
def test_publish_reaches_async_subscriber(sim, connection):
    session = connection.create_session()
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    publish_one(sim, session, "m1")
    sim.run()
    assert len(got) == 1
    assert got[0].text == "m1"
    assert got[0].message_id is not None
    assert got[0].destination == TOPIC


def test_selector_filters_at_subscription(sim, connection):
    session = connection.create_session()
    got = []

    def setup():
        yield from session.create_subscriber(
            TOPIC, selector="id < 10", listener=got.append
        )

    sim.run_process(setup())
    pub = session.create_publisher(TOPIC)

    def go():
        for i in (5, 15):
            m = TextMessage(f"m{i}")
            m.set_property("id", i)
            yield from pub.publish(m)

    sim.run_process(go())
    sim.run()
    assert [m.text for m in got] == ["m5"]


def test_sync_receive(sim, connection):
    session = connection.create_session()

    def run():
        consumer = yield from session.create_consumer(TOPIC)
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("sync"))
        message = yield from consumer.receive()
        return message.text

    assert sim.run_process(run()) == "sync"


def test_sync_receive_timeout_returns_none(sim, connection):
    session = connection.create_session()

    def run():
        consumer = yield from session.create_consumer(TOPIC)
        message = yield from consumer.receive(timeout=0.5)
        return message

    assert sim.run_process(run()) is None


def test_receive_nowait(sim, connection):
    session = connection.create_session()

    def run():
        consumer = yield from session.create_consumer(TOPIC)
        empty = yield from consumer.receive(timeout=0)
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("x"))
        yield sim.timeout(1.0)
        found = yield from consumer.receive(timeout=0)
        return empty, found.text

    assert sim.run_process(run()) == (None, "x")


def test_timeout_race_does_not_eat_message(sim, connection):
    """A message arriving after receive() timed out must stay in the inbox."""
    session = connection.create_session()

    def run():
        consumer = yield from session.create_consumer(TOPIC)
        missed = yield from consumer.receive(timeout=0.001)
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("later"))
        found = yield from consumer.receive(timeout=5.0)
        return missed, found.text

    assert sim.run_process(run()) == (None, "later")


# ----------------------------------------------------------------- ack modes
def test_auto_ack_acks_each_message(sim, connection, provider):
    session = connection.create_session(ack_mode=AckMode.AUTO_ACKNOWLEDGE)
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub = session.create_publisher(TOPIC)

    def go():
        for i in range(5):
            yield from pub.publish(TextMessage(str(i)))

    sim.run_process(go())
    sim.run()
    assert len(provider.acked) == 5


def test_client_ack_batches(sim, connection, provider):
    session = connection.create_session(ack_mode=AckMode.CLIENT_ACKNOWLEDGE)
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub = session.create_publisher(TOPIC)

    def go():
        for i in range(5):
            yield from pub.publish(TextMessage(str(i)))

    sim.run_process(go())
    sim.run()
    assert provider.acked == []  # nothing acked until the app says so
    got[-1].acknowledge()
    sim.run()
    assert len(provider.acked) == 5


def test_dups_ok_acks_in_batches(sim, connection, provider):
    session = connection.create_session(ack_mode=AckMode.DUPS_OK_ACKNOWLEDGE)
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub = session.create_publisher(TOPIC)
    n = session.DUPS_OK_BATCH + 3

    def go():
        for i in range(n):
            yield from pub.publish(TextMessage(str(i)))

    sim.run_process(go())
    sim.run()
    assert len(provider.acked) == session.DUPS_OK_BATCH  # one full batch


def test_transacted_send_buffers_until_commit(sim, connection, provider):
    session = connection.create_session(transacted=True)
    pub = session.create_publisher(TOPIC)

    def go():
        yield from pub.publish(TextMessage("tx1"))
        yield from pub.publish(TextMessage("tx2"))
        assert provider.published == []
        yield from session.commit()

    sim.run_process(go())
    assert [m.text for m in provider.published] == ["tx1", "tx2"]


def test_transacted_rollback_discards_sends(sim, connection, provider):
    session = connection.create_session(transacted=True)
    pub = session.create_publisher(TOPIC)

    def go():
        yield from pub.publish(TextMessage("doomed"))
        yield from session.rollback()
        yield from session.commit()

    sim.run_process(go())
    assert provider.published == []


def test_commit_on_nontransacted_raises(sim, connection):
    session = connection.create_session()

    def go():
        yield from session.commit()

    with pytest.raises(IllegalStateException):
        sim.run_process(go())


def test_recover_redelivers_unacked(sim, connection):
    session = connection.create_session(ack_mode=AckMode.CLIENT_ACKNOWLEDGE)
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    publish_one(sim, session, "r1")
    sim.run()
    assert len(got) == 1 and not got[0].redelivered
    session.recover()
    sim.run()
    assert len(got) == 2 and got[1].redelivered


# ----------------------------------------------------- headers set on publish
def test_publish_stamps_headers(sim, connection, provider):
    session = connection.create_session()
    pub = session.create_publisher(TOPIC)
    pub.priority = 7
    pub.delivery_mode = DeliveryMode.PERSISTENT

    def go():
        yield from pub.publish(TextMessage("h"), time_to_live=60.0)

    sim.run_process(go())
    m = provider.published[0]
    assert m.priority == 7
    assert m.delivery_mode == DeliveryMode.PERSISTENT
    assert m.timestamp is not None
    assert m.expiration == pytest.approx(m.timestamp + 60.0)


def test_message_ids_unique(sim, connection, provider):
    session = connection.create_session()
    pub = session.create_publisher(TOPIC)

    def go():
        for _ in range(10):
            yield from pub.publish(TextMessage("x"))

    sim.run_process(go())
    ids = [m.message_id for m in provider.published]
    assert len(set(ids)) == 10


def test_expired_message_not_delivered(sim, connection):
    session = connection.create_session()
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    # Loopback delivery delay is 1 ms; TTL far smaller.
    pub = session.create_publisher(TOPIC)

    def go():
        yield from pub.publish(TextMessage("stale"), time_to_live=1e-6)

    sim.run_process(go())
    sim.run()
    assert got == []


# --------------------------------------------------------- connection state
def test_connection_stopped_buffers_deliveries(sim, provider):
    from repro.jms import Connection

    conn = Connection(provider)  # not started
    session = conn.create_session()
    got = []

    def setup():
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub = session.create_publisher(TOPIC)

    def go():
        yield from pub.publish(TextMessage("early"))

    sim.run_process(go())
    sim.run()
    assert got == []
    conn.start()
    sim.run()
    assert [m.text for m in got] == ["early"]


def test_close_closes_sessions_and_provider(sim, connection, provider):
    session = connection.create_session()
    connection.close()
    assert session.closed
    assert provider.closed
    with pytest.raises(IllegalStateException):
        connection.create_session()


def test_listener_generator_runs_simulated_work(sim, connection):
    session = connection.create_session()
    done_at = []

    def slow_listener(message):
        yield sim.timeout(2.0)
        done_at.append(sim.now)

    def setup():
        yield from session.create_subscriber(TOPIC, listener=slow_listener)

    sim.run_process(setup())
    publish_one(sim, session)
    sim.run()
    assert done_at and done_at[0] >= 2.0


def test_session_serial_dispatch(sim, connection):
    """Two consumers on one session: listeners never overlap in time."""
    session = connection.create_session()
    intervals = []

    def listener(message):
        start = sim.now
        yield sim.timeout(1.0)
        intervals.append((start, sim.now))

    def setup():
        yield from session.create_subscriber(TOPIC, listener=listener)
        yield from session.create_subscriber(TOPIC, listener=listener)

    sim.run_process(setup())
    publish_one(sim, session)
    sim.run()
    assert len(intervals) == 2
    (s1, e1), (s2, e2) = sorted(intervals)
    assert s2 >= e1  # serial, not concurrent


def test_consumer_close_unsubscribes(sim, connection, provider):
    session = connection.create_session()

    def run():
        consumer = yield from session.create_consumer(TOPIC)
        assert len(provider.subscriptions) == 1
        yield from consumer.close()
        return len(provider.subscriptions)

    assert sim.run_process(run()) == 0


def test_durable_subscriber_flag(sim, connection):
    session = connection.create_session()

    def run():
        sub = yield from session.create_subscriber(
            TOPIC, durable_name="monitor-1", listener=lambda m: None
        )
        return sub.durable, sub.durable_name

    assert sim.run_process(run()) == (True, "monitor-1")
