"""Tests for destination types."""

import pytest

from repro.jms import Queue, TemporaryQueue, TemporaryTopic, Topic


def test_equality_by_name_and_kind():
    assert Topic("a") == Topic("a")
    assert Topic("a") != Topic("b")
    assert Topic("a") != Queue("a")  # different kinds never equal


def test_hashable_for_registry_keys():
    d = {Topic("a"): 1, Queue("a"): 2}
    assert d[Topic("a")] == 1
    assert d[Queue("a")] == 2


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        Topic("")


def test_temporary_destinations_unique():
    t1, t2 = TemporaryTopic.create(), TemporaryTopic.create()
    q1 = TemporaryQueue.create()
    assert t1.name != t2.name
    assert t1.name.startswith("$TMP.TOPIC.")
    assert q1.name.startswith("$TMP.QUEUE.")
    assert isinstance(t1, Topic)
    assert isinstance(q1, Queue)


def test_frozen():
    t = Topic("x")
    with pytest.raises(Exception):
        t.name = "y"  # type: ignore[misc]
