"""Shared JMS test fixtures: an in-memory loopback provider.

The loopback provider implements the Provider protocol with no network or
broker: publishes match subscriptions locally after a small configurable
delay.  It lets the JMS API semantics be tested in isolation from
:mod:`repro.narada`.
"""

from __future__ import annotations

import pytest

from repro.jms.selector import parse_selector
from repro.sim import Simulator


class LoopbackProvider:
    """Minimal in-process Provider: match and deliver after `delay`."""

    def __init__(self, sim, delay=0.001):
        self.sim = sim
        self.delay = delay
        self.subscriptions = {}  # handle -> (dest, selector, deliver)
        self._next_handle = 0
        self.published = []
        self.acked = []
        self.closed = False

    def publish(self, message):
        yield self.sim.timeout(self.delay)
        self.published.append(message)
        for dest, selector, deliver in list(self.subscriptions.values()):
            if dest != message.destination:
                continue
            if selector is not None and not selector.matches(message):
                continue
            copy = message.copy()
            copy.destination = message.destination

            def fire(c=copy, d=deliver):
                d(c)

            self.sim.call_at(self.sim.now + self.delay, fire)

    def subscribe(self, destination, selector_text, deliver, durable_name=None):
        yield self.sim.timeout(self.delay)
        handle = self._next_handle
        self._next_handle += 1
        self.subscriptions[handle] = (
            destination,
            parse_selector(selector_text),
            deliver,
        )
        return handle

    def unsubscribe(self, handle):
        yield self.sim.timeout(self.delay)
        self.subscriptions.pop(handle, None)

    def ack(self, messages):
        yield self.sim.timeout(self.delay)
        self.acked.extend(messages)

    def close(self):
        self.closed = True


@pytest.fixture
def sim():
    return Simulator(seed=7)


@pytest.fixture
def provider(sim):
    return LoopbackProvider(sim)


@pytest.fixture
def connection(sim, provider):
    from repro.jms import Connection

    conn = Connection(provider)
    conn.start()
    return conn
