"""Tests for JMS message types: typed access, wire sizes, read-only mode."""

import pytest

from repro.jms import (
    BytesMessage,
    DeliveryMode,
    MapMessage,
    Message,
    ObjectMessage,
    TextMessage,
    Topic,
)
from repro.jms.errors import MessageFormatException, MessageNotWriteableException


# ----------------------------------------------------------------- MapMessage
def test_map_message_typed_round_trip():
    m = MapMessage()
    m.set_int("i", 42)
    m.set_long("l", 2**40)
    m.set_float("f", 1.5)
    m.set_double("d", 2.25)
    m.set_string("s", "hello")
    m.set_boolean("b", True)
    assert m.get_int("i") == 42
    assert m.get_long("l") == 2**40
    assert m.get_float("f") == 1.5
    assert m.get_double("d") == 2.25
    assert m.get_string("s") == "hello"
    assert m.get("b") is True


def test_map_message_widening_conversions():
    m = MapMessage()
    m.set_int("i", 7)
    assert m.get_long("i") == 7
    m.set_float("f", 1.5)
    assert m.get_double("f") == 1.5


def test_map_message_narrowing_rejected():
    m = MapMessage()
    m.set_long("l", 5)
    with pytest.raises(MessageFormatException):
        m.get_int("l")
    m.set_double("d", 1.0)
    with pytest.raises(MessageFormatException):
        m.get_float("d")


def test_map_message_string_conversion():
    m = MapMessage()
    m.set_string("n", "123")
    assert m.get_int("n") == 123
    m.set_int("i", 9)
    assert m.get_string("i") == "9"
    m.set_string("bad", "xyz")
    with pytest.raises(MessageFormatException):
        m.get_int("bad")


def test_map_message_missing_entry():
    m = MapMessage()
    with pytest.raises(MessageFormatException):
        m.get_int("missing")
    assert m.get("missing") is None
    assert not m.item_exists("missing")


def test_paper_payload_size_is_consistent_with_throughput():
    """§III.B: 750 generators -> 75 msg/s at < 50 KB/s => <= ~660 B/message.

    Build the paper's exact MapMessage payload (2 int, 5 float, 2 long,
    3 double, 4 string) and check the modelled wire size lands under that
    bound but above a trivial floor.
    """
    m = MapMessage()
    m.destination = Topic("monitoring")
    for k in range(2):
        m.set_int(f"int{k}", k)
    for k in range(5):
        m.set_float(f"float{k}", 1.0 * k)
    for k in range(2):
        m.set_long(f"long{k}", 10**12 + k)
    for k in range(3):
        m.set_double(f"double{k}", 1e-3 * k)
    for k in range(4):
        m.set_string(f"string{k}", "generator-value-" + str(k))
    m.set_property("id", 1234)
    size = m.wire_size()
    assert 300 < size < 660


def test_map_message_body_size_counts_strings():
    a = MapMessage()
    a.set_string("s", "x")
    b = MapMessage()
    b.set_string("s", "x" * 100)
    assert b.body_wire_size() - a.body_wire_size() == 99


# -------------------------------------------------------------- other bodies
def test_text_message_size():
    t = TextMessage("hello")
    assert t.body_wire_size() == 4 + 5
    assert t.wire_size() > t.body_wire_size()


def test_bytes_message_write_and_size():
    b = BytesMessage()
    b.write_long(1)
    b.write_double(2.0)
    b.write_bytes(b"abc")
    assert b.body_wire_size() == 8 + 8 + 3


def test_object_message_explicit_size():
    o = ObjectMessage({"a": 1}, object_size=500)
    assert o.body_wire_size() == 500


def test_object_message_estimated_size():
    o = ObjectMessage({"a": 1})
    assert o.body_wire_size() > 64


# ---------------------------------------------------------------- properties
def test_properties_round_trip_and_names():
    m = Message()
    m.set_property("id", 7)
    m.set_property("site", "uk")
    assert m.get_property("id") == 7
    assert sorted(m.property_names()) == ["id", "site"]
    assert m.property_exists("site")
    m.clear_properties()
    assert m.property_names() == []


def test_property_type_validation():
    m = Message()
    with pytest.raises(MessageFormatException):
        m.set_property("bad", object())
    with pytest.raises(MessageFormatException):
        m.set_property("", 1)


# ----------------------------------------------------------------- selectors
def test_selector_value_resolves_headers_and_properties():
    m = Message()
    m.priority = 7
    m.message_id = "ID:x-1"
    m.set_property("id", 99)
    assert m.selector_value("JMSPriority") == 7
    assert m.selector_value("JMSMessageID") == "ID:x-1"
    assert m.selector_value("id") == 99
    assert m.selector_value("unknown") is None


def test_selector_value_delivery_mode_string():
    m = Message()
    assert m.selector_value("JMSDeliveryMode") == "NON_PERSISTENT"
    m.delivery_mode = DeliveryMode.PERSISTENT
    assert m.selector_value("JMSDeliveryMode") == "PERSISTENT"


# ----------------------------------------------------------------- read-only
def test_read_only_blocks_writes():
    m = MapMessage()
    m.set_int("i", 1)
    m._set_read_only()
    with pytest.raises(MessageNotWriteableException):
        m.set_int("j", 2)
    with pytest.raises(MessageNotWriteableException):
        m.set_property("p", 1)
    # clear_properties restores writability per JMS.
    m.clear_properties()
    m.set_property("p", 1)


def test_copy_is_independent_and_writable():
    m = MapMessage()
    m.set_int("i", 1)
    m.set_property("p", "x")
    m._set_read_only()
    c = m.copy()
    c.set_int("j", 2)
    c.set_property("q", "y")
    assert not m.item_exists("j")
    assert not m.property_exists("q")
    assert c.get_int("i") == 1
