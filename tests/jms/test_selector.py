"""Tests for the SQL-92 message selector engine."""

import pytest

from repro.jms import InvalidSelectorException, Message, Selector
from repro.jms.selector import parse_selector


def msg(**props):
    m = Message()
    for k, v in props.items():
        m.set_property(k, v)
    return m


# ------------------------------------------------------------- comparisons
@pytest.mark.parametrize(
    "text,props,expected",
    [
        ("id < 10000", {"id": 5}, True),
        ("id < 10000", {"id": 10000}, False),
        ("id <= 10", {"id": 10}, True),
        ("id > 3", {"id": 4}, True),
        ("id >= 4", {"id": 4}, True),
        ("id = 7", {"id": 7}, True),
        ("id <> 7", {"id": 8}, True),
        ("id <> 7", {"id": 7}, False),
        ("price = 2.5", {"price": 2.5}, True),
        ("name = 'alice'", {"name": "alice"}, True),
        ("name = 'alice'", {"name": "bob"}, False),
        ("flag = TRUE", {"flag": True}, True),
        ("flag = FALSE", {"flag": False}, True),
    ],
)
def test_simple_comparisons(text, props, expected):
    assert Selector(text).matches(msg(**props)) is expected


def test_paper_selector():
    """The exact selector from §III.E: 'id<10000' filters nothing out."""
    sel = Selector("id<10000")
    for i in (0, 500, 9999):
        assert sel.matches(msg(id=i))
    assert not sel.matches(msg(id=10000))


def test_missing_property_is_unknown_not_false_match():
    sel = Selector("id < 10")
    assert sel.evaluate(msg()) is None
    assert sel.matches(msg()) is False


def test_string_ordering_is_unknown():
    assert Selector("name < 'zzz'").evaluate(msg(name="abc")) is None


def test_cross_type_equality_is_unknown():
    assert Selector("id = 'five'").evaluate(msg(id=5)) is None


# ---------------------------------------------------------------- boolean
def test_and_or_not():
    sel = Selector("a > 1 AND b > 1")
    assert sel.matches(msg(a=2, b=2))
    assert not sel.matches(msg(a=2, b=0))
    sel = Selector("a > 1 OR b > 1")
    assert sel.matches(msg(a=0, b=2))
    sel = Selector("NOT a > 1")
    assert sel.matches(msg(a=0))
    assert not sel.matches(msg(a=2))


def test_three_valued_and():
    # unknown AND false = false; unknown AND true = unknown
    sel = Selector("missing > 1 AND b > 1")
    assert sel.evaluate(msg(b=0)) is False
    assert sel.evaluate(msg(b=2)) is None


def test_three_valued_or():
    # unknown OR true = true; unknown OR false = unknown
    sel = Selector("missing > 1 OR b > 1")
    assert sel.evaluate(msg(b=2)) is True
    assert sel.evaluate(msg(b=0)) is None


def test_not_unknown_is_unknown():
    assert Selector("NOT missing > 1").evaluate(msg()) is None


def test_bare_boolean_property():
    sel = Selector("enabled")
    assert sel.matches(msg(enabled=True))
    assert not sel.matches(msg(enabled=False))
    assert sel.evaluate(msg()) is None


def test_bare_nonboolean_property_is_unknown():
    assert Selector("id").evaluate(msg(id=5)) is None


def test_operator_precedence_and_over_or():
    sel = Selector("a = 1 OR b = 1 AND c = 1")
    assert sel.matches(msg(a=1, b=0, c=0))
    assert sel.matches(msg(a=0, b=1, c=1))
    assert not sel.matches(msg(a=0, b=1, c=0))


def test_parentheses_override_precedence():
    sel = Selector("(a = 1 OR b = 1) AND c = 1")
    assert not sel.matches(msg(a=1, b=0, c=0))
    assert sel.matches(msg(a=1, b=0, c=1))


# -------------------------------------------------------------- arithmetic
def test_arithmetic_in_comparisons():
    assert Selector("a + b = 5").matches(msg(a=2, b=3))
    assert Selector("a - b > 0").matches(msg(a=5, b=3))
    assert Selector("a * 2 = 10").matches(msg(a=5))
    assert Selector("a / 2 = 2.5").matches(msg(a=5.0))
    assert Selector("-a = -3").matches(msg(a=3))
    assert Selector("+a = 3").matches(msg(a=3))


def test_multiplication_binds_tighter_than_addition():
    assert Selector("1 + 2 * 3 = 7").matches(msg())
    assert Selector("(1 + 2) * 3 = 9").matches(msg())


def test_division_by_zero_is_unknown():
    assert Selector("a / 0 = 1").evaluate(msg(a=5)) is None


def test_arithmetic_on_string_is_unknown():
    assert Selector("a + 1 = 2").evaluate(msg(a="one")) is None


# ----------------------------------------------------------------- BETWEEN
def test_between():
    sel = Selector("age BETWEEN 18 AND 65")
    assert sel.matches(msg(age=18))
    assert sel.matches(msg(age=65))
    assert not sel.matches(msg(age=17))
    sel = Selector("age NOT BETWEEN 18 AND 65")
    assert sel.matches(msg(age=17))
    assert not sel.matches(msg(age=30))


def test_between_with_unknown_is_unknown():
    assert Selector("age BETWEEN 1 AND 9").evaluate(msg()) is None


# ---------------------------------------------------------------------- IN
def test_in_list():
    sel = Selector("site IN ('uk', 'fr', 'de')")
    assert sel.matches(msg(site="uk"))
    assert not sel.matches(msg(site="es"))
    sel = Selector("site NOT IN ('uk')")
    assert sel.matches(msg(site="fr"))
    assert not sel.matches(msg(site="uk"))


def test_in_with_missing_property_is_unknown():
    assert Selector("site IN ('uk')").evaluate(msg()) is None


# -------------------------------------------------------------------- LIKE
@pytest.mark.parametrize(
    "pattern,value,expected",
    [
        ("'gen%'", "generator", True),
        ("'gen%'", "agent", False),
        ("'%tor'", "generator", True),
        ("'gen_rator'", "generator", True),
        ("'gen_rator'", "genrator", False),
        ("'12%3'", "123", True),
        ("'12%3'", "12993", True),
        ("'\\_%' ESCAPE '\\'", "_abc", True),
        ("'\\_%' ESCAPE '\\'", "xabc", False),
    ],
)
def test_like_patterns(pattern, value, expected):
    sel = Selector(f"name LIKE {pattern}")
    assert sel.matches(msg(name=value)) is expected


def test_not_like():
    sel = Selector("name NOT LIKE 'gen%'")
    assert sel.matches(msg(name="agent"))
    assert not sel.matches(msg(name="generator"))


def test_like_on_missing_is_unknown():
    assert Selector("name LIKE 'x%'").evaluate(msg()) is None


def test_like_regex_metachars_are_literal():
    sel = Selector("name LIKE 'a.b'")
    assert not sel.matches(msg(name="axb"))
    assert sel.matches(msg(name="a.b"))


# ----------------------------------------------------------------- IS NULL
def test_is_null():
    assert Selector("site IS NULL").matches(msg())
    assert not Selector("site IS NULL").matches(msg(site="uk"))
    assert Selector("site IS NOT NULL").matches(msg(site="uk"))
    assert not Selector("site IS NOT NULL").matches(msg())


# ------------------------------------------------------------------ headers
def test_selector_on_jms_headers():
    m = msg()
    m.priority = 8
    assert Selector("JMSPriority > 5").matches(m)
    assert Selector("JMSDeliveryMode = 'NON_PERSISTENT'").matches(m)


# ------------------------------------------------------------------- syntax
@pytest.mark.parametrize(
    "bad",
    [
        "",
        "   ",
        "id <",
        "id << 3",
        "(id = 1",
        "id = 1)",
        "id BETWEEN 1",
        "site IN ()",
        "site IN (5)",
        "name LIKE 'x' ESCAPE 'ab'",
        "AND id = 1",
        "id = 1 AND",
        "id ~ 3",
        "'unterminated",
        "id NOT 5",
    ],
)
def test_invalid_selectors_rejected(bad):
    with pytest.raises(InvalidSelectorException):
        Selector(bad)


def test_string_literal_quote_escaping():
    sel = Selector("name = 'it''s'")
    assert sel.matches(msg(name="it's"))


def test_float_literal_forms():
    assert Selector("x = 1.5").matches(msg(x=1.5))
    assert Selector("x = .5").matches(msg(x=0.5))
    assert Selector("x = 1e2").matches(msg(x=100.0))
    assert Selector("x = 1.5E-1").matches(msg(x=0.15))


def test_keywords_case_insensitive():
    sel = Selector("a between 1 and 3 or name like 'x%' And flag = true")
    assert sel.matches(msg(a=2, name="q", flag=False))


def test_identifiers_reported():
    sel = Selector("id < 10 AND site IN ('uk') OR JMSPriority > 3")
    assert sel.identifiers == {"id", "site", "JMSPriority"}


def test_parse_selector_helper():
    assert parse_selector(None) is None
    assert parse_selector("  ") is None
    assert parse_selector("id = 1") is not None


def test_integer_division_truncates_toward_zero():
    assert Selector("7 / 2 = 3").matches(msg())
    assert Selector("-7 / 2 = -3").matches(msg())


def test_nested_not():
    assert Selector("NOT NOT a = 1").matches(msg(a=1))
