"""Property-based tests for the selector engine (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jms import InvalidSelectorException, Message, Selector

ints = st.integers(min_value=-10**9, max_value=10**9)
floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
prop_names = st.sampled_from(["id", "x", "y", "site", "flag"])


def msg(**props):
    m = Message()
    for k, v in props.items():
        m.set_property(k, v)
    return m


@given(ints, ints)
def test_comparison_agrees_with_python(a, b):
    m = msg(x=a, y=b)
    assert Selector("x < y").matches(m) == (a < b)
    assert Selector("x = y").matches(m) == (a == b)
    assert Selector("x >= y").matches(m) == (a >= b)


@given(ints, ints, ints)
def test_between_equivalence(v, lo, hi):
    m = msg(x=v)
    expected = lo <= v <= hi
    assert Selector(f"x BETWEEN {_lit(lo)} AND {_lit(hi)}").matches(m) == expected
    assert Selector(f"x NOT BETWEEN {_lit(lo)} AND {_lit(hi)}").matches(m) == (
        not expected
    )


def _lit(n):
    """SQL numeric literal (negatives need the unary-minus form)."""
    return str(n) if n >= 0 else f"-{-n}"


@given(floats, floats)
def test_arithmetic_addition(a, b):
    m = msg(x=a, y=b)
    sel = Selector("x + y >= 0")
    assert sel.matches(m) == (a + b >= 0)


@given(ints)
def test_not_involution(v):
    m = msg(x=v)
    assert Selector("NOT NOT x > 0").matches(m) == Selector("x > 0").matches(m)


@given(ints, ints)
def test_de_morgan(a, b):
    """NOT(p AND q) == (NOT p) OR (NOT q) under three-valued logic
    (identical when all operands are known)."""
    m = msg(x=a, y=b)
    lhs = Selector("NOT (x > 0 AND y > 0)").evaluate(m)
    rhs = Selector("NOT x > 0 OR NOT y > 0").evaluate(m)
    assert lhs == rhs


@given(st.text(alphabet="ab_%", min_size=0, max_size=8),
       st.text(alphabet="ab", min_size=0, max_size=8))
def test_like_matches_manual_semantics(pattern, value):
    """LIKE agrees with a reference implementation of %/_ matching."""
    sel = Selector(f"s LIKE '{pattern}'")
    got = sel.matches(msg(s=value))
    assert got == _ref_like(pattern, value)


def _ref_like(pattern, value):
    # Reference: dynamic programming over pattern/value.
    import functools

    @functools.lru_cache(maxsize=None)
    def match(i, j):
        if i == len(pattern):
            return j == len(value)
        c = pattern[i]
        if c == "%":
            return any(match(i + 1, k) for k in range(j, len(value) + 1))
        if j >= len(value):
            return False
        if c == "_" or c == value[j]:
            return match(i + 1, j + 1)
        return False

    return match(0, 0)


@given(st.text(max_size=20))
def test_garbage_never_crashes_only_raises_selector_error(text):
    """Arbitrary input either parses or raises InvalidSelectorException."""
    try:
        Selector(text)
    except InvalidSelectorException:
        pass


@given(ints)
def test_missing_property_never_matches(v):
    sel = Selector("nonexistent > 0 OR nonexistent <= 0")
    assert not sel.matches(msg(x=v))


@given(st.sampled_from(["uk", "fr", "de", "es", "it"]))
def test_in_equivalence(site):
    sel = Selector("site IN ('uk', 'fr', 'de')")
    assert sel.matches(msg(site=site)) == (site in {"uk", "fr", "de"})


@given(ints, ints)
def test_selector_is_pure(a, b):
    """Evaluating twice gives the same answer (no hidden state)."""
    sel = Selector("x * 2 + y < 100")
    m = msg(x=a, y=b)
    assert sel.matches(m) == sel.matches(m)
