"""Tests for the long-poll edge gateway against a fake upstream."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.cluster import HydraCluster
from repro.edge import EdgeConfig, EdgeGateway
from repro.sim import Simulator
from repro.transport import TcpTransport
from repro.transport.base import ChannelClosed, TransportError
from repro.transport.http import HttpClient


@dataclass
class FakeRecord:
    gen_id: int
    seq: int
    t_before_send: float
    t_arrived: Optional[float] = None
    t_received: Optional[float] = None


class Payload:
    def __init__(self, gen_id, seq, created):
        self._record = FakeRecord(gen_id, seq, created)


class FakeSession:
    def __init__(self, name):
        self.name = name
        self.closed = False
        self.delivers = {}
        self.connections = 1

    def subscribe(self, topic, deliver):
        self.delivers[topic] = deliver
        yield from ()

    def close(self):
        self.closed = True

    def push(self, topic, payload, nbytes=140.0):
        self.delivers[topic](topic, payload, nbytes)


class FakeUpstream:
    def __init__(self):
        self.sessions = []

    def open(self, node, name):
        session = FakeSession(name)
        self.sessions.append(session)
        return session


def build(config=None, seed=11):
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    upstream = FakeUpstream()
    gateway = EdgeGateway(
        sim,
        cluster.node("hydra2"),
        "gw0",
        upstream,
        ("gridmon",),
        config=config or EdgeConfig(long_poll_timeout=5.0),
        transport=tcp,
    )
    gateway.start()
    sim.run(until=sim.now + 0.1)
    client = HttpClient(sim, tcp, cluster.node("hydra1"), "hydra2", 7070)
    return sim, gateway, upstream.sessions[-1], client, upstream


def poll(client, topic="gridmon", cursor=None, weight=1.0, catch_up_from=None):
    body = {"topic": topic, "weight": weight}
    if cursor is not None:
        body["cursor"] = cursor
    if catch_up_from is not None:
        body["catch_up_from"] = catch_up_from
    return client.request("/edge/poll", body, 96.0)


def test_parked_poll_wakes_on_upstream_event():
    sim, gateway, session, client, _ = build()
    sim.call_at(sim.now + 1.0, lambda: session.push("gridmon", Payload(1, 0, sim.now)))

    def run():
        t0 = sim.now
        resp = yield from poll(client)
        return resp, sim.now - t0

    resp, waited = sim.run_process(run())
    assert resp.status == 200
    assert len(resp.body["events"]) == 1
    assert resp.body["cursor"][0] == "gw0#0"
    assert waited >= 1.0  # parked until the event, not answered immediately
    assert gateway.stats.long_polls_parked == 1
    assert gateway.stats.events_out == 1


def test_unknown_topic_is_refused():
    sim, gateway, session, client, _ = build()

    def run():
        return (yield from poll(client, topic="nope"))

    assert sim.run_process(run()).status == 404
    assert gateway.stats.polls_refused == 1


def test_timeout_returns_204_then_cursor_resumes():
    sim, gateway, session, client, _ = build(EdgeConfig(long_poll_timeout=2.0))

    def first():
        t0 = sim.now
        resp = yield from poll(client)
        return resp, sim.now - t0

    resp, waited = sim.run_process(first())
    assert resp.status == 204
    assert waited >= 2.0
    assert gateway.stats.polls_timed_out == 1
    cursor = tuple(resp.body["cursor"])

    # An event lands while the client is between polls; the cursor read
    # picks it up with no parking.
    session.push("gridmon", Payload(1, 7, sim.now))

    def second():
        return (yield from poll(client, cursor=cursor))

    resp2 = sim.run_process(second())
    assert resp2.status == 200
    assert [p._record.seq for p in resp2.body["events"]] == [7]


def test_catch_up_from_replays_created_window():
    sim, gateway, session, client, _ = build()
    created0 = sim.now
    session.push("gridmon", Payload(1, 0, created0))
    session.push("gridmon", Payload(1, 1, created0 + 10.0))

    def run():
        # A failed-over client knows only the created-time of its last
        # delivered event; margin overlap is deduplicated client-side.
        return (yield from poll(client, catch_up_from=created0 + 10.0))

    resp = sim.run_process(run())
    assert resp.status == 200
    seqs = [p._record.seq for p in resp.body["events"]]
    assert 1 in seqs
    assert gateway.stats.catch_up_polls == 1


def test_shed_responds_503_with_jittered_retry_after():
    config = EdgeConfig(
        long_poll_timeout=5.0,
        heap_bytes=1024 * 1024,
        parked_heap_bytes=9216.0,
        shed_heap_fraction=0.5,
    )
    sim, gateway, session, client, _ = build(config)

    def run():
        # weight ~ a cohort of 100 clients: 921 KB > the 512 KB watermark.
        return (yield from poll(client, weight=100.0))

    resp = sim.run_process(run())
    assert resp.status == 503
    assert gateway.stats.polls_shed == 1
    retry_after = resp.body["retry_after"]
    assert config.retry_after <= retry_after
    assert retry_after <= config.retry_after + config.retry_after_jitter


def test_connection_heap_allocated_once_not_per_poll():
    config = EdgeConfig(long_poll_timeout=5.0)
    sim, gateway, session, client, _ = build(config)

    def cycle(i):
        sim.call_at(
            sim.now + 0.5, lambda: session.push("gridmon", Payload(1, i, sim.now))
        )
        resp = yield from poll(client)
        return resp

    first = sim.run_process(cycle(0))
    assert first.status == 200
    heap_after_first = gateway.jvm.heap_used
    assert heap_after_first >= config.parked_heap_bytes
    for i in range(1, 4):
        assert sim.run_process(cycle(i)).status == 200
    # Re-parks on the same keep-alive socket cost no allocation churn.
    assert gateway.jvm.heap_used == heap_after_first
    assert len(gateway._conn_heap) == 1


def test_crash_severs_parked_polls_and_frees_heap():
    sim, gateway, session, client, _ = build()
    sim.call_at(sim.now + 1.0, gateway.crash)

    def run():
        yield from poll(client)

    with pytest.raises((ChannelClosed, TransportError)):
        sim.run_process(run())
    assert not gateway.alive
    assert gateway.jvm.heap_used == 0
    assert gateway._conn_heap == {}
    assert gateway.parked_weight == 0.0


def test_restart_is_a_fresh_incarnation():
    sim, gateway, session, client, upstream = build()
    gateway.crash()
    gateway.restart()
    sim.run(until=sim.now + 0.1)
    assert gateway.alive
    assert gateway.incarnation == 1
    fresh = upstream.sessions[-1]
    assert fresh is not session and not fresh.closed
    assert session.closed  # old incarnation's upstream was torn down
    sim.call_at(sim.now + 0.5, lambda: fresh.push("gridmon", Payload(2, 0, sim.now)))

    def run():
        client2 = HttpClient(
            sim, client.transport, client.node, "hydra2", 7070
        )
        return (yield from poll(client2))

    resp = sim.run_process(run())
    assert resp.status == 200
    assert resp.body["cursor"][0] == "gw0#1"  # new ring epoch


def test_parked_gauges_track_weight():
    from repro.telemetry import Telemetry
    from repro.telemetry import context as tel_context

    tel = Telemetry("edge-gauges")
    with tel_context.session(tel):
        sim, gateway, session, client, _ = build(EdgeConfig(long_poll_timeout=2.0))

        def run():
            return (yield from poll(client, weight=250.0))

        def probe():
            yield sim.timeout(1.0)
            return (
                tel.metrics.gauge("edge", "gw0", "parked_connections").value,
                tel.metrics.gauge("edge", "gw0", "parked_polls").value,
                tel.metrics.gauge("edge", "gw0", "upstream_connections").value,
            )

        sim.process(run(), name="poller")
        parked_weight, parked_polls, upstream_conns = sim.run_process(probe())
    assert parked_weight == 250.0
    assert parked_polls == 1
    assert upstream_conns == 1
