"""Tests for the per-topic replay ring."""

from repro.edge.replay import ReplayRing


def ring(capacity=4):
    return ReplayRing("gridmon", capacity, epoch="gw0#0")


def fill(r, n, t0=0.0):
    for i in range(n):
        r.append({"i": i}, 140.0, t_in=t0 + i, created=t0 + i)


def test_append_assigns_monotonic_seqs():
    r = ring()
    fill(r, 3)
    events, next_cursor, truncated = r.read(0)
    assert [e.seq for e in events] == [0, 1, 2]
    assert next_cursor == 3
    assert not truncated
    assert r.end_seq == 3
    assert r.appended == 3


def test_cursor_read_returns_only_unseen():
    r = ring()
    fill(r, 3)
    events, next_cursor, _ = r.read(2)
    assert [e.payload["i"] for e in events] == [2]
    assert next_cursor == 3
    # Caught-up cursor: nothing more, cursor stays put.
    events, next_cursor, truncated = r.read(3)
    assert events == []
    assert next_cursor == 3
    assert not truncated


def test_read_respects_limit():
    r = ring(capacity=10)
    fill(r, 8)
    events, next_cursor, _ = r.read(0, limit=3)
    assert [e.seq for e in events] == [0, 1, 2]
    assert next_cursor == 3  # resumes exactly where the page ended


def test_eviction_truncates_stale_cursors():
    r = ring(capacity=4)
    fill(r, 10)  # seqs 6..9 retained
    assert len(r) == 4
    assert r.evicted == 6
    assert r.oldest_seq == 6
    events, next_cursor, truncated = r.read(2)
    assert truncated  # cursor 2 fell off the tail: events 2..5 are gone
    assert [e.seq for e in events] == [6, 7, 8, 9]
    assert next_cursor == 10


def test_empty_ring_with_advanced_seq_is_truncated():
    r = ring(capacity=2)
    fill(r, 5)
    r._events.clear()  # crash-adjacent edge: history gone, seq survived
    events, next_cursor, truncated = r.read(0)
    assert truncated
    assert events == []
    assert next_cursor == 5


def test_read_since_created_replays_time_window():
    r = ring(capacity=10)
    fill(r, 6, t0=100.0)  # created 100..105
    events, next_cursor = r.read_since_created(103.0)
    assert [e.created for e in events] == [103.0, 104.0, 105.0]
    assert next_cursor == 6
    # Nothing that recent: cursor points at the ring's live end.
    events, next_cursor = r.read_since_created(500.0)
    assert events == []
    assert next_cursor == 6


def test_read_since_created_filter_and_limit():
    r = ring(capacity=10)
    fill(r, 6, t0=0.0)
    events, next_cursor = r.read_since_created(
        0.0, limit=2, matches=lambda e: e.payload["i"] % 2 == 0
    )
    assert [e.payload["i"] for e in events] == [0, 2]
    assert next_cursor == 3


def test_epoch_identifies_incarnation():
    a = ReplayRing("t", 4, epoch="gw0#0")
    b = ReplayRing("t", 4, epoch="gw0#1")
    assert a.epoch != b.epoch
