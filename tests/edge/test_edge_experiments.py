"""Experiment-level tests: pooling, determinism, cache keys, chaos."""

import pytest

from repro.edge import EdgeConfig
from repro.harness import edge_experiments
from repro.harness.scale import Scale


def smoke():
    return Scale.smoke()


def test_edge_point_happy_path_pools_connections():
    run = edge_experiments.edge_point(2000, 2, "narada", scale=smoke(), seed=3)
    assert run.loss_rate == 0.0
    assert run.client_duplicates == 0
    # The headline: population-independent upstream fan-in.
    assert run.pooled_connections <= 2 * len(("gridmon",)) + 2
    assert run.pooled_connections < run.n_clients / 100
    assert run.baseline_connections == 2000
    assert run.long_polls_parked > 0


def test_edge_point_is_deterministic():
    a = edge_experiments.edge_point(1000, 2, "narada", scale=smoke(), seed=5)
    b = edge_experiments.edge_point(1000, 2, "narada", scale=smoke(), seed=5)
    assert a.rtts.tolist() == b.rtts.tolist()
    assert a.sent == b.sent and a.received == b.received
    assert a.pooled_connections == b.pooled_connections


def test_run_edge_sweep_parallel_matches_serial():
    points = ((500, 1), (500, 2))
    serial = edge_experiments.run_edge_sweep(
        points, "narada", scale=smoke(), seed=9, jobs=1
    )
    fanned = edge_experiments.run_edge_sweep(
        points, "narada", scale=smoke(), seed=9, jobs=2
    )
    for point in points:
        assert serial[point].rtts.tolist() == fanned[point].rtts.tolist()
        assert serial[point].sent == fanned[point].sent
        assert serial[point].gateway_stats == fanned[point].gateway_stats


def test_sweep_cache_key_folds_gateway_topology():
    points = ((1000, 1), (1000, 4))
    base = edge_experiments.sweep_cache_key(points, "narada")
    # Different gateway count at the same client count -> different key.
    assert base != edge_experiments.sweep_cache_key(((1000, 2), (1000, 4)), "narada")
    # Different middleware -> different key.
    assert base != edge_experiments.sweep_cache_key(points, "plog")
    # Re-tuned gateway config -> different key.
    tuned = EdgeConfig(replay_capacity=8192)
    assert base != edge_experiments.sweep_cache_key(points, "narada", tuned)
    # Same inputs -> identical (hashable) key.
    assert base == edge_experiments.sweep_cache_key(points, "narada")
    assert hash(base) == hash(edge_experiments.sweep_cache_key(points, "narada"))


def test_edge_scaling_reports_pooling_meta():
    sweep = edge_experiments.run_edge_sweep(
        ((500, 1), (2000, 1)), "narada", scale=smoke(), seed=2
    )
    direct = edge_experiments.direct_point("narada", scale=smoke(), seed=2)
    result = edge_experiments.edge_scaling(sweep, direct, "narada")
    assert result.meta["max_clients"] == 2000
    assert result.meta["max_pooled"] <= 4
    assert result.meta["pooled_connections"]["500x1"] == result.meta[
        "pooled_connections"
    ]["2000x1"]
    assert all(loss == 0.0 for loss in result.meta["loss"].values())


def test_gateway_crash_is_exactly_once():
    result = edge_experiments.run_gateway_crash(
        scale=smoke(), seed=4, fault_plan="gateway_outage"
    )
    assert set(result.meta["loss"]) == set(edge_experiments.EDGE_MIDDLEWARES)
    assert all(loss == 0.0 for loss in result.meta["loss"].values())
    assert all(d == 0 for d in result.meta["duplicates"].values())
    # The stamping client actually failed over during the outage.
    assert all(f >= 1 for f in result.meta["failovers"].values())


@pytest.mark.slow
def test_million_clients_sixteen_gateways():
    """The full-scale headline point: 1M clients, upstream fan-in stays
    O(gateways x topics).  Minutes of wall clock — deselected by default."""
    run = edge_experiments.edge_point(
        1_000_000, 16, "narada", scale=smoke(), seed=1
    )
    assert run.loss_rate == 0.0
    assert run.pooled_connections <= 16 * 2
    assert run.baseline_connections == 1_000_000
