"""Tests for the legacy Stream Producer / Archiver API (§III.F.3, [11])."""

import pytest

from repro.cluster import HydraCluster
from repro.rgma import RGMADeployment
from repro.rgma.stream_producer import LegacyDeployment, StreamProducerClient
from repro.sim import Simulator


def build(seed=81):
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.single_server(sim, cluster)
    legacy = LegacyDeployment(deployment)
    return sim, cluster, deployment, legacy


def row(genid, power=1.0):
    base = {f"ival{i}": 0 for i in range(1, 4)}
    base.update({f"dval{i}": 0.0 for i in range(2, 9)})
    base.update({f"sval{i}": "x" for i in range(1, 5)})
    return {"genid": genid, "dval1": power, **base}


def make_archiver(sim, cluster, deployment, where=None, node="hydra6"):
    from repro.transport.http import HttpClient

    http = HttpClient(sim, deployment.transport, cluster.node(node), "hydra1", 8080)

    def go():
        response = yield from http.request(
            "/archiver/create", {"table": "gridmon", "where": where}, 140
        )
        assert response.status == 200
        return response.body["resource_id"]

    return sim.run_process(go())


def test_push_reaches_archiver_immediately():
    sim, cluster, deployment, legacy = build()
    archiver_id = make_archiver(sim, cluster, deployment)
    got = []
    legacy.archiver_callback(archiver_id, got.append)
    producer = StreamProducerClient(
        sim, deployment.transport, cluster.node("hydra5"), "hydra1", 8080
    )

    def run():
        yield from producer.create("gridmon")
        yield from producer.insert(row(1, 42.0))

    sim.run_process(run())
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1
    assert got[0].row["dval1"] == 42.0


def test_legacy_latency_far_below_new_api():
    """The [11] discrepancy: the old API is sub-100 ms where the new API
    takes ~half a second."""
    sim, cluster, deployment, legacy = build()
    archiver_id = make_archiver(sim, cluster, deployment)
    latencies = []
    legacy.archiver_callback(
        archiver_id,
        lambda t: latencies.append(sim.now - t.meta["t_before_send"]),
    )
    producer = StreamProducerClient(
        sim, deployment.transport, cluster.node("hydra5"), "hydra1", 8080
    )

    def run():
        yield from producer.create("gridmon")
        for i in range(10):
            yield from producer.insert(row(1, float(i)))
            yield sim.timeout(1.0)

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert len(latencies) == 10
    assert max(latencies) < 0.1  # the old API streams directly


def test_archiver_where_filters():
    sim, cluster, deployment, legacy = build()
    archiver_id = make_archiver(sim, cluster, deployment, where="genid < 5")
    got = []
    legacy.archiver_callback(archiver_id, got.append)
    producer = StreamProducerClient(
        sim, deployment.transport, cluster.node("hydra5"), "hydra1", 8080
    )

    def run():
        yield from producer.create("gridmon")
        for genid in (1, 7, 3, 9):
            yield from producer.insert(row(genid))

    sim.run_process(run())
    sim.run(until=sim.now + 1.0)
    assert sorted(t.row["genid"] for t in got) == [1, 3]


def test_archiver_created_after_producer_still_attached():
    sim, cluster, deployment, legacy = build()
    producer = StreamProducerClient(
        sim, deployment.transport, cluster.node("hydra5"), "hydra1", 8080
    )

    def make_producer():
        yield from producer.create("gridmon")

    sim.run_process(make_producer())
    archiver_id = make_archiver(sim, cluster, deployment)
    got = []
    legacy.archiver_callback(archiver_id, got.append)

    def publish():
        yield from producer.insert(row(2))

    sim.run_process(publish())
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1


def test_new_api_still_works_alongside_legacy():
    """Deploying the legacy servlets must not break the PP/Consumer path."""
    sim, cluster, deployment, legacy = build()
    consumer = deployment.consumer_client(cluster.node("hydra7"))

    def mk_consumer():
        yield from consumer.create("SELECT * FROM gridmon")

    sim.run_process(mk_consumer())
    client = deployment.producer_client(cluster.node("hydra5"))

    def mk_producer():
        yield from client.create("gridmon")

    sim.run_process(mk_producer())
    got = []
    sim.process(consumer.poll_loop(got.append))
    sim.run(until=sim.now + 6.0)

    def publish():
        yield from client.insert(row(3))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    consumer.stop()
    assert len(got) == 1
