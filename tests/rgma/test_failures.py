"""R-GMA failure injection: bad requests, OOM servlets, retention purges."""

import pytest

from repro.cluster import HydraCluster
from repro.rgma import RGMAConfig, RGMADeployment
from repro.sim import Simulator
from repro.transport.http import HttpClient


def single(config=None, seed=51):
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.single_server(sim, cluster, config)
    return sim, cluster, deployment


def http(sim, cluster, deployment, node="hydra5"):
    return HttpClient(
        sim, deployment.transport, cluster.node(node), "hydra1", 8080
    )


def request(sim, client, path, body, nbytes=200):
    def go():
        response = yield from client.request(path, body, nbytes)
        return response

    return sim.run_process(go())


def test_unknown_servlet_404():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    response = request(sim, client, "/nope", {})
    assert response.status == 404


def test_insert_to_unknown_resource_500():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    response = request(
        sim, client, "/pp/insert",
        {"resource_id": "ghost", "sql": "INSERT INTO gridmon (genid) VALUES (1)"},
    )
    assert response.status == 500
    assert "no such producer" in response.body["error"]


def test_malformed_sql_500_not_crash():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    create = request(sim, client, "/pp/create", {"table": "gridmon"})
    rid = create.body["resource_id"]
    response = request(
        sim, client, "/pp/insert", {"resource_id": rid, "sql": "DELETE FROM x"}
    )
    assert response.status == 500
    # The container survives and keeps serving.
    ok = request(
        sim, client, "/pp/insert",
        {"resource_id": rid, "sql": "INSERT INTO gridmon (genid) VALUES (7)"},
    )
    assert ok.status == 200


def test_insert_violating_schema_500():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    create = request(sim, client, "/pp/create", {"table": "gridmon"})
    rid = create.body["resource_id"]
    response = request(
        sim, client, "/pp/insert",
        {"resource_id": rid, "sql": "INSERT INTO gridmon (genid) VALUES ('x')"},
    )
    assert response.status == 500


def test_create_for_unknown_table_500():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    response = request(sim, client, "/pp/create", {"table": "nonexistent"})
    assert response.status == 500


def test_consumer_with_bad_query_500():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    response = request(
        sim, client, "/consumer/create", {"sql": "SELECT * FROM nonexistent"}
    )
    assert response.status == 500


def test_oom_server_returns_503_until_dead():
    """Once producer heap exhausts the JVM, creates fail with 503/closed."""
    config = RGMAConfig(per_producer_heap=400 * 1024 * 1024)  # 2 fit in 1 GiB
    sim, cluster, deployment = single(config)
    client = http(sim, cluster, deployment)
    statuses = []
    for _ in range(4):
        try:
            response = request(sim, client, "/pp/create", {"table": "gridmon"})
            statuses.append(response.status)
        except Exception:
            statuses.append("refused")
    assert statuses[0] == 200
    assert any(s in (503, "refused") for s in statuses[1:])


def test_connector_limit_refuses_new_connections():
    config = RGMAConfig(max_connections=3)
    sim, cluster, deployment = single(config)
    outcomes = []
    for i in range(6):
        client = HttpClient(
            sim, deployment.transport, cluster.node("hydra5"), "hydra1", 8080
        )
        try:
            response = request(sim, client, "/pp/create", {"table": "gridmon"})
            outcomes.append(response.status)
        except Exception:
            outcomes.append("refused")
    assert outcomes.count(200) == 3
    assert outcomes.count("refused") == 3
    site = deployment.sites[0]
    assert site.container.connections_refused == 3


def test_retention_purges_old_tuples_from_history_query():
    sim, cluster, deployment = single()
    client = http(sim, cluster, deployment)
    create = request(sim, client, "/pp/create", {"table": "gridmon"})
    rid = create.body["resource_id"]
    request(
        sim, client, "/pp/insert",
        {"resource_id": rid, "sql": "INSERT INTO gridmon (genid) VALUES (1)"},
    )
    consumer = deployment.consumer_client(cluster.node("hydra6"))

    def query():
        tuples = yield from consumer.query_history("SELECT * FROM gridmon")
        return tuples

    assert len(sim.run_process(query())) == 1
    sim.run(until=sim.now + 61.0)  # past the 60 s history retention
    assert sim.run_process(query()) == []


def test_consumer_close_stops_streaming():
    sim, cluster, deployment = single()
    consumer = deployment.consumer_client(cluster.node("hydra6"))

    def run():
        yield from consumer.create("SELECT * FROM gridmon")
        yield from consumer.close()

    sim.run_process(run())
    site = deployment.sites[0]
    assert all(r.closed for r in site.consumers.values()) or not site.consumers
