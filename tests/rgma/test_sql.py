"""Tests for the R-GMA SQL subset."""

import pytest

from repro.rgma.errors import RGMAException
from repro.rgma.sql import (
    CreateTable,
    Insert,
    RowView,
    Select,
    parse_sql,
    render_insert,
)


# ------------------------------------------------------------- CREATE TABLE
def test_create_table_basic():
    stmt = parse_sql("CREATE TABLE gen (id INTEGER, power DOUBLE, site CHAR(20))")
    assert isinstance(stmt, CreateTable)
    assert stmt.table == "gen"
    assert stmt.columns == (
        ("id", "INTEGER"),
        ("power", "DOUBLE"),
        ("site", "CHAR(20)"),
    )
    assert stmt.primary_key == ()


def test_create_table_inline_primary_key():
    stmt = parse_sql("CREATE TABLE gen (id INTEGER PRIMARY KEY, power REAL)")
    assert stmt.primary_key == ("id",)


def test_create_table_trailing_primary_key_clause():
    stmt = parse_sql("CREATE TABLE g (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
    assert stmt.primary_key == ("a", "b")


def test_create_table_unknown_type_rejected():
    with pytest.raises(RGMAException, match="unknown column type"):
        parse_sql("CREATE TABLE g (a BLOB)")


def test_create_table_empty_rejected():
    with pytest.raises(RGMAException):
        parse_sql("CREATE TABLE g ()")


# ------------------------------------------------------------------- INSERT
def test_insert_with_columns():
    stmt = parse_sql("INSERT INTO gen (id, power) VALUES (7, 1.5)")
    assert isinstance(stmt, Insert)
    assert stmt.columns == ("id", "power")
    assert stmt.values == (7, 1.5)


def test_insert_without_columns():
    stmt = parse_sql("INSERT INTO gen VALUES (1, 'uk', NULL)")
    assert stmt.columns == ()
    assert stmt.values == (1, "uk", None)


def test_insert_negative_and_string_escapes():
    stmt = parse_sql("INSERT INTO g (a, b) VALUES (-5, 'it''s')")
    assert stmt.values == (-5, "it's")


def test_insert_count_mismatch_rejected():
    with pytest.raises(RGMAException, match="columns but"):
        parse_sql("INSERT INTO g (a, b) VALUES (1)")


def test_insert_trailing_garbage_rejected():
    with pytest.raises(RGMAException):
        parse_sql("INSERT INTO g (a) VALUES (1) garbage")


# ------------------------------------------------------------------- SELECT
def test_select_star():
    stmt = parse_sql("SELECT * FROM gen")
    assert isinstance(stmt, Select)
    assert stmt.columns == ()
    assert stmt.where is None


def test_select_columns():
    stmt = parse_sql("SELECT id, power FROM gen")
    assert stmt.columns == ("id", "power")


def test_select_where_predicate_evaluates():
    stmt = parse_sql("SELECT * FROM gen WHERE id < 100 AND site = 'uk'")
    assert stmt.where is not None
    assert stmt.where.matches(RowView({"id": 5, "site": "uk"}))
    assert not stmt.where.matches(RowView({"id": 5, "site": "fr"}))
    assert not stmt.where.matches(RowView({"id": 500, "site": "uk"}))


def test_select_where_supports_selector_grammar():
    stmt = parse_sql(
        "SELECT * FROM gen WHERE power BETWEEN 1 AND 9 OR site LIKE 'hy%'"
    )
    assert stmt.where.matches(RowView({"power": 5}))
    assert stmt.where.matches(RowView({"power": 99, "site": "hydra"}))


def test_select_bad_where_rejected():
    with pytest.raises(RGMAException, match="WHERE"):
        parse_sql("SELECT * FROM gen WHERE")
    with pytest.raises(RGMAException, match="bad WHERE"):
        parse_sql("SELECT * FROM gen WHERE id <")


def test_unsupported_statement_rejected():
    with pytest.raises(RGMAException, match="unsupported"):
        parse_sql("DROP TABLE gen")
    with pytest.raises(RGMAException):
        parse_sql("")


def test_semicolon_tolerated():
    stmt = parse_sql("SELECT * FROM gen;")
    assert isinstance(stmt, Select)


# ------------------------------------------------------------ render_insert
def test_render_insert_round_trip():
    row = {"id": 3, "power": 2.5, "site": "o'brien", "note": None}
    stmt = parse_sql(render_insert("gen", row))
    assert stmt.table == "gen"
    assert dict(zip(stmt.columns, stmt.values)) == row


def test_render_insert_float_precision():
    row = {"v": 0.1 + 0.2}
    stmt = parse_sql(render_insert("t", row))
    assert stmt.values[0] == row["v"]  # repr round-trips exactly
