"""Tests for the schema service and tuple storage retention."""

import pytest

from repro.rgma.errors import RGMAException
from repro.rgma.schema import Schema, grid_monitoring_table
from repro.rgma.sql import parse_sql
from repro.rgma.storage import TupleStore
from repro.sim import Simulator


def make_table():
    schema = Schema()
    return schema, schema.create_table(
        parse_sql("CREATE TABLE gen (id INTEGER PRIMARY KEY, power DOUBLE, site CHAR(10))")
    )


# --------------------------------------------------------------------- schema
def test_create_and_lookup():
    schema, table = make_table()
    assert schema.exists("gen")
    assert schema.table("gen") is table
    assert schema.table_names() == ["gen"]
    assert table.column_names() == ("id", "power", "site")


def test_duplicate_table_rejected():
    schema, _ = make_table()
    with pytest.raises(RGMAException, match="already exists"):
        schema.create_table(parse_sql("CREATE TABLE gen (x INTEGER)"))


def test_unknown_table_rejected():
    schema, _ = make_table()
    with pytest.raises(RGMAException, match="unknown table"):
        schema.table("nope")


def test_duplicate_columns_rejected():
    schema = Schema()
    with pytest.raises(RGMAException, match="duplicate"):
        schema.create_table(parse_sql("CREATE TABLE t (a INTEGER, a DOUBLE)"))


def test_pk_must_be_column():
    schema = Schema()
    with pytest.raises(RGMAException, match="not a column"):
        schema.create_table(parse_sql("CREATE TABLE t (a INTEGER, PRIMARY KEY (z))"))


def test_row_validation():
    _, table = make_table()
    table.validate_row({"id": 1, "power": 2.5, "site": "uk"})
    with pytest.raises(RGMAException, match="expected INTEGER"):
        table.validate_row({"id": "one"})
    with pytest.raises(RGMAException, match="expected string"):
        table.validate_row({"id": 1, "site": 5})
    with pytest.raises(RGMAException, match="longer than"):
        table.validate_row({"id": 1, "site": "x" * 11})
    with pytest.raises(RGMAException, match="primary key"):
        table.validate_row({"power": 1.0})
    with pytest.raises(RGMAException, match="no column"):
        table.validate_row({"id": 1, "bogus": 2})


def test_bool_is_not_integer():
    _, table = make_table()
    with pytest.raises(RGMAException):
        table.validate_row({"id": True})


def test_paper_table_shape_and_size():
    """§III.F payload: 4 integer, 8 double, 4 char(20) values."""
    stmt = grid_monitoring_table()
    schema = Schema()
    table = schema.create_table(stmt)
    types = [c.sql_type for c in table.columns]
    assert types.count("INTEGER") == 4
    assert types.count("DOUBLE") == 8
    assert types.count("CHAR(20)") == 4
    # 4*4 + 8*8 + 4*20 + timestamp
    assert table.row_bytes() == 16 + 64 + 80 + 8


# -------------------------------------------------------------------- storage
def test_insert_and_history():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table)
    store.insert({"id": 1, "power": 1.0, "site": "uk"})
    store.insert({"id": 2, "power": 2.0, "site": "fr"})
    assert len(store) == 2
    rows = [t.row["id"] for t in store.history()]
    assert rows == [1, 2]


def test_latest_keeps_one_per_key():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table)
    store.insert({"id": 1, "power": 1.0})
    sim.run(until=1.0)
    store.insert({"id": 1, "power": 9.0})
    store.insert({"id": 2, "power": 2.0})
    latest = {t.row["id"]: t.row["power"] for t in store.latest()}
    assert latest == {1: 9.0, 2: 2.0}


def test_history_retention_purges():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table, history_retention=60.0)
    store.insert({"id": 1, "power": 1.0})
    sim.run(until=59.0)
    assert len(store.history()) == 1
    sim.run(until=61.0)
    assert store.history() == []
    assert store.purged_count == 1


def test_latest_retention_expires_stale_keys():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table, latest_retention=30.0, history_retention=100.0)
    store.insert({"id": 1, "power": 1.0})
    sim.run(until=31.0)
    assert store.latest() == []
    assert len(store.history()) == 1  # still inside history retention


def test_since_seq_cursor():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table)
    t1 = store.insert({"id": 1})
    t2 = store.insert({"id": 2})
    t3 = store.insert({"id": 3})
    assert [t.row["id"] for t in store.since_seq(t1.seq)] == [2, 3]
    assert store.since_seq(t3.seq) == []


def test_validation_enforced_on_insert():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table)
    with pytest.raises(RGMAException):
        store.insert({"id": "bad"})


def test_invalid_retention_rejected():
    sim = Simulator()
    _, table = make_table()
    with pytest.raises(ValueError):
        TupleStore(sim, table, latest_retention=0.0)


def test_meta_copied_not_shared():
    sim = Simulator()
    _, table = make_table()
    store = TupleStore(sim, table)
    meta = {"t_before_send": 1.0}
    t = store.insert({"id": 1}, meta)
    meta["t_before_send"] = 99.0
    assert t.meta["t_before_send"] == 1.0
    assert t.meta["t_stored"] if "t_stored" in t.meta else True
