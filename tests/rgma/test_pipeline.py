"""Integration tests: the full R-GMA pipeline on the simulated cluster.

Producer client -> PP servlet -> store -> mediator attach -> stream ->
consumer resource -> subscriber poll.
"""

import pytest

from repro.cluster import HydraCluster
from repro.rgma import RGMAConfig, RGMADeployment
from repro.sim import Simulator


def single(config=None, seed=21):
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.single_server(sim, cluster, config)
    return sim, cluster, deployment


def make_producer(sim, cluster, deployment, node="hydra5", index=0):
    client = deployment.producer_client(cluster.node(node), index)
    holder = {}

    def go():
        yield from client.create("gridmon")
        holder["ok"] = True

    sim.run_process(go())
    return client


def make_consumer(sim, cluster, deployment, sql="SELECT * FROM gridmon",
                  node="hydra6", index=0, producer_type=None):
    client = deployment.consumer_client(cluster.node(node), index)

    def go():
        yield from client.create(sql, producer_type=producer_type)

    sim.run_process(go())
    return client


def row(genid, power=1.0):
    return {
        "genid": genid,
        "ival1": 1, "ival2": 2, "ival3": 3,
        "dval1": power, "dval2": 2.0, "dval3": 3.0, "dval4": 4.0,
        "dval5": 5.0, "dval6": 6.0, "dval7": 7.0, "dval8": 8.0,
        "sval1": "site-a", "sval2": "site-b", "sval3": "x", "sval4": "y",
    }


def test_insert_then_continuous_delivery():
    sim, cluster, deployment = single()
    consumer = make_consumer(sim, cluster, deployment)
    producer = make_producer(sim, cluster, deployment)
    got = []

    def subscriber():
        yield from consumer.poll_loop(got.append)

    sim.process(subscriber())
    sim.run(until=sim.now + 6.0)  # let the mediator attach

    def publish():
        yield from producer.insert(row(1, power=42.0))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert len(got) == 1
    assert got[0].row["genid"] == 1
    assert got[0].row["dval1"] == 42.0
    consumer.stop()


def test_rtt_in_paper_range_at_light_load():
    """Fig 11: R-GMA RTT is on the order of a second, not milliseconds."""
    sim, cluster, deployment = single()
    consumer = make_consumer(sim, cluster, deployment)
    producer = make_producer(sim, cluster, deployment)
    rtts = []

    def on_tuple(t):
        rtts.append(t.meta["t_received"] - t.meta["t_before_send"])

    def subscriber():
        yield from consumer.poll_loop(on_tuple)

    sim.process(subscriber())
    sim.run(until=sim.now + 6.0)

    def publish():
        for i in range(10):
            yield from producer.insert(row(1))
            yield sim.timeout(2.0)

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert len(rtts) == 10
    mean = sum(rtts) / len(rtts)
    assert 0.2 < mean < 2.5  # order of a second


def test_tuples_before_mediation_are_lost_without_warmup():
    """§III.F: publishing immediately after create loses early tuples."""
    sim, cluster, deployment = single()
    consumer = make_consumer(sim, cluster, deployment)
    got = []

    def subscriber():
        yield from consumer.poll_loop(got.append)

    sim.process(subscriber())
    sim.run(until=sim.now + 6.0)  # consumer is attached and waiting
    producer = make_producer(sim, cluster, deployment)

    # Insert immediately (no warm-up) and then again after warm-up.
    def publish():
        yield from producer.insert(row(1, power=1.0))  # likely lost
        yield sim.timeout(15.0)  # > mediation period
        yield from producer.insert(row(1, power=2.0))  # delivered

    sim.run_process(publish())
    sim.run(until=sim.now + 10.0)
    powers = [t.row["dval1"] for t in got]
    assert 2.0 in powers
    # The early tuple may or may not survive depending on attach timing,
    # but with warm-up it always arrives; this asserts the asymmetry exists.
    assert len(got) <= 2


def test_warmup_prevents_loss():
    sim, cluster, deployment = single()
    consumer = make_consumer(sim, cluster, deployment)
    got = []

    def subscriber():
        yield from consumer.poll_loop(got.append)

    sim.process(subscriber())
    producer = make_producer(sim, cluster, deployment)

    def publish():
        yield sim.timeout(15.0)  # paper's 10-20 s warm-up
        for i in range(5):
            yield from producer.insert(row(1, power=float(i)))
            yield sim.timeout(1.0)

    sim.run_process(publish())
    sim.run(until=sim.now + 10.0)
    assert len(got) == 5


def test_content_based_filtering_at_producer():
    """Consumer's WHERE clause filters tuples producer-side."""
    sim, cluster, deployment = single()
    consumer = make_consumer(
        sim, cluster, deployment, sql="SELECT * FROM gridmon WHERE genid < 10"
    )
    producer = make_producer(sim, cluster, deployment)
    got = []

    def subscriber():
        yield from consumer.poll_loop(got.append)

    sim.process(subscriber())
    sim.run(until=sim.now + 6.0)

    def publish():
        for genid in (5, 50, 7, 70):
            yield from producer.insert(row(genid))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert sorted(t.row["genid"] for t in got) == [5, 7]


def test_latest_query():
    sim, cluster, deployment = single()
    producer = make_producer(sim, cluster, deployment)

    def publish():
        yield sim.timeout(5.0)
        yield from producer.insert(row(1, power=1.0))
        yield from producer.insert(row(2, power=2.0))
        yield from producer.insert(row(1, power=9.0))

    sim.run_process(publish())
    client = deployment.consumer_client(cluster.node("hydra6"))

    def query():
        tuples = yield from client.query_latest("SELECT * FROM gridmon")
        return tuples

    tuples = sim.run_process(query())
    latest = {t.row["genid"]: t.row["dval1"] for t in tuples}
    assert latest == {1: 9.0, 2: 2.0}


def test_history_query_with_where():
    sim, cluster, deployment = single()
    producer = make_producer(sim, cluster, deployment)

    def publish():
        yield sim.timeout(2.0)
        for genid in (1, 2, 3):
            yield from producer.insert(row(genid))

    sim.run_process(publish())
    client = deployment.consumer_client(cluster.node("hydra6"))

    def query():
        tuples = yield from client.query_history(
            "SELECT * FROM gridmon WHERE genid > 1"
        )
        return tuples

    tuples = sim.run_process(query())
    assert sorted(t.row["genid"] for t in tuples) == [2, 3]


def test_secondary_producer_adds_thirty_seconds():
    """Fig 10: the SP path delays tuples by ~30 s + normal pipeline."""
    config = RGMAConfig()
    sim, cluster, deployment = single(config)
    # Create the SP resource on the server.
    site = deployment.sites[0]

    def create_sp():
        from repro.transport.http import HttpClient

        http = HttpClient(
            sim, deployment.transport, cluster.node("hydra7"), "hydra1", 8080
        )
        resp = yield from http.request("/sp/create", {"table": "gridmon"}, 120)
        assert resp.status == 200

    sim.run_process(create_sp())
    # Consumer reading only from the secondary producer.
    consumer = make_consumer(
        sim, cluster, deployment, producer_type="secondary"
    )
    producer = make_producer(sim, cluster, deployment)
    got = []

    def subscriber():
        yield from consumer.poll_loop(got.append)

    sim.process(subscriber())
    sim.run(until=sim.now + 8.0)  # attach everything
    t_sent = {}

    def publish():
        t_sent["t"] = sim.now
        yield from producer.insert(row(1, power=3.0))

    sim.run_process(publish())
    sim.run(until=sim.now + 45.0)
    assert len(got) == 1
    delay = got[0].meta["t_received"] - t_sent["t"]
    assert 30.0 < delay < 38.0


def test_connector_oom_wall():
    """Heap-per-producer exhausts the 1 GiB heap below ~800 producers."""
    config = RGMAConfig(per_producer_heap=64 * 1024 * 1024)  # scaled: wall ~15
    sim, cluster, deployment = single(config)
    from repro.rgma.errors import RGMAException

    ok = failed = 0
    for i in range(20):
        client = deployment.producer_client(cluster.node("hydra5"), 0)

        def go(c=client):
            yield from c.create("gridmon")

        try:
            sim.run_process(go())
            ok += 1
        except (RGMAException, Exception):
            failed += 1
    assert ok < 20
    assert failed > 0
    assert ok >= 10  # most of the budget was usable


def test_distributed_deployment_splits_load():
    sim = Simulator(seed=22)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.distributed(sim, cluster)
    assert len(deployment.sites) == 4
    # Producer clients alternate between producer hosts.
    p0 = deployment.producer_client(cluster.node("hydra5"), 0)
    p1 = deployment.producer_client(cluster.node("hydra5"), 1)
    assert p0.http.server_host == "hydra1"
    assert p1.http.server_host == "hydra2"
    c0 = deployment.consumer_client(cluster.node("hydra7"), 0)
    assert c0.http.server_host == "hydra3"


def test_distributed_end_to_end_cross_nodes():
    """Producer on hydra1-site, consumer resource on hydra3-site."""
    sim = Simulator(seed=23)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.distributed(sim, cluster)
    consumer = deployment.consumer_client(cluster.node("hydra7"), 0)

    def mk_consumer():
        yield from consumer.create("SELECT * FROM gridmon")

    sim.run_process(mk_consumer())
    producer = deployment.producer_client(cluster.node("hydra5"), 0)

    def mk_producer():
        yield from producer.create("gridmon")

    sim.run_process(mk_producer())
    got = []

    def subscriber():
        yield from consumer.poll_loop(got.append)

    sim.process(subscriber())
    sim.run(until=sim.now + 6.0)

    def publish():
        yield from producer.insert(row(9, power=7.0))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert len(got) == 1
    assert got[0].row["genid"] == 9
    consumer.stop()


def test_one_shot_query_projection():
    """SELECT column lists project the returned rows."""
    sim, cluster, deployment = single(seed=29)
    producer = make_producer(sim, cluster, deployment)

    def publish():
        yield sim.timeout(2.0)
        yield from producer.insert(row(4, power=9.0))

    sim.run_process(publish())
    client = deployment.consumer_client(cluster.node("hydra6"))

    def query():
        tuples = yield from client.query_latest("SELECT genid, dval1 FROM gridmon")
        return tuples

    tuples = sim.run_process(query())
    assert len(tuples) == 1
    assert tuples[0].row == {"genid": 4, "dval1": 9.0}
