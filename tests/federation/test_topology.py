"""Tree shape arithmetic: pure-data invariants the overlay relies on."""

import pytest

from repro.federation import FederationParams, TreeTopology, broker_name


def test_broker_count_complete_trees():
    assert FederationParams(fanout=2, depth=1).broker_count == 1
    assert FederationParams(fanout=2, depth=2).broker_count == 3
    assert FederationParams(fanout=2, depth=3).broker_count == 7
    assert FederationParams(fanout=2, depth=4).broker_count == 15
    assert FederationParams(fanout=3, depth=3).broker_count == 13
    assert FederationParams(fanout=1, depth=4).broker_count == 4


def test_params_validation():
    with pytest.raises(ValueError):
        FederationParams(fanout=0)
    with pytest.raises(ValueError):
        FederationParams(depth=0)
    with pytest.raises(ValueError):
        FederationParams(routing="flood")


def test_cache_key_distinguishes_shape_and_mode():
    base = FederationParams(fanout=2, depth=3, routing="routed")
    assert base.cache_key() != FederationParams(
        fanout=2, depth=3, routing="broadcast"
    ).cache_key()
    assert base.cache_key() != FederationParams(fanout=3, depth=3).cache_key()
    assert base.cache_key() != FederationParams(fanout=2, depth=4).cache_key()


def test_parent_child_inverse():
    topology = TreeTopology(15, fanout=2)
    for name in topology.names:
        for child in topology.children(name):
            assert topology.parent(child) == name
    assert topology.parent(topology.root) is None


def test_bfs_heap_layout():
    topology = TreeTopology(7, fanout=2)
    assert topology.root == "fed0"
    assert topology.children("fed0") == ("fed1", "fed2")
    assert topology.children("fed1") == ("fed3", "fed4")
    assert topology.leaves() == ("fed3", "fed4", "fed5", "fed6")
    assert topology.depth == 3
    assert topology.depth_of("fed0") == 0
    assert topology.depth_of("fed6") == 2


def test_left_packed_incomplete_tree():
    topology = TreeTopology(5, fanout=2)
    assert topology.children("fed1") == ("fed3", "fed4")
    assert topology.children("fed2") == ()
    assert topology.is_leaf("fed2")
    assert topology.link_count == 4
    assert len(list(topology.links())) == 4


def test_path_to_root_and_links():
    topology = TreeTopology(15, fanout=2)
    assert topology.path_to_root("fed11") == ("fed11", "fed5", "fed2", "fed0")
    links = list(topology.links())
    assert links[0] == ("fed0", "fed1")
    assert ("fed5", "fed11") in links
    assert len(links) == topology.link_count
    # every non-root broker appears exactly once as a child
    children = [child for _, child in links]
    assert sorted(children) == sorted(topology.names[1:])


def test_from_params_round_trip():
    params = FederationParams(fanout=3, depth=3)
    topology = TreeTopology.from_params(params)
    assert topology.broker_count == params.broker_count
    assert topology.depth == params.depth
    assert topology.names[4] == broker_name(4)
