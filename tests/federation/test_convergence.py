"""Routing-table convergence on the live overlay: subscription propagation,
withdrawal, covering, crash re-parenting and re-convergence — all under
deterministic seeds."""

from repro.core import RecordBook
from repro.federation import (
    FederationController,
    FederationDeployment,
    FederationSitePublishers,
    FederationSubscriber,
    TreeTopology,
    site_topic,
)
from repro.powergrid.generator import PowerGenerator
from repro.powergrid.payload import narada_map_message
from repro.sim import Simulator


def build(n=7, fanout=2, seed=1, detect=0.5):
    sim = Simulator(seed=seed)
    topology = TreeTopology(n, fanout)
    deployment = FederationDeployment(sim, topology)
    sim.run_process(deployment.start())
    controller = FederationController(sim, deployment, detect_interval=detect)
    controller.start()
    return sim, topology, deployment, controller


def subscribe(sim, deployment, broker_name, sub_id, topics, stamp=False):
    sub = FederationSubscriber(
        sim, deployment, broker_name, sub_id, topics, stamp_records=stamp
    )
    sim.run_process(sub.start())
    return sub


def publish_one(sim, deployment, broker_name, topic, gen_id=0, seq=0):
    broker = deployment.broker(broker_name)

    def go():
        channel = yield from deployment.transport.connect(
            broker.node, broker.node.name, broker.port
        )
        model = PowerGenerator(gen_id, sim.rng.stream(f"test.{gen_id}"))
        message = narada_map_message(model.sample(sim.now))
        message.message_id = f"test.{gen_id}.{seq}"
        message._fed_topic = topic
        yield from channel.send(
            ("publish", message, topic),
            message.wire_size() + deployment.config.frame_overhead_bytes,
        )

    sim.run_process(go())


def settle(sim, dt=1.0):
    sim.run(until=sim.now + dt)


# ------------------------------------------------------------- propagation

def test_subscription_propagates_to_root():
    sim, topology, deployment, _ = build()
    sub = subscribe(sim, deployment, "fed3", "s", ("t",))
    settle(sim)
    assert deployment.broker("fed3").table.has_local("t")
    assert deployment.broker("fed1").table.children_for("t") == ("fed3",)
    assert deployment.broker("fed0").table.children_for("t") == ("fed1",)
    # an event published in the *opposite* subtree climbs to the root and
    # descends only the interested branch
    publish_one(sim, deployment, "fed6", "t")
    settle(sim)
    assert sub.delivered == 1
    assert sub.delivered_by_topic == {"t": 1}
    # the publisher's subtree carried the climb but saw no descent
    assert deployment.link_traffic.get(("fed0", "fed2"), 0) == 0
    assert deployment.broker("fed2").stats.forwards_down == 0


def test_unsubscribe_withdraws_up_the_tree():
    sim, topology, deployment, _ = build()
    sub = subscribe(sim, deployment, "fed3", "s", ("t",))
    settle(sim)
    sim.run_process(sub.unsubscribe("t"))
    settle(sim)
    for name in ("fed3", "fed1", "fed0"):
        assert not deployment.broker(name).table.has_interest("t")
    descents_before = deployment.broker("fed0").stats.forwards_down
    publish_one(sim, deployment, "fed6", "t")
    settle(sim)
    assert sub.delivered == 0
    assert deployment.broker("fed0").stats.forwards_down == descents_before


def test_covering_aggregates_per_subtree():
    sim, topology, deployment, _ = build()
    fed1, fed3, fed4 = (deployment.broker(n) for n in ("fed1", "fed3", "fed4"))
    base3, base1 = fed3.stats.control_messages, fed1.stats.control_messages
    # five subscribers on one topic at one leaf -> ONE fsub up, one entry
    # per ancestor link
    subscribe(sim, deployment, "fed3", "many", ("t",) * 5)
    settle(sim)
    assert fed3.stats.control_messages - base3 == 1
    assert fed1.stats.control_messages - base1 == 1
    assert fed1.table.entry_count() == 1
    assert deployment.broker("fed0").table.entry_count() == 1
    # a sibling subtree adds its own link entry at the parent, but the
    # parent's aggregate was already advertised: nothing new climbs
    base1 = fed1.stats.control_messages
    subscribe(sim, deployment, "fed4", "more", ("t",))
    settle(sim)
    assert fed1.table.children_for("t") == ("fed3", "fed4")
    assert fed1.stats.control_messages == base1
    assert deployment.broker("fed0").table.entry_count() == 1


# ----------------------------------------------------------- crash recovery

def test_parent_crash_reparents_and_reconverges():
    sim, topology, deployment, controller = build()
    sub3 = subscribe(sim, deployment, "fed3", "s3", ("t3",))
    sub4 = subscribe(sim, deployment, "fed4", "s4", ("t4",))
    settle(sim)
    deployment.broker("fed1").crash()
    settle(sim, 2.0)  # detection scan + sequential rewire
    assert controller.reparents >= 2
    assert deployment.broker("fed3").parent_name == "fed0"
    assert deployment.broker("fed4").parent_name == "fed0"
    assert deployment.converged()
    # re-advertisement re-converged routing: the root now routes the
    # orphaned leaves' topics down its direct links
    root_table = deployment.broker("fed0").table
    assert root_table.children_for("t3") == ("fed3",)
    assert root_table.children_for("t4") == ("fed4",)
    publish_one(sim, deployment, "fed6", "t3")
    settle(sim)
    assert sub3.delivered == 1

    deployment.broker("fed1").restart()
    settle(sim, 2.0)
    assert deployment.broker("fed1").parent_name == "fed0"
    assert deployment.broker("fed3").parent_name == "fed1"
    assert deployment.broker("fed4").parent_name == "fed1"
    assert deployment.converged()
    # the configured tree is back AND the interim direct entries are gone:
    # the rewire closed the leaf->root uplinks, whose EOFs dropped them
    assert deployment.broker("fed1").table.children_for("t3") == ("fed3",)
    assert root_table.children_for("t3") == ("fed1",)
    assert root_table.children_for("t4") == ("fed1",)
    publish_one(sim, deployment, "fed6", "t4", gen_id=1)
    settle(sim)
    assert sub4.delivered == 1


def test_root_crash_waits_for_return():
    sim, topology, deployment, controller = build()
    subscribe(sim, deployment, "fed3", "s", ("t",))
    settle(sim)
    deployment.broker("fed0").crash()
    settle(sim, 2.0)
    # no live ancestor exists: children stay orphaned, no thrash
    assert controller.reparents == 0
    assert deployment.broker("fed1").parent_channel is None
    deployment.broker("fed0").restart()
    settle(sim, 2.0)
    assert deployment.converged()
    # the root's table was rebuilt from its children's re-advertisements
    assert deployment.broker("fed0").table.children_for("t") == ("fed1",)


def test_reparent_log_is_deterministic():
    logs, delivered = [], []
    for _ in range(2):
        sim, topology, deployment, controller = build(seed=7)
        sub = subscribe(sim, deployment, "fed4", "s", ("t",))
        settle(sim)
        deployment.broker("fed1").crash()
        settle(sim, 2.0)
        publish_one(sim, deployment, "fed5", "t")
        settle(sim)
        logs.append(list(controller.reparent_log))
        delivered.append(sub.delivered)
    assert logs[0] == logs[1]
    assert delivered[0] == delivered[1] == 1


# -------------------------------------------------- delivery-safety property

def test_delivered_only_with_matching_subscription():
    """Every delivered message had a matching subscription at publish time:
    delivered topic sets are subsets of the subscribed sets, and counts
    match the published counts exactly (no duplication on the tree)."""
    sim, topology, deployment, _ = build()
    subs = {
        "fed3": subscribe(
            sim, deployment, "fed3", "a", (site_topic(0), site_topic(5))
        ),
        "fed6": subscribe(sim, deployment, "fed6", "b", (site_topic(6),)),
        "fed0": subscribe(
            sim,
            deployment,
            "fed0",
            "control",
            tuple(site_topic(i) for i in range(7)),
        ),
    }
    settle(sim)
    book = RecordBook()
    fleets = {}
    stop_at = sim.now + 12.0
    for i, name in enumerate(topology.names):
        fleet = FederationSitePublishers(
            sim,
            deployment,
            name,
            site_topic(i),
            n_generators=1,
            publish_interval=2.0,
            book=book,
            stop_at=stop_at,
            gen_id_base=i * 10,
        )
        fleet.start()
        fleets[site_topic(i)] = fleet
    sim.run(until=stop_at + 10.0)

    for name, sub in subs.items():
        subscribed = set(sub.topics)
        assert set(sub.delivered_by_topic) <= subscribed
        # exact match: everything published on a subscribed topic arrived
        # exactly once (subscriptions predate every publish)
        for topic in subscribed:
            assert sub.delivered_by_topic.get(topic, 0) == fleets[topic].published
    # unsubscribed topics were never even forwarded to fed3's broker
    fed3_seen = set(subs["fed3"].delivered_by_topic)
    assert site_topic(1) not in fed3_seen and site_topic(6) not in fed3_seen
