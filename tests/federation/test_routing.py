"""Routing-table covering/aggregation: the unit-level convergence rules.

Every mutator's return value is the broker's (un)advertise decision, so
these tests pin down exactly when ``fsub`` traffic is generated.
"""

from repro.federation import RoutingTable


def test_first_local_subscription_advertises():
    table = RoutingTable("b")
    assert table.add_local("t", "s1") is True
    # covering: further subscriptions to the same topic stay silent
    assert table.add_local("t", "s2") is False
    assert table.has_local("t")
    assert table.local_sub_ids("t") == ("s1", "s2")


def test_last_local_unsubscribe_withdraws():
    table = RoutingTable("b")
    table.add_local("t", "s1")
    table.add_local("t", "s2")
    assert table.remove_local("t", "s1") is False
    assert table.remove_local("t", "s2") is True
    assert not table.has_interest("t")
    # removing an unknown subscription is a no-op, not a withdrawal
    assert table.remove_local("t", "ghost") is False


def test_downstream_covering_across_children():
    table = RoutingTable("b")
    assert table.set_downstream("t", "c1", True) is True
    # a second child subtree with the same topic is covered — no re-advertise
    assert table.set_downstream("t", "c2", True) is False
    assert table.children_for("t") == ("c1", "c2")
    # dropping one child keeps the aggregate alive
    assert table.set_downstream("t", "c1", False) is False
    # dropping the last one withdraws
    assert table.set_downstream("t", "c2", False) is True
    assert table.children_for("t") == ()


def test_local_interest_covers_downstream_transitions():
    table = RoutingTable("b")
    table.add_local("t", "s1")
    # downstream arriving under existing local interest: covered
    assert table.set_downstream("t", "c1", True) is False
    # local going away while a child still wants it: still covered
    assert table.remove_local("t", "s1") is False
    assert table.set_downstream("t", "c1", False) is True


def test_drop_child_reports_only_emptied_topics():
    table = RoutingTable("b")
    table.set_downstream("a", "c1", True)
    table.set_downstream("a", "c2", True)
    table.set_downstream("b", "c1", True)
    table.add_local("c", "s1")
    table.set_downstream("c", "c1", True)
    # c1 dies: topic "a" survives via c2, "c" survives via the local sub,
    # only "b" empties.
    assert table.drop_child("c1") == ("b",)
    assert table.children_for("a") == ("c2",)
    assert table.has_interest("c")
    assert not table.has_interest("b")


def test_entry_count_is_the_covering_bound():
    table = RoutingTable("parent")
    # 10 subscribers on one topic in one child subtree -> ONE entry here.
    table.set_downstream("t", "c1", True)
    assert table.entry_count() == 1
    table.set_downstream("t", "c2", True)
    table.set_downstream("u", "c1", True)
    table.add_local("t", "s1")
    table.add_local("t", "s2")  # second local sub: still one local topic
    assert table.entry_count() == 4  # (t,c1) (t,c2) (u,c1) + local t
    assert table.topics() == ("t", "u")


def test_clear_forgets_everything():
    table = RoutingTable("b")
    table.add_local("t", "s1")
    table.set_downstream("t", "c1", True)
    table.clear()
    assert table.entry_count() == 0
    assert table.topics() == ()
    assert not table.has_interest("t")
