"""Shared Narada test fixtures: a cluster with one broker on hydra1."""

from __future__ import annotations

import pytest

from repro.cluster import HydraCluster
from repro.narada import Broker, NaradaConfig, narada_connection_factory
from repro.sim import Simulator
from repro.transport import TcpTransport

BROKER_PORT = 5045


@pytest.fixture
def env():
    sim = Simulator(seed=11)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    config = NaradaConfig()
    broker = Broker(sim, cluster.node("hydra1"), "broker1", config)
    broker.serve(tcp, BROKER_PORT)
    return sim, cluster, tcp, broker


def connect(sim, cluster, tcp, node_name="hydra2", config=None):
    """Create a started JMS connection from `node_name` to broker1."""
    factory = narada_connection_factory(
        sim, tcp, cluster.node(node_name), "hydra1", BROKER_PORT, config
    )
    holder = {}

    def go():
        conn = yield from factory.create_connection()
        conn.start()
        holder["conn"] = conn

    sim.run_process(go())
    return holder["conn"]
