"""Single-broker tests through the full JMS API stack."""

import pytest

from repro.jms import MapMessage, Queue, TextMessage, Topic
from repro.narada import NaradaConfig
from tests.narada.conftest import connect

TOPIC = Topic("power.monitoring")


def test_publish_subscribe_end_to_end(env):
    sim, cluster, tcp, broker = env
    pub_conn = connect(sim, cluster, tcp, "hydra2")
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        m = MapMessage()
        m.set_double("power", 42.5)
        yield from pub.publish(m)

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert len(got) == 1
    assert got[0].get_double("power") == 42.5
    assert broker.stats.messages_published == 1
    assert broker.stats.messages_delivered == 1


def test_rtt_is_low_milliseconds_at_light_load(env):
    """Paper Fig 3: TCP RTT at light load is single-digit milliseconds."""
    sim, cluster, tcp, broker = env
    pub_conn = connect(sim, cluster, tcp, "hydra2")
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    rtts = []

    def on_msg(m):
        rtts.append(sim.now - m._t_published)

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=on_msg)

    sim.run_process(setup())

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        for _ in range(20):
            m = TextMessage("x" * 200)
            m._t_published = sim.now
            yield from pub.publish(m)
            yield sim.timeout(0.1)

    sim.run_process(publish())
    sim.run(until=sim.now + 2.0)
    assert len(rtts) == 20
    mean = sum(rtts) / len(rtts)
    assert 0.001 < mean < 0.015  # a few ms


def test_selector_filtering_at_broker(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    got = []

    def run():
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, selector="id < 10000", listener=got.append
        )
        pub = session.create_publisher(TOPIC)
        for i in (5, 10000, 20000, 9999):
            m = TextMessage(str(i))
            m.set_property("id", i)
            yield from pub.publish(m)

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert sorted(m.text for m in got) == ["5", "9999"]
    assert broker.stats.selector_evaluations == 4


def test_queue_round_robin_delivery(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    queue = Queue("jobs")
    got_a, got_b = [], []

    def run():
        session = conn.create_session()
        yield from session.create_consumer(queue, listener=got_a.append)
        session2 = conn.create_session()
        yield from session2.create_consumer(queue, listener=got_b.append)
        pub_session = conn.create_session()
        producer = pub_session.create_producer(queue)
        for i in range(10):
            yield from producer.send(TextMessage(str(i)))

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert len(got_a) == 5
    assert len(got_b) == 5
    assert sorted(int(m.text) for m in got_a + got_b) == list(range(10))


def test_topic_fans_out_to_all_subscribers(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    buckets = [[] for _ in range(3)]

    def run():
        for b in buckets:
            session = conn.create_session()
            yield from session.create_subscriber(TOPIC, listener=b.append)
        session = conn.create_session()
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("fan"))

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert all(len(b) == 1 for b in buckets)
    # Each subscriber got its own copy.
    ids = {id(b[0]) for b in buckets}
    assert len(ids) == 3


def test_unsubscribe_stops_delivery(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    got = []

    def run():
        session = conn.create_session()
        sub = yield from session.create_subscriber(TOPIC, listener=got.append)
        pub_session = conn.create_session()
        pub = pub_session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("first"))
        yield sim.timeout(1.0)
        yield from sub.close()
        yield sim.timeout(0.5)
        yield from pub.publish(TextMessage("second"))
        yield sim.timeout(1.0)

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["first"]
    assert broker.subscription_count(TOPIC.name) == 0


def test_acks_reach_broker(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    got = []

    def run():
        session = conn.create_session()  # AUTO_ACKNOWLEDGE
        yield from session.create_subscriber(TOPIC, listener=got.append)
        pub = conn.create_session().create_publisher(TOPIC)
        for _ in range(4):
            yield from pub.publish(TextMessage("x"))

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert len(got) == 4
    assert broker.stats.acks_processed == 4


def test_persistent_delivery_costs_more(env):
    """PERSISTENT mode adds a store write on the broker (more CPU)."""
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    from repro.jms import DeliveryMode

    def run():
        session = conn.create_session()
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("np"))
        yield sim.timeout(1.0)
        busy_np = broker.node.cpu_busy_time
        yield from pub.publish(
            TextMessage("p"), delivery_mode=DeliveryMode.PERSISTENT
        )
        yield sim.timeout(1.0)
        return busy_np, broker.node.cpu_busy_time - busy_np

    busy_np, busy_p = sim.run_process(run())
    assert busy_p > broker.config.persist_cpu


def test_connection_wall_out_of_memory(env):
    """Connections past the JVM thread budget are refused (paper §III.E.2)."""
    sim, cluster, tcp, broker = env
    # Shrink the budget so the wall is cheap to reach.
    broker.jvm.native_budget_bytes = 5 * broker.jvm.thread_stack_bytes
    accepted = refused = 0
    from repro.transport.base import ChannelClosed

    def run():
        nonlocal accepted, refused
        for i in range(8):
            try:
                yield from tcp.connect(
                    cluster.node("hydra2"), "hydra1", 5045
                )
                accepted += 1
            except ChannelClosed:
                refused += 1

    sim.run_process(run())
    assert accepted == 5
    assert refused == 3
    assert broker.stats.connections_refused == 3


def test_broker_shutdown_refuses_new_connections(env):
    sim, cluster, tcp, broker = env
    broker.shutdown()
    from repro.transport.base import ChannelClosed

    def run():
        yield from tcp.connect(cluster.node("hydra2"), "hydra1", 5045)

    with pytest.raises(ChannelClosed):
        sim.run_process(run())


def test_latency_grows_with_concurrent_load(env):
    """More publishers -> higher broker utilisation -> higher RTT (Fig 7)."""
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    rtts = []

    def on_msg(m):
        rtts.append((m._load_tag, sim.now - m._t_published))

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=on_msg)

    sim.run_process(setup())
    pub_conn = connect(sim, cluster, tcp, "hydra2")

    def burst(tag, n):
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        for _ in range(n):
            m = TextMessage("x")
            m._t_published = sim.now
            m._load_tag = tag
            yield from pub.publish(m)

    # Light: one message alone.  Heavy: 50 back-to-back.
    sim.run_process(burst("light", 1))
    sim.run(until=sim.now + 3.0)
    sim.run_process(burst("heavy", 50))
    sim.run(until=sim.now + 10.0)

    light = [r for tag, r in rtts if tag == "light"]
    heavy = [r for tag, r in rtts if tag == "heavy"]
    assert len(light) == 1 and len(heavy) == 50
    assert max(heavy) > light[0] * 3
