"""Failure injection: broker death, channel breakage, NIO threading, GC tails."""

import pytest

from repro.jms import TextMessage, Topic
from repro.narada import Broker, NaradaConfig, narada_connection_factory
from repro.sim import Simulator
from repro.cluster import HydraCluster
from repro.transport import NioTransport, TcpTransport
from tests.narada.conftest import connect

TOPIC = Topic("power.monitoring")


def test_broker_shutdown_stops_service_without_crash(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    got = []

    def run():
        session = conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)
        pub = conn.create_session().create_publisher(TOPIC)
        yield from pub.publish(TextMessage("before"))
        yield sim.timeout(1.0)
        broker.shutdown()
        yield from pub.publish(TextMessage("after"))
        yield sim.timeout(2.0)

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["before"]


def test_subscriber_channel_close_counts_dropped_deliveries(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub_conn = connect(sim, cluster, tcp, "hydra2")

    def run():
        pub = pub_conn.create_session().create_publisher(TOPIC)
        yield from pub.publish(TextMessage("ok"))
        yield sim.timeout(1.0)
        # Abruptly sever the subscriber's network channel.
        sub_conn.provider.channel.close()
        yield sim.timeout(0.5)
        yield from pub.publish(TextMessage("dropped"))
        yield sim.timeout(2.0)

    sim.run_process(run())
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["ok"]
    # The broker either dropped the in-flight delivery or reaped the
    # (non-durable) subscription when it saw the channel close.
    assert (
        broker.stats.deliveries_dropped >= 1
        or broker.subscription_count(TOPIC.name) == 0
    )


def test_nio_broker_uses_single_selector_thread():
    """NIO's memory pitch: one selector thread instead of N connection
    threads."""
    def thread_count(transport_cls):
        sim = Simulator(seed=9)
        cluster = HydraCluster(sim)
        transport = transport_cls(sim, cluster.lan)
        broker = Broker(sim, cluster.node("hydra1"), "b", NaradaConfig())
        broker.serve(transport, 5045)

        def clients():
            for i in range(20):
                yield from transport.connect(
                    cluster.node("hydra2"), "hydra1", 5045
                )

        sim.run_process(clients())
        return broker.jvm.thread_count

    assert thread_count(TcpTransport) == 20
    assert thread_count(NioTransport) == 1


def test_gc_pauses_create_latency_tail():
    """A heap-churning broker shows occasional multi-ms spikes (the paper's
    percentile-curve bend near 100%)."""
    sim = Simulator(seed=10)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    config = NaradaConfig(
        per_message_heap=3 * 1024 * 1024,  # exaggerate allocation pressure
    )
    broker = Broker(sim, cluster.node("hydra1"), "b", config)
    broker.serve(tcp, 5045)
    factory = narada_connection_factory(
        sim, tcp, cluster.node("hydra2"), "hydra1", 5045, config
    )
    rtts = []

    def run():
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, listener=lambda m: rtts.append(sim.now - m._t_sent)
        )
        pub = conn.create_session().create_publisher(TOPIC)
        for _ in range(300):
            m = TextMessage("x")
            m._t_sent = sim.now
            yield from pub.publish(m)
            yield sim.timeout(0.02)

    sim.run_process(run())
    sim.run(until=sim.now + 5.0)
    assert broker.jvm.minor_gcs > 0
    rtts.sort()
    p50 = rtts[len(rtts) // 2]
    p100 = rtts[-1]
    assert p100 > 3 * p50  # GC spikes fatten the tail


def test_duplicate_durable_subscription_rejected(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    from repro.jms import JMSException

    def run():
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, durable_name="mon", listener=lambda m: None
        )
        with pytest.raises(JMSException, match="duplicate durable"):
            yield from session.create_subscriber(
                TOPIC, durable_name="mon", listener=lambda m: None
            )

    sim.run_process(run())


def test_publish_on_dead_broker_channel_does_not_crash_fleet(env):
    """Generators keep going when sends fail (publish_failures counted)."""
    from repro.core import RecordBook
    from repro.powergrid import FleetConfig, NaradaFleet

    sim, cluster, tcp, broker = env
    book = RecordBook()
    config = FleetConfig(
        n_generators=5, publish_interval=2.0, creation_interval=0.01,
        warmup_min=0.5, warmup_max=1.0, duration=20.0,
        client_nodes=("hydra5",),
    )
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], config, book)
    fleet.start()
    sim.run(until=5.0)

    def kill():
        # Sever all client channels server-side.
        broker.shutdown()
        yield sim.timeout(0.0)

    sim.run_process(kill())
    sim.run(until=30.0)
    assert fleet.stats.connections_ok == 5
    assert book.sent_count > 0
