"""Tests for RMM-style message aggregation (paper §IV extension)."""

import pytest

from repro.cluster import HydraCluster
from repro.jms import TextMessage, Topic
from repro.narada import Broker, NaradaConfig, narada_connection_factory
from repro.sim import Simulator
from repro.transport import TcpTransport

TOPIC = Topic("power.monitoring")


def build(window):
    sim = Simulator(seed=77)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    config = NaradaConfig(aggregation_window=window)
    broker = Broker(sim, cluster.node("hydra1"), "b", config)
    broker.serve(tcp, 5045)
    return sim, cluster, tcp, config, broker


def run_burst(sim, cluster, tcp, config, n=30, spacing=0.001):
    got = []

    def client():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra2"), "hydra1", 5045, config
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)
        pub = conn.create_session().create_publisher(TOPIC)
        for i in range(n):
            yield from pub.publish(TextMessage(str(i)))
            yield sim.timeout(spacing)

    sim.run_process(client())
    sim.run(until=sim.now + 2.0)
    return got


def test_aggregation_delivers_everything_in_order():
    sim, cluster, tcp, config, broker = build(window=0.05)
    got = run_burst(sim, cluster, tcp, config)
    assert [m.text for m in got] == [str(i) for i in range(30)]
    assert broker.stats.messages_delivered == 30


def test_aggregation_reduces_wire_messages():
    sim, cluster, tcp, config, broker = build(window=0.05)
    run_burst(sim, cluster, tcp, config)
    frames_aggregated = cluster.lan.tx_link("hydra1").stats.frames

    sim2, cluster2, tcp2, config2, broker2 = build(window=0.0)
    run_burst(sim2, cluster2, tcp2, config2)
    frames_plain = cluster2.lan.tx_link("hydra1").stats.frames
    assert frames_aggregated < frames_plain / 2


def test_aggregation_reduces_broker_cpu():
    sim, cluster, tcp, config, broker = build(window=0.05)
    run_burst(sim, cluster, tcp, config)
    busy_aggregated = broker.node.cpu_busy_time

    sim2, cluster2, tcp2, config2, broker2 = build(window=0.0)
    run_burst(sim2, cluster2, tcp2, config2)
    busy_plain = broker2.node.cpu_busy_time
    assert busy_aggregated < busy_plain


def test_aggregation_adds_bounded_latency():
    """Batching trades latency for throughput — bounded by the window."""
    sim, cluster, tcp, config, broker = build(window=0.05)
    got = []

    def client():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra2"), "hydra1", 5045, config
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, listener=lambda m: got.append(sim.now - m._t_sent)
        )
        pub = conn.create_session().create_publisher(TOPIC)
        for _ in range(10):
            m = TextMessage("x")
            m._t_sent = sim.now
            yield from pub.publish(m)
            yield sim.timeout(0.2)  # slower than the window: each flush = 1

    sim.run_process(client())
    sim.run(until=sim.now + 2.0)
    assert len(got) == 10
    assert all(rtt < 0.05 + 0.02 for rtt in got)  # window + pipeline
    assert all(rtt > 0.04 for rtt in got)  # the window wait is real
