"""Durable subscriptions: offline retention and reattach."""

import pytest

from repro.jms import TextMessage, Topic
from tests.narada.conftest import connect

TOPIC = Topic("power.monitoring")


def test_durable_survives_disconnect_and_replays(env):
    sim, cluster, tcp, broker = env
    pub_conn = connect(sim, cluster, tcp, "hydra2")
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []

    def subscribe(conn):
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, durable_name="monitor-1", listener=got.append
        )

    sim.run_process(subscribe(sub_conn))
    pub = pub_conn.create_session().create_publisher(TOPIC)

    def publish(texts):
        for text in texts:
            yield from pub.publish(TextMessage(text))

    sim.run_process(publish(["m1"]))
    sim.run(until=sim.now + 1.0)
    # Disconnect the subscriber entirely.
    sub_conn.close()
    sim.run(until=sim.now + 1.0)
    sim.run_process(publish(["m2", "m3"]))  # published while offline
    sim.run(until=sim.now + 1.0)
    assert [m.text for m in got] == ["m1"]
    assert broker.subscription_count(TOPIC.name) == 1  # durable retained

    # Reconnect with the same durable name: backlog replays, live resumes.
    sub_conn2 = connect(sim, cluster, tcp, "hydra3")
    sim.run_process(subscribe(sub_conn2))
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["m1", "m2", "m3"]
    sim.run_process(publish(["m4"]))
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["m1", "m2", "m3", "m4"]


def test_nondurable_subscription_dies_with_connection(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")

    def subscribe():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=lambda m: None)

    sim.run_process(subscribe())
    assert broker.subscription_count(TOPIC.name) == 1
    sub_conn.close()
    sim.run(until=sim.now + 1.0)
    assert broker.subscription_count(TOPIC.name) == 0


def test_durable_buffer_bounded(env):
    sim, cluster, tcp, broker = env
    broker.config = broker.config.with_(durable_buffer_max=5)
    pub_conn = connect(sim, cluster, tcp, "hydra2")
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []

    def subscribe(conn):
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, durable_name="bounded", listener=got.append
        )

    sim.run_process(subscribe(sub_conn))
    sub_conn.close()
    sim.run(until=sim.now + 1.0)
    pub = pub_conn.create_session().create_publisher(TOPIC)

    def publish():
        for i in range(12):
            yield from pub.publish(TextMessage(str(i)))

    sim.run_process(publish())
    sim.run(until=sim.now + 1.0)
    sub = broker._subs_by_id["bounded"]
    assert len(sub.offline_buffer) == 5  # oldest dropped
    assert [m.text for m in sub.offline_buffer] == ["7", "8", "9", "10", "11"]
    assert broker.stats.deliveries_dropped >= 7
