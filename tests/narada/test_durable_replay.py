"""Durable retention: retain-until-ack, bounded buffers, crash replay.

The contract under test (§ delivery semantics): a durable subscription
retains every delivered copy until the subscriber's JMS ack comes back,
survives broker process death through the persistent
:class:`repro.narada.durable.DurableStore`, and replays the retained
window on re-subscribe — the subscriber's ``(gen_id, seq)`` index turns
that at-least-once replay into exactly-once processing.
"""

import random

import pytest

from repro.cluster import HydraCluster
from repro.core.records import RecordBook
from repro.faults.recovery import RetryPolicy
from repro.jms import TextMessage, Topic
from repro.narada import Broker, NaradaConfig
from repro.powergrid import FleetConfig, NaradaFleet, NaradaReceiver
from repro.powergrid.workload import MONITORING_TOPIC
from repro.sim import Simulator
from repro.transport import TcpTransport
from tests.narada.conftest import BROKER_PORT, connect

TOPIC = Topic("power.monitoring")


def _durable_subscribe(sim, conn, got, name="replay-1"):
    def subscribe():
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC, durable_name=name, listener=got.append
        )

    sim.run_process(subscribe())


def _publish(sim, conn, texts):
    pub = conn.create_session().create_publisher(TOPIC)

    def publish():
        for text in texts:
            yield from pub.publish(TextMessage(text))

    sim.run_process(publish())


# ------------------------------------------------------------ retain / settle
def test_ack_settles_retained_copies(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []
    _durable_subscribe(sim, sub_conn, got)
    pub_conn = connect(sim, cluster, tcp, "hydra2")
    _publish(sim, pub_conn, ["m1", "m2", "m3"])
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["m1", "m2", "m3"]
    # Every delivery was retained until its AUTO ack came back and settled
    # it; nothing lingers and no heap leaks.
    assert broker.durable_store.retained_count() == 0
    assert broker.stats.acks_processed >= 3
    assert broker.stats.messages_replayed == 0


def test_crash_preserves_durable_registration_only(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []
    _durable_subscribe(sim, sub_conn, got)
    volatile_conn = connect(sim, cluster, tcp, "hydra4")

    def volatile_subscribe():
        session = volatile_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=lambda m: None)

    sim.run_process(volatile_subscribe())
    assert broker.subscription_count(TOPIC.name) == 2
    broker.crash()
    sim.run(until=sim.now + 1.0)
    # The non-durable subscription died with its channel; the durable one
    # was re-registered from the store, offline.
    assert broker.subscription_count(TOPIC.name) == 1
    assert "replay-1" in broker.durable_store
    assert broker._subs_by_id["replay-1"].channel is None


def test_backlog_replays_after_broker_crash_and_restart(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []
    _durable_subscribe(sim, sub_conn, got)
    sub_conn.close()
    sim.run(until=sim.now + 0.5)

    pub_conn = connect(sim, cluster, tcp, "hydra2")
    _publish(sim, pub_conn, ["m1", "m2"])  # offline backlog
    sim.run(until=sim.now + 1.0)
    assert broker.durable_store.retained_count() == 2

    broker.crash()
    sim.run(until=sim.now + 0.5)
    broker.restart()

    # Reconnect with the same durable name: the store-backed backlog
    # replays through the normal delivery path, then live traffic resumes.
    sub_conn2 = connect(sim, cluster, tcp, "hydra3")
    _durable_subscribe(sim, sub_conn2, got)
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["m1", "m2"]
    assert broker.stats.messages_replayed == 2
    pub_conn2 = connect(sim, cluster, tcp, "hydra2")
    _publish(sim, pub_conn2, ["m3"])
    sim.run(until=sim.now + 2.0)
    assert [m.text for m in got] == ["m1", "m2", "m3"]
    # Replayed copies were re-retained and then settled by the acks.
    assert broker.durable_store.retained_count() == 0


# -------------------------------------------------------------- memory budget
def test_eviction_under_buffer_budget_frees_heap(env):
    sim, cluster, tcp, broker = env
    broker.config = broker.config.with_(durable_buffer_max=5)
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []
    _durable_subscribe(sim, sub_conn, got, name="bounded")
    sub_conn.close()
    sim.run(until=sim.now + 0.5)
    heap_before = broker.jvm.heap_used

    pub_conn = connect(sim, cluster, tcp, "hydra2")
    _publish(sim, pub_conn, [str(i) for i in range(12)])
    sim.run(until=sim.now + 1.0)

    assert broker.durable_store.retained_count() == 5
    assert broker.stats.retention_evicted == 7
    # Heap holds exactly the publisher connection plus the 5 survivors —
    # evicted copies gave their allocation back.
    expected = (
        heap_before
        + broker.config.per_connection_heap
        + 5 * broker.config.per_message_heap
    )
    assert broker.jvm.heap_used == pytest.approx(expected)


def test_retention_oom_drops_instead_of_killing_the_broker(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    got = []
    _durable_subscribe(sim, sub_conn, got, name="oom")
    sub_conn.close()
    sim.run(until=sim.now + 0.5)
    sub = broker._subs_by_id["oom"]

    # Exhaust the heap, then ask for retention: the copy is dropped and
    # counted, the handler survives.
    broker.jvm.heap_used = broker.jvm.heap_bytes
    dropped_before = broker.stats.deliveries_dropped
    assert broker._retain(sub, TextMessage("x"), sub.offline_buffer) is False
    assert sub.offline_buffer == []
    assert broker.stats.deliveries_dropped == dropped_before + 1
    assert broker.stats.retention_evicted == 1
    assert broker.alive


# ------------------------------------------------------------- durable store
def test_durable_store_registry_semantics(env):
    sim, cluster, tcp, broker = env
    sub_conn = connect(sim, cluster, tcp, "hydra3")
    _durable_subscribe(sim, sub_conn, [], name="reg-1")
    store = broker.durable_store
    sub = store.get("reg-1")
    assert sub is not None and "reg-1" in store and len(store) == 1
    store.register(sub)  # idempotent re-register
    assert len(store) == 1
    assert list(store) == [sub]
    store.forget("reg-1")
    assert store.get("reg-1") is None
    assert store.retained_count() == 0


# ---------------------------------------------------------- random schedules
@pytest.mark.parametrize("seed", [3, 5, 11])
def test_random_crash_schedule_delivers_exactly_once(seed):
    """Property: delivered ∪ replayed = published, with no duplicates.

    A retrying publisher fleet runs against one broker while a seeded
    schedule crashes/restarts the broker twice and kills the supervised
    durable subscriber once.  Every acknowledged publish must come out of
    the subscriber exactly once.  Crash instants sit mid-way between the
    1 Hz publish instants: Narada publishes carry no producer ack, so a
    byte literally in flight at the crash is lost before the broker ever
    saw it — that window is the publisher retry's job, not retention's.
    """
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    broker = Broker(sim, cluster.node("hydra1"), "broker1", NaradaConfig())
    broker.serve(tcp, BROKER_PORT)

    receiver = NaradaReceiver(
        sim,
        cluster,
        tcp,
        ("hydra1", BROKER_PORT),
        "hydra3",
        MONITORING_TOPIC,
        selector=None,
        durable_name="prop",
        recover=True,
    )
    sim.process(receiver.start(), name="recv.supervisor")

    book = RecordBook()
    stop_at = 14.0
    fleet = NaradaFleet(
        sim,
        cluster,
        tcp,
        [("hydra1", BROKER_PORT)],
        FleetConfig(
            n_generators=3,
            publish_interval=1.0,
            creation_interval=0.05,
            # Short warmup so the durable subscription exists before the
            # first publish, and so publish instants sit at ~x.65-x.95
            # while crashes land at ~x.1-x.3.
            warmup_min=0.65,
            warmup_max=0.95,
            stop_at=stop_at,
            client_nodes=("hydra2",),
            retry=RetryPolicy(retries=8, backoff=0.1),
        ),
        book,
    )
    fleet.start()

    rng = random.Random(seed)
    crash1 = rng.randint(2, 5)
    crash2 = crash1 + rng.randint(3, 5)

    def chaos():
        for base in (crash1, crash2):
            yield sim.timeout(base + 0.1 + 0.2 * rng.random() - sim.now)
            broker.crash()
            yield sim.timeout(0.5 + rng.random())
            broker.restart()
        yield sim.timeout(12.6 - sim.now)
        receiver.close()  # supervisor reconnects; replay covers the gap

    sim.process(chaos(), name="chaos")
    sim.run(until=stop_at + 20.0)

    assert broker.restarts == 2
    assert receiver.crashes == 1 and receiver.reconnects >= 1
    acked = [r for r in book.records if r.t_after_send is not None]
    delivered = [r for r in book.records if r.t_received is not None]
    assert acked, "fleet never published"
    # Exactly-once processing: nothing acknowledged is lost, nothing is
    # counted twice, and the receiver's tally matches the record book.
    assert [r for r in acked if r.t_received is None] == []
    assert receiver.duplicates == 0
    assert receiver.received == len(delivered)
