"""Tests for shortest-path routing, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.narada.routing import routing_tables, shortest_paths


def test_simple_chain():
    graph = {"a": {"b": 1.0}, "b": {"a": 1.0, "c": 1.0}, "c": {"b": 1.0}}
    dist, hop = shortest_paths(graph, "a")
    assert dist == {"a": 0.0, "b": 1.0, "c": 2.0}
    assert hop == {"b": "b", "c": "b"}


def test_star_topology():
    graph = {
        "hub": {"l1": 1.0, "l2": 1.0, "l3": 1.0},
        "l1": {"hub": 1.0},
        "l2": {"hub": 1.0},
        "l3": {"hub": 1.0},
    }
    dist, hop = shortest_paths(graph, "l1")
    assert dist["l2"] == 2.0
    assert hop["l2"] == "hub"
    assert hop["l3"] == "hub"


def test_weighted_shortcut_preferred():
    graph = {
        "a": {"b": 10.0, "c": 1.0},
        "b": {"a": 10.0, "c": 1.0},
        "c": {"a": 1.0, "b": 1.0},
    }
    dist, hop = shortest_paths(graph, "a")
    assert dist["b"] == 2.0
    assert hop["b"] == "c"


def test_unknown_source_raises():
    with pytest.raises(KeyError):
        shortest_paths({"a": {}}, "z")


def test_negative_weight_rejected():
    with pytest.raises(ValueError):
        shortest_paths({"a": {"b": -1.0}, "b": {"a": -1.0}}, "a")


def test_unreachable_nodes_absent():
    graph = {"a": {"b": 1.0}, "b": {"a": 1.0}, "island": {}}
    dist, hop = shortest_paths(graph, "a")
    assert "island" not in dist


def test_distances_match_networkx_on_random_graphs():
    rng = __import__("random").Random(42)
    for trial in range(10):
        n = rng.randint(4, 12)
        g = nx.gnp_random_graph(n, 0.5, seed=trial)
        for u, v in g.edges:
            g.edges[u, v]["weight"] = rng.uniform(0.1, 5.0)
        graph = {
            node: {nbr: g.edges[node, nbr]["weight"] for nbr in g.neighbors(node)}
            for node in g.nodes
        }
        for source in g.nodes:
            dist, hop = shortest_paths(graph, source)
            nx_dist = nx.single_source_dijkstra_path_length(g, source)
            assert set(dist) == set(nx_dist)
            for node, d in nx_dist.items():
                assert dist[node] == pytest.approx(d)


def test_first_hop_lies_on_a_shortest_path():
    rng = __import__("random").Random(7)
    g = nx.gnp_random_graph(10, 0.4, seed=3)
    for u, v in g.edges:
        g.edges[u, v]["weight"] = rng.uniform(0.5, 2.0)
    graph = {
        node: {nbr: g.edges[node, nbr]["weight"] for nbr in g.neighbors(node)}
        for node in g.nodes
    }
    for source in g.nodes:
        dist, hop = shortest_paths(graph, source)
        for target, h in hop.items():
            # dist(source->target) == w(source,h) + dist(h->target)
            d_h, _ = shortest_paths(graph, h)
            assert dist[target] == pytest.approx(graph[source][h] + d_h[target])


def test_routing_tables_cover_all_brokers():
    graph = {
        "a": {"b": 1.0},
        "b": {"a": 1.0, "c": 1.0},
        "c": {"b": 1.0},
    }
    tables = routing_tables(graph)
    assert set(tables) == {"a", "b", "c"}
    assert tables["a"]["c"] == "b"
    assert tables["c"]["a"] == "b"
