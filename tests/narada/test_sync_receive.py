"""Synchronous receive (poll/wait) through the real broker — the other half
of §II.B's "the subscriber can either poll or wait for the next message"."""

import pytest

from repro.jms import Queue, TextMessage, Topic
from tests.narada.conftest import connect

TOPIC = Topic("power.monitoring")
JOBS = Queue("dispatch.jobs")


def test_blocking_receive_waits_for_publish(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")

    def run():
        session = conn.create_session()
        consumer = yield from session.create_consumer(TOPIC)
        pub = conn.create_session().create_publisher(TOPIC)

        def later():
            yield sim.timeout(2.0)
            yield from pub.publish(TextMessage("waited-for"))

        sim.process(later())
        t0 = sim.now
        message = yield from consumer.receive()
        return message.text, sim.now - t0

    text, waited = sim.run_process(run())
    assert text == "waited-for"
    assert waited >= 2.0


def test_polling_receive_with_timeout(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")

    def run():
        session = conn.create_session()
        consumer = yield from session.create_consumer(TOPIC)
        empty = yield from consumer.receive(timeout=0.5)
        pub = conn.create_session().create_publisher(TOPIC)
        yield from pub.publish(TextMessage("arrived"))
        found = yield from consumer.receive(timeout=5.0)
        return empty, found.text

    empty, text = sim.run_process(run())
    assert empty is None
    assert text == "arrived"


def test_queue_sync_receivers_share_work(env):
    """PTP with two polling workers: each job goes to exactly one."""
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")
    taken = {"a": [], "b": []}

    def worker(tag):
        session = conn.create_session()
        consumer = yield from session.create_consumer(JOBS)
        while True:
            message = yield from consumer.receive(timeout=10.0)
            if message is None:
                return
            taken[tag].append(message.text)

    sim.process(worker("a"))
    sim.process(worker("b"))

    def producer():
        yield sim.timeout(1.0)
        session = conn.create_session()
        sender = session.create_producer(JOBS)
        for i in range(8):
            yield from sender.send(TextMessage(f"job{i}"))

    sim.process(producer())
    sim.run(until=sim.now + 20.0)
    all_jobs = sorted(taken["a"] + taken["b"])
    assert all_jobs == [f"job{i}" for i in range(8)]
    assert taken["a"] and taken["b"]  # both workers participated


def test_broker_queue_sync_receive_acks(env):
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra2")

    def run():
        session = conn.create_session()  # AUTO ack
        consumer = yield from session.create_consumer(JOBS)
        sender = conn.create_session().create_producer(JOBS)
        yield from sender.send(TextMessage("j"))
        message = yield from consumer.receive(timeout=5.0)
        yield sim.timeout(1.0)
        return message

    message = sim.run_process(run())
    sim.run(until=sim.now + 1.0)
    assert message is not None
    assert broker.stats.acks_processed == 1
