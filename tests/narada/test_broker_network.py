"""Tests for the Distributed Broker Network (BNM + BDN + forwarding modes)."""

import pytest

from repro.cluster import HydraCluster
from repro.jms import TextMessage, Topic
from repro.narada import (
    Broker,
    BrokerNetwork,
    NaradaConfig,
    narada_connection_factory,
)
from repro.sim import Simulator
from repro.transport import TcpTransport

TOPIC = Topic("power.monitoring")
PORTS = {"b1": 5045, "b2": 5046, "b3": 5047, "b4": 5048}


def build_dbn(broadcast_flaw=True, seed=13):
    """The paper's 4-broker star: b1 is the unit controller (hub)."""
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    config = NaradaConfig(broadcast_flaw=broadcast_flaw)
    network = BrokerNetwork(sim, tcp)
    brokers = {}
    for i, name in enumerate(PORTS, start=1):
        broker = Broker(sim, cluster.node(f"hydra{i}"), name, config)
        broker.serve(tcp, PORTS[name])
        brokers[name] = broker

    def setup():
        for broker in brokers.values():
            yield from network.add_broker(broker)
        yield from network.star("b1", ["b2", "b3", "b4"])

    sim.run_process(setup())
    return sim, cluster, tcp, network, brokers


def connect(sim, cluster, tcp, node_name, broker_name):
    factory = narada_connection_factory(
        sim, tcp, cluster.node(node_name), f"hydra{list(PORTS).index(broker_name)+1}",
        PORTS[broker_name],
    )
    holder = {}

    def go():
        conn = yield from factory.create_connection()
        conn.start()
        holder["conn"] = conn

    sim.run_process(go())
    return holder["conn"]


def test_bdn_registers_brokers():
    sim, cluster, tcp, network, brokers = build_dbn()
    assert network.bdn.broker_names == ["b1", "b2", "b3", "b4"]
    assert network.bdn.lookup("b2") is brokers["b2"]
    assert network.bdn.lookup("nope") is None


def test_star_graph_shape():
    sim, cluster, tcp, network, brokers = build_dbn()
    assert set(network.graph["b1"]) == {"b2", "b3", "b4"}
    assert set(network.graph["b2"]) == {"b1"}
    assert network.first_hop("b2", "b3") == "b1"


def test_cross_broker_delivery_flaw_mode():
    """Publisher on b2, subscriber on b3: message crosses the hub."""
    sim, cluster, tcp, network, brokers = build_dbn(broadcast_flaw=True)
    sub_conn = connect(sim, cluster, tcp, "hydra5", "b3")
    got = []

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub_conn = connect(sim, cluster, tcp, "hydra6", "b2")

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("across"))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert [m.text for m in got] == ["across"]


def test_flaw_mode_floods_all_brokers():
    """v1.1.3: data flows to brokers with no subscribers (paper §III.E.2)."""
    sim, cluster, tcp, network, brokers = build_dbn(broadcast_flaw=True)
    sub_conn = connect(sim, cluster, tcp, "hydra5", "b3")

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=lambda m: None)

    sim.run_process(setup())
    pub_conn = connect(sim, cluster, tcp, "hydra6", "b2")

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        for _ in range(10):
            yield from pub.publish(TextMessage("x"))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    # b4 has no subscribers yet still received every event.
    assert brokers["b4"].stats.forwards_received == 10


def test_fixed_routing_avoids_uninterested_brokers():
    """The ablation: subscription-aware routing removes the waste."""
    sim, cluster, tcp, network, brokers = build_dbn(broadcast_flaw=False)
    sub_conn = connect(sim, cluster, tcp, "hydra5", "b3")

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=lambda m: None)

    sim.run_process(setup())
    sim.run(until=sim.now + 1.0)  # let interest propagate
    pub_conn = connect(sim, cluster, tcp, "hydra6", "b2")

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        for _ in range(10):
            yield from pub.publish(TextMessage("x"))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert brokers["b3"].stats.forwards_received == 10  # target
    assert brokers["b4"].stats.forwards_received == 0  # spared
    # Hub b1 relayed but should not double-deliver.
    assert brokers["b3"].stats.messages_delivered == 10


def test_fixed_routing_delivers_cross_broker():
    sim, cluster, tcp, network, brokers = build_dbn(broadcast_flaw=False)
    sub_conn = connect(sim, cluster, tcp, "hydra5", "b4")
    got = []

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    sim.run(until=sim.now + 1.0)
    pub_conn = connect(sim, cluster, tcp, "hydra6", "b2")

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        yield from pub.publish(TextMessage("routed"))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert [m.text for m in got] == ["routed"]


def test_no_duplicate_delivery_under_flood():
    """Dedup: a subscriber behind the hub gets exactly one copy."""
    sim, cluster, tcp, network, brokers = build_dbn(broadcast_flaw=True)
    sub_conn = connect(sim, cluster, tcp, "hydra5", "b1")  # on the hub
    got = []

    def setup():
        session = sub_conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)

    sim.run_process(setup())
    pub_conn = connect(sim, cluster, tcp, "hydra6", "b2")

    def publish():
        session = pub_conn.create_session()
        pub = session.create_publisher(TOPIC)
        for i in range(5):
            yield from pub.publish(TextMessage(str(i)))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    assert sorted(m.text for m in got) == ["0", "1", "2", "3", "4"]


def test_flood_produces_more_forwards_than_routing():
    """The flaw's cost: total inter-broker traffic is strictly higher."""

    def run(flaw):
        sim, cluster, tcp, network, brokers = build_dbn(broadcast_flaw=flaw)
        sub_conn = connect(sim, cluster, tcp, "hydra5", "b3")

        def setup():
            session = sub_conn.create_session()
            yield from session.create_subscriber(TOPIC, listener=lambda m: None)

        sim.run_process(setup())
        sim.run(until=sim.now + 1.0)
        pub_conn = connect(sim, cluster, tcp, "hydra6", "b2")

        def publish():
            session = pub_conn.create_session()
            pub = session.create_publisher(TOPIC)
            for _ in range(20):
                yield from pub.publish(TextMessage("x"))

        sim.run_process(publish())
        sim.run(until=sim.now + 5.0)
        return sum(b.stats.messages_forwarded for b in brokers.values())

    assert run(True) > run(False)


def test_same_broker_subscriber_not_affected_by_network():
    """Local pub/sub on one DBN broker still works."""
    sim, cluster, tcp, network, brokers = build_dbn()
    conn = connect(sim, cluster, tcp, "hydra5", "b2")
    got = []

    def run():
        session = conn.create_session()
        yield from session.create_subscriber(TOPIC, listener=got.append)
        pub = conn.create_session().create_publisher(TOPIC)
        yield from pub.publish(TextMessage("local"))

    sim.run_process(run())
    sim.run(until=sim.now + 5.0)
    assert [m.text for m in got] == ["local"]
