"""Tests for TopicRequestor request/reply over the real broker."""

import pytest

from repro.jms import TextMessage, Topic
from repro.jms.requestor import TopicRequestor, reply_to
from tests.narada.conftest import connect

COMMANDS = Topic("generator.commands")


def test_request_reply_round_trip(env):
    sim, cluster, tcp, broker = env
    responder_conn = connect(sim, cluster, tcp, "hydra2")
    requestor_conn = connect(sim, cluster, tcp, "hydra3")

    # Responder: echoes status for every command.
    def responder_setup():
        session = responder_conn.create_session()

        def on_command(message):
            reply = TextMessage(f"ack:{message.text}")
            yield from reply_to(session, message, reply)

        yield from session.create_subscriber(COMMANDS, listener=on_command)

    sim.run_process(responder_setup())

    def requestor_run():
        session = requestor_conn.create_session()
        requestor = TopicRequestor(session, COMMANDS)
        reply = yield from requestor.request(TextMessage("switch-on"), timeout=5.0)
        return reply

    reply = sim.run_process(requestor_run())
    assert reply is not None
    assert reply.text == "ack:switch-on"


def test_request_timeout_signals_malfunction(env):
    """No responder -> None within the deadline (the §I malfunction case)."""
    sim, cluster, tcp, broker = env
    conn = connect(sim, cluster, tcp, "hydra3")

    def run():
        session = conn.create_session()
        requestor = TopicRequestor(session, COMMANDS)
        t0 = sim.now
        reply = yield from requestor.request(TextMessage("ping"), timeout=2.0)
        return reply, sim.now - t0

    reply, elapsed = sim.run_process(run())
    assert reply is None
    assert elapsed == pytest.approx(2.0, abs=0.1)


def test_correlation_discards_stale_replies(env):
    """A late reply to a timed-out request must not satisfy the next one."""
    sim, cluster, tcp, broker = env
    responder_conn = connect(sim, cluster, tcp, "hydra2")
    requestor_conn = connect(sim, cluster, tcp, "hydra3")
    delay_first = {"pending": True}

    def responder_setup():
        session = responder_conn.create_session()

        def on_command(message):
            if delay_first.pop("pending", False):
                yield sim.timeout(3.0)  # too late for the 1 s timeout
            else:
                yield sim.timeout(0.0)
            yield from reply_to(session, message, TextMessage(f"ack:{message.text}"))

        yield from session.create_subscriber(COMMANDS, listener=on_command)

    sim.run_process(responder_setup())

    def run():
        session = requestor_conn.create_session()
        requestor = TopicRequestor(session, COMMANDS)
        first = yield from requestor.request(TextMessage("slow"), timeout=1.0)
        yield sim.timeout(5.0)  # let the stale reply arrive and sit in inbox
        second = yield from requestor.request(TextMessage("fast"), timeout=5.0)
        return first, second

    first, second = sim.run_process(run())
    assert first is None
    assert second is not None
    assert second.text == "ack:fast"  # not the stale "ack:slow"


def test_multiple_requestors_isolated(env):
    sim, cluster, tcp, broker = env
    responder_conn = connect(sim, cluster, tcp, "hydra2")

    def responder_setup():
        session = responder_conn.create_session()

        def on_command(message):
            yield from reply_to(session, message, TextMessage(f"r:{message.text}"))

        yield from session.create_subscriber(COMMANDS, listener=on_command)

    sim.run_process(responder_setup())
    conn_a = connect(sim, cluster, tcp, "hydra3")
    conn_b = connect(sim, cluster, tcp, "hydra4")
    results = {}

    def requestor(name, conn):
        session = conn.create_session()
        requestor = TopicRequestor(session, COMMANDS)
        reply = yield from requestor.request(TextMessage(name), timeout=5.0)
        results[name] = reply.text

    sim.process(requestor("alpha", conn_a))
    sim.process(requestor("beta", conn_b))
    sim.run(until=sim.now + 10.0)
    assert results == {"alpha": "r:alpha", "beta": "r:beta"}
