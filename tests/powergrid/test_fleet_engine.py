"""Aggregate fleet mode vs per-process exactness reference."""

import pytest

from repro.harness.scale import Scale
from repro.powergrid import RateSchedule
from repro.powergrid.fleet_engine import (
    FLEET_MIDDLEWARES,
    run_fleet_point,
    verify_agreement,
)

#: Tiny preset so per-process reference runs stay sub-second.
TINY = Scale(
    name="tiny",
    duration=12.0,
    creation_interval_narada=0.005,
    creation_interval_rgma=0.005,
    warmup=(0.5, 1.0),
    drain=5.0,
)

N = 300
COHORT = 128


@pytest.mark.parametrize("middleware", FLEET_MIDDLEWARES)
def test_aggregate_agrees_with_process(middleware):
    agg = run_fleet_point(middleware, N, TINY, mode="aggregate", cohort_size=COHORT)
    proc = run_fleet_point(middleware, N, TINY, mode="process")
    verify_agreement(agg, proc)
    assert agg.published > 0
    assert agg.published == proc.published
    assert agg.delivered + agg.lost == agg.published


def test_agreement_holds_under_schedule_and_faults():
    """The hard case: overlapping rate windows (incl. a silence) plus a
    packet-loss burst — counts must match *exactly*, not just closely."""
    schedule = (
        RateSchedule()
        .window(3.0, 9.0, 0, N, 3.0)
        .window(5.0, 7.0, 50, 150, 0.0)
        .window(9.0, 13.0, 0, 100, 0.5)
    )
    for middleware in FLEET_MIDDLEWARES:
        agg = run_fleet_point(
            middleware, N, TINY, mode="aggregate", cohort_size=COHORT,
            schedule=schedule, fault_plan="loss_burst",
        )
        proc = run_fleet_point(
            middleware, N, TINY, mode="process",
            schedule=schedule, fault_plan="loss_burst",
        )
        verify_agreement(agg, proc)
        assert (agg.lost, agg.duplicates) == (proc.lost, proc.duplicates)


def test_loss_burst_actually_loses_messages():
    # Smoke scale: the loss window lands on the second publish round.
    out = run_fleet_point(
        "narada", N, Scale.smoke(), mode="aggregate", cohort_size=COHORT,
        fault_plan="loss_burst",
    )
    assert out.lost > 0
    assert out.delivered + out.lost == out.published


def test_plog_at_least_once_duplicates_instead_of_losing():
    out = run_fleet_point(
        "plog", 1000, Scale.smoke(), mode="aggregate",
        fault_plan="loss_burst",
    )
    assert out.duplicates > 0  # retries redeliver under at-least-once
    assert out.lost == 0


def test_zoomed_cohort_changes_nothing():
    for middleware in FLEET_MIDDLEWARES:
        plain = run_fleet_point(middleware, N, TINY, mode="aggregate", cohort_size=COHORT)
        zoomed = run_fleet_point(
            middleware, N, TINY, mode="aggregate", cohort_size=COHORT,
            zoom=(40, 90),
        )
        verify_agreement(plain, zoomed)
        assert zoomed.mode == "aggregate+zoom"


def test_aggregate_mode_schedules_far_fewer_kernel_events():
    agg = run_fleet_point("narada", N, TINY, mode="aggregate", cohort_size=COHORT)
    proc = run_fleet_point("narada", N, TINY, mode="process")
    assert agg.ticks > 0
    # Per-process: >= one kernel event per message.  Aggregate: one per
    # cohort tick, independent of message count.
    assert proc.events_scheduled >= proc.published
    assert agg.events_scheduled < proc.events_scheduled / 10


def test_burst_schedule_raises_message_count_in_both_modes():
    burst = RateSchedule().window(2.0, 10.0, 0, N, 4.0)
    base = run_fleet_point("narada", N, TINY, mode="aggregate", cohort_size=COHORT)
    boosted = run_fleet_point(
        "narada", N, TINY, mode="aggregate", cohort_size=COHORT, schedule=burst
    )
    assert boosted.published > 1.5 * base.published
    proc = run_fleet_point("narada", N, TINY, mode="process", schedule=burst)
    assert proc.published == boosted.published


def test_input_validation():
    with pytest.raises(ValueError, match="unknown middleware"):
        run_fleet_point("kafka", N, TINY)
    with pytest.raises(ValueError, match="unknown fleet mode"):
        run_fleet_point("narada", N, TINY, mode="batched")
    with pytest.raises(ValueError, match="zoom only applies"):
        run_fleet_point("narada", N, TINY, mode="process", zoom=(0, 10))
