"""Tests for the generator model and payload builders."""

import numpy as np
import pytest

from repro.powergrid import PowerGenerator, narada_map_message, rgma_row
from repro.rgma.schema import Schema, grid_monitoring_table


def make_gen(gen_id=1, **kw):
    return PowerGenerator(gen_id, np.random.default_rng(42), **kw)


def test_power_within_capacity():
    gen = make_gen(capacity_kw=50.0)
    for t in range(200):
        s = gen.sample(float(t) * 10)
        assert 0.0 <= s.power_kw <= 50.0


def test_voltage_near_nominal():
    gen = make_gen()
    samples = [gen.sample(t * 10.0) for t in range(100)]
    volts = [s.voltage_v for s in samples]
    assert all(390 < v < 430 for v in volts)


def test_sequence_increments():
    gen = make_gen()
    seqs = [gen.sample(t * 10.0).seq for t in range(5)]
    assert seqs == [1, 2, 3, 4, 5]


def test_breaker_trips_eventually():
    gen = make_gen(trip_probability=0.2)
    states = [gen.sample(t * 10.0) for t in range(200)]
    assert any(not s.breaker_closed for s in states)
    assert any(s.power_kw == 0.0 for s in states if not s.breaker_closed)


def test_deterministic_given_same_rng_seed():
    a = PowerGenerator(1, np.random.default_rng(7))
    b = PowerGenerator(1, np.random.default_rng(7))
    for t in range(20):
        assert a.sample(t * 10.0).power_kw == b.sample(t * 10.0).power_kw


# ----------------------------------------------------------------- payloads
def test_narada_payload_field_mix():
    """The paper's exact mix: 2 int, 5 float, 2 long, 3 double, 4 string."""
    gen = make_gen()
    m = narada_map_message(gen.sample(10.0))
    types = [m._body[name][0] for name in m.item_names()]
    assert types.count("int") == 2
    assert types.count("float") == 5
    assert types.count("long") == 2
    assert types.count("double") == 3
    assert types.count("string") == 4
    assert m.get_property("id") == 1  # selector property


def test_narada_payload_under_throughput_bound():
    """<= ~660 B/message to satisfy '75 msg/s at < 50 KB/s' (§III.B)."""
    gen = make_gen(gen_id=9999)
    m = narada_map_message(gen.sample(10.0))
    from repro.jms.destination import Topic

    m.destination = Topic("power.monitoring")
    assert m.wire_size() < 660


def test_rgma_row_validates_against_paper_table():
    schema = Schema()
    table = schema.create_table(grid_monitoring_table())
    gen = make_gen(gen_id=5)
    row = rgma_row(gen.sample(10.0))
    table.validate_row(row)  # should not raise
    assert len(row) == 16
    assert row["genid"] == 5


def test_rgma_row_strings_fit_char20():
    gen = PowerGenerator(3, np.random.default_rng(1), site="x" * 50)
    row = rgma_row(gen.sample(10.0))
    for k in ("sval1", "sval2", "sval3", "sval4"):
        assert len(row[k]) <= 20
