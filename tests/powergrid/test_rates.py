"""RateSchedule / rate_sleep: mid-run rate changes at exact timestamps."""

import pytest

from repro.cluster import HydraCluster
from repro.core import RecordBook
from repro.powergrid import FleetConfig, NaradaFleet, RateSchedule, RateWindow
from repro.powergrid.rates import rate_sleep
from repro.sim import Simulator
from repro.transport import TcpTransport


def test_window_validation():
    with pytest.raises(ValueError):
        RateWindow(-1.0, 10.0, 0, 5, 2.0)
    with pytest.raises(ValueError):
        RateWindow(10.0, 10.0, 0, 5, 2.0)
    with pytest.raises(ValueError):
        RateWindow(0.0, 10.0, 5, 5, 2.0)
    with pytest.raises(ValueError):
        RateWindow(0.0, 10.0, 0, 5, -0.5)


def test_multiplier_is_product_of_covering_windows():
    schedule = (
        RateSchedule()
        .window(0.0, 100.0, 0, 10, 2.0)
        .window(50.0, 100.0, 0, 5, 3.0)
    )
    assert schedule.multiplier_at(2, 25.0) == 2.0
    assert schedule.multiplier_at(2, 75.0) == 6.0
    assert schedule.multiplier_at(7, 75.0) == 2.0
    assert schedule.multiplier_at(2, 150.0) == 1.0
    assert schedule.multiplier_at(15, 75.0) == 1.0


def test_next_boundary_sees_only_covering_gen_ids():
    schedule = (
        RateSchedule()
        .window(10.0, 20.0, 0, 5, 2.0)
        .window(30.0, 40.0, 5, 9, 2.0)
    )
    assert schedule.next_boundary(2, 0.0) == 10.0
    assert schedule.next_boundary(2, 10.0) == 20.0
    assert schedule.next_boundary(2, 25.0) is None
    assert schedule.next_boundary(7, 0.0) == 30.0


def test_cache_key_is_order_independent():
    a = RateSchedule().window(0, 10, 0, 5, 2.0).window(20, 30, 0, 5, 3.0)
    b = RateSchedule().window(20, 30, 0, 5, 3.0).window(0, 10, 0, 5, 2.0)
    assert a.cache_key() == b.cache_key()


def _publish_times(schedule, *, until=140.0, start=0.0, gen_id=0, interval=10.0):
    sim = Simulator(seed=1)
    times = []

    def generator():
        yield sim.timeout(start)
        while sim.now < until:
            times.append(sim.now)
            yield from rate_sleep(sim, schedule, gen_id, interval, until)

    sim.process(generator())
    sim.run(until=until + 1.0)
    return times


def test_no_schedule_means_plain_interval():
    assert _publish_times(None, until=50.0) == [0.0, 10.0, 20.0, 30.0, 40.0]
    assert _publish_times(RateSchedule(), until=50.0) == [
        0.0, 10.0, 20.0, 30.0, 40.0,
    ]


def test_rate_change_takes_effect_at_the_event_timestamp():
    """The satellite's proof: a 5x window starting at t=95 bends the very
    sleep in progress — the generator does NOT wait for its next 10 s
    cycle.  Publish at 90, window opens at 95 with half an interval owed,
    burn it 5x faster -> next publish at 96, then every 2 s."""
    schedule = RateSchedule().window(95.0, 115.0, 0, 10, 5.0)
    times = _publish_times(schedule, until=120.0)
    assert times[:10] == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]
    inside = [t for t in times if 95.0 < t <= 115.0]
    assert inside[0] == pytest.approx(96.0)
    assert inside[1] == pytest.approx(98.0)
    # 96, 98, ..., 114: every 2 s while the window holds.
    assert inside == pytest.approx([96.0 + 2.0 * i for i in range(10)])
    # Window closes at 115 with 0.5 interval owed at 1x -> publish at 120
    # would fall on stop_at; nothing after 114 inside the horizon.
    assert [t for t in times if t > 115.0] == []


def test_zero_multiplier_freezes_until_window_end():
    schedule = RateSchedule().window(15.0, 45.0, 0, 10, 0.0)
    times = _publish_times(schedule, until=80.0)
    # Publish at 10, owe an interval; frozen over [15, 45); the remaining
    # half interval resumes at 45 -> next publish at 50.
    assert times == [0.0, 10.0, 50.0, 60.0, 70.0]


def test_rate_sleep_only_affects_covered_gen_ids():
    schedule = RateSchedule().window(0.0, 100.0, 0, 1, 2.0)
    fast = _publish_times(schedule, until=40.0, gen_id=0)
    slow = _publish_times(schedule, until=40.0, gen_id=1)
    assert fast == [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0]
    assert slow == [0.0, 10.0, 20.0, 30.0]


def test_zero_duration_window_is_rejected():
    """A zero-duration segment can never cover any instant (start inclusive,
    end exclusive) — the builder rejects it rather than silently no-op."""
    with pytest.raises(ValueError):
        RateSchedule().window(5.0, 5.0, 0, 10, 2.0)


def test_override_exactly_at_a_segment_boundary():
    """Back-to-back windows sharing the edge at t=40: end is exclusive and
    start is inclusive, so at exactly 40.0 the 4x window alone applies —
    never 2x (stale) and never 8x (double-cover)."""
    schedule = (
        RateSchedule()
        .window(20.0, 40.0, 0, 10, 2.0)
        .window(40.0, 60.0, 0, 10, 4.0)
    )
    assert schedule.multiplier_at(0, 40.0) == 4.0
    times = _publish_times(schedule, until=70.0)
    # 40.0 is both a publish timestamp and the boundary: spacing is 5 s
    # right up to it and 2.5 s immediately after, with no seam artifact.
    assert times == pytest.approx(
        [0.0, 10.0, 20.0, 25.0, 30.0, 35.0, 40.0]
        + [40.0 + 2.5 * i for i in range(1, 9)]
    )


def test_window_end_mid_sleep_composes_debt_across_the_boundary():
    """The last window edge falls mid-sleep: 40% of the interval is burned
    at 2x inside the window, the remaining 60% at 1x after it lifts."""
    schedule = RateSchedule().window(0.0, 22.0, 0, 10, 2.0)
    times = _publish_times(schedule, until=60.0)
    assert times == pytest.approx(
        [0.0, 5.0, 10.0, 15.0, 20.0, 28.0, 38.0, 48.0, 58.0]
    )


def test_run_end_mid_sleep_returns_without_publishing():
    """The schedule (and run) ends mid-publish-phase: a 0.5x slowdown owes
    7 s of debt when stop_at arrives mid-sleep — rate_sleep returns at the
    stop without ever paying it, and the loop publishes nothing more."""
    schedule = RateSchedule().window(0.0, 100.0, 0, 10, 0.5)
    times = _publish_times(schedule, until=33.0)
    assert times == pytest.approx([0.0, 20.0])


def test_fleet_applies_rate_override_mid_run():
    """End to end: a fleet armed with a RateSchedule speeds up mid-run
    without any restart — message count in the boosted half of the run
    roughly triples."""
    sim = Simulator(seed=41)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    from repro.narada import Broker

    broker = Broker(sim, cluster.node("hydra1"), "broker1")
    broker.serve(tcp, 5045)
    config = FleetConfig(
        n_generators=20,
        publish_interval=10.0,
        creation_interval=0.05,
        warmup_min=1.0,
        warmup_max=2.0,
        duration=60.0,
        rates=RateSchedule().window(33.0, 63.0, 0, 20, 3.0),
    )
    book = RecordBook()
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], config, book)
    fleet.start()
    sim.run(until=70.0)
    before = sum(1 for r in book.records if r.t_before_send < 33.0)
    after = sum(1 for r in book.records if 33.0 <= r.t_before_send < 63.0)
    # 3x rate over a comparable window (creation/warmup shave the first few
    # seconds off the 1x half, and boundary debt the 3x half).
    assert after > 1.8 * before
