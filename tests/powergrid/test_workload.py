"""Integration tests: fleets + receivers on both middlewares (small scale)."""

import pytest

from repro.cluster import HydraCluster
from repro.core import RecordBook, rtt_stats
from repro.core.metrics import soft_realtime_compliance
from repro.jms import AckMode
from repro.narada import Broker, narada_connection_factory
from repro.powergrid import FleetConfig, NaradaFleet, NaradaReceiver, RgmaFleet, RgmaReceiver
from repro.powergrid.workload import MONITORING_TOPIC
from repro.rgma import RGMADeployment
from repro.sim import Simulator
from repro.transport import TcpTransport


SMALL = FleetConfig(
    n_generators=20,
    publish_interval=10.0,
    creation_interval=0.05,
    warmup_min=1.0,
    warmup_max=2.0,
    duration=40.0,
)


def narada_setup(seed=41):
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    broker = Broker(sim, cluster.node("hydra1"), "broker1")
    broker.serve(tcp, 5045)
    return sim, cluster, tcp, broker


def test_narada_fleet_end_to_end():
    sim, cluster, tcp, broker = narada_setup()
    book = RecordBook()
    receiver = NaradaReceiver(
        sim, cluster, tcp, ("hydra1", 5045), "hydra8", MONITORING_TOPIC
    )
    sim.run_process(receiver.start())
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], SMALL, book)
    fleet.start()
    sim.run(until=sim.now + 60.0)
    assert fleet.stats.connections_ok == 20
    assert book.sent_count >= 20 * 3  # several publishes per generator
    stats = rtt_stats(book)
    assert stats.loss_rate == 0.0
    assert stats.mean_ms < 50  # milliseconds domain
    assert receiver.received == book.received_count


def test_narada_fleet_meets_soft_realtime_requirement():
    """The §I requirement: within 5 s, < 0.5 % late/lost — TCP passes."""
    sim, cluster, tcp, broker = narada_setup()
    book = RecordBook()
    receiver = NaradaReceiver(
        sim, cluster, tcp, ("hydra1", 5045), "hydra8", MONITORING_TOPIC
    )
    sim.run_process(receiver.start())
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], SMALL, book)
    fleet.start()
    sim.run(until=sim.now + 60.0)
    ok, frac, loss = soft_realtime_compliance(book)
    assert ok


def test_narada_client_ack_receiver():
    sim, cluster, tcp, broker = narada_setup()
    book = RecordBook()
    receiver = NaradaReceiver(
        sim, cluster, tcp, ("hydra1", 5045), "hydra8", MONITORING_TOPIC,
        ack_mode=AckMode.CLIENT_ACKNOWLEDGE, client_ack_batch=5,
    )
    sim.run_process(receiver.start())
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], SMALL, book)
    fleet.start()
    sim.run(until=sim.now + 60.0)
    assert receiver.received > 0
    # Batched acks: strictly fewer ack ops than messages.
    assert broker.stats.acks_processed >= receiver.received - 5


def test_narada_selector_receives_everything():
    """Paper: the id<10000 selector 'did not filter out any data'."""
    sim, cluster, tcp, broker = narada_setup()
    book = RecordBook()
    receiver = NaradaReceiver(
        sim, cluster, tcp, ("hydra1", 5045), "hydra8", MONITORING_TOPIC
    )
    sim.run_process(receiver.start())
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], SMALL, book)
    fleet.start()
    sim.run(until=sim.now + 60.0)
    assert book.received_count == book.sent_count


def test_triple_payload_config_inflates_and_slows():
    import dataclasses

    sim, cluster, tcp, broker = narada_setup()
    book = RecordBook()
    receiver = NaradaReceiver(
        sim, cluster, tcp, ("hydra1", 5045), "hydra8", MONITORING_TOPIC
    )
    sim.run_process(receiver.start())
    cfg = dataclasses.replace(SMALL, payload_multiplier=3, n_generators=5)
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], cfg, book)
    fleet.start()
    sim.run(until=sim.now + 80.0)
    # 1/3 publishing rate: duration 40 / (10*3) ≈ 1-2 messages per generator.
    per_gen = book.sent_count / 5
    assert per_gen <= 2.5


def test_fleet_cannot_start_twice():
    sim, cluster, tcp, broker = narada_setup()
    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], SMALL, RecordBook())
    fleet.start()
    with pytest.raises(RuntimeError):
        fleet.start()


def test_rgma_fleet_end_to_end():
    sim = Simulator(seed=43)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.single_server(sim, cluster)
    book = RecordBook()
    receiver = RgmaReceiver(sim, cluster, deployment, "hydra8")
    sim.run_process(receiver.start())
    import dataclasses

    cfg = dataclasses.replace(SMALL, n_generators=10, warmup_min=6.0, warmup_max=8.0)
    fleet = RgmaFleet(sim, cluster, deployment, cfg, book)
    fleet.start()
    sim.run(until=sim.now + 80.0)
    receiver.stop()
    assert fleet.stats.connections_ok == 10
    stats = rtt_stats(book)
    assert stats.count > 0
    # R-GMA RTTs live in the ~second domain (paper Fig 11), far above Narada.
    assert 200 < stats.mean_ms < 3000
    assert stats.loss_rate < 0.05


def test_fleet_scaled_helper():
    cfg = FleetConfig()
    small = cfg.scaled(0.1)
    assert small.n_generators == 80
    assert small.duration == pytest.approx(180.0)
    assert small.publish_interval == cfg.publish_interval  # never scaled
