"""Vectorized cohort twins vs their scalar originals — exact parity.

The fleet engine's correctness rests on two claims tested here:
``advance_interval`` wakes at *bit-identical* float timestamps to
``rate_sleep`` under any schedule, and ``CohortDynamics`` evaluated over a
length-1 array reproduces the full-array trajectory bit-for-bit (the zoom
escape hatch).
"""

import numpy as np

from repro.powergrid import (
    CohortDynamics,
    CohortSpec,
    RateSchedule,
    advance_interval,
    warmup_times,
)
from repro.powergrid.rates import rate_sleep
from repro.sim import Simulator


def _scalar_wakes(schedule, gen_id, start, interval, stop):
    """Every post-rate_sleep ``sim.now`` until the publish loops' progress
    guard fails — the per-process generator's exact wake trajectory."""
    sim = Simulator(seed=1)
    wakes = []

    def p():
        yield sim.timeout(start)
        while True:
            t = sim.now
            yield from rate_sleep(sim, schedule, gen_id, interval, stop)
            wakes.append(sim.now)
            if not (sim.now < stop and sim.now > t):
                break

    sim.process(p())
    sim.run()
    return wakes


def _vector_wakes(schedule, gen_ids, starts, interval, stop):
    ids = np.asarray(gen_ids, dtype=np.int64)
    now = np.asarray(starts, dtype=float)
    wakes = [[] for _ in ids]
    alive = np.ones(ids.shape, dtype=bool)
    while alive.any():
        nxt = advance_interval(schedule, ids, now, interval, stop)
        for i in np.nonzero(alive)[0]:
            wakes[i].append(float(nxt[i]))
        alive &= (nxt < stop) & (nxt > now)
        now = nxt
    return wakes


COMPOUND = (
    RateSchedule()
    .window(30.0, 50.0, 0, 64, 3.0)     # fleet-wide burst
    .window(40.0, 46.0, 16, 48, 0.0)    # overlapping regional silence
    .window(60.0, 90.0, 0, 32, 0.5)     # slowdown for the low half
)


def test_advance_interval_matches_rate_sleep_bit_for_bit():
    gen_ids = [0, 7, 16, 20, 31, 40, 47, 63]
    # Irrational-ish staggered starts stress the float paths.
    starts = [0.0, 1.7, 3.33, 7.77, 12.3, 0.05, 19.999, 25.5]
    interval, stop = 10.0, 100.0
    vec = _vector_wakes(COMPOUND, gen_ids, starts, interval, stop)
    for i, (g, s) in enumerate(zip(gen_ids, starts)):
        scalar = _scalar_wakes(COMPOUND, g, s, interval, stop)
        assert vec[i] == scalar, f"gen {g} diverged"  # == : bit-exact


def test_advance_interval_no_schedule_is_plain_interval():
    nxt = advance_interval(None, [0, 1], [5.0, 6.5], 10.0, 100.0)
    assert nxt.tolist() == [15.0, 16.5]
    nxt = advance_interval(RateSchedule(), [0, 1], [5.0, 6.5], 10.0, 100.0)
    assert nxt.tolist() == [15.0, 16.5]


def test_advance_interval_entry_at_stop_makes_no_progress():
    """rate_sleep returns untouched when entered at/after stop_at; the
    vector twin must report the same wake time so the caller's progress
    guard retires the generator identically."""
    schedule = RateSchedule().window(0.0, 50.0, 0, 4, 2.0)
    nxt = advance_interval(schedule, [0, 1], [100.0, 40.0], 10.0, 100.0)
    assert nxt[0] == 100.0  # frozen at stop
    assert nxt[1] == 45.0   # the live one still advances


def test_dynamics_length_1_arrays_reproduce_the_cohort_trajectory():
    """The zoom guarantee: evaluating one gen_id alone gives bit-identical
    state and readings to evaluating it inside the full cohort."""
    spec = CohortSpec(0, 32, trip_probability=0.05)
    dyn = CohortDynamics(seed=9, spec=spec)
    ids = spec.gen_ids()

    power = dyn.initial_power(ids)
    closed = np.ones(ids.shape, dtype=bool)
    batch = []
    for seq in range(1, 6):
        power, closed, reading = dyn.step(ids, np.full(ids.shape, seq), power, closed)
        batch.append((power.copy(), closed.copy(), reading))

    for i, gid in enumerate(ids):
        one = np.array([gid])
        p = dyn.initial_power(one)
        c = np.array([True])
        for seq in range(1, 6):
            p, c, r = dyn.step(one, np.array([seq]), p, c)
            bp, bc, br = batch[seq - 1]
            assert p[0] == bp[i]
            assert c[0] == bc[i]
            for field in ("power_kw", "voltage_v", "frequency_hz", "breaker_closed"):
                assert r[field][0] == br[field][i]


def test_dynamics_bounds_and_trip_semantics():
    spec = CohortSpec(0, 256, capacity_kw=50.0, trip_probability=1.0)
    dyn = CohortDynamics(seed=3, spec=spec)
    ids = spec.gen_ids()
    power = dyn.initial_power(ids)
    assert ((power >= 0.2 * 50.0) & (power < 0.8 * 50.0)).all()
    closed = np.ones(ids.shape, dtype=bool)
    power, closed, reading = dyn.step(ids, np.ones(ids.shape), power, closed)
    # trip_probability=1.0: every closed breaker opens this step.
    assert not closed.any()
    assert (reading["power_kw"] == 0.0).all()
    assert ((power >= 0.0) & (power <= 50.0)).all()
    # Open breakers reclose iff u < 0.2 — about a fifth of them.
    power, closed, _ = dyn.step(ids, np.full(ids.shape, 2), power, closed)
    frac = closed.mean()
    assert 0.1 < frac < 0.3


def test_warmup_times_deterministic_and_in_range():
    a = warmup_times(7, np.arange(1000), 10.0, 20.0)
    b = warmup_times(7, np.arange(1000), 10.0, 20.0)
    assert (a == b).all()
    assert ((a >= 10.0) & (a < 20.0)).all()
    assert len(np.unique(a)) > 990  # per-gen, not shared
    c = warmup_times(8, np.arange(1000), 10.0, 20.0)
    assert (a != c).any()
