"""End-to-end determinism: identical seeds give bit-identical results."""

import numpy as np

from repro.harness.narada_experiments import narada_run
from repro.harness.rgma_experiments import rgma_run
from repro.harness.scale import Scale

SMOKE = Scale.smoke()


def test_narada_run_bit_reproducible():
    a = narada_run(60, scale=SMOKE, seed=123)
    b = narada_run(60, scale=SMOKE, seed=123)
    assert a.sent == b.sent
    assert a.mean_rtt_ms == b.mean_rtt_ms
    assert a.stddev_rtt_ms == b.stddev_rtt_ms
    assert np.array_equal(a.rtts, b.rtts)


def test_narada_run_seed_changes_results():
    a = narada_run(60, scale=SMOKE, seed=1)
    b = narada_run(60, scale=SMOKE, seed=2)
    assert not np.array_equal(a.rtts, b.rtts)


def test_rgma_run_bit_reproducible():
    a = rgma_run(20, scale=SMOKE, seed=123)
    b = rgma_run(20, scale=SMOKE, seed=123)
    assert a.sent == b.sent
    assert a.mean_rtt_ms == b.mean_rtt_ms
    assert np.array_equal(a.rtts, b.rtts)


def test_udp_run_bit_reproducible():
    """Randomized losses/retransmits are also seed-stable."""
    a = narada_run(60, transport_kind="udp", scale=SMOKE, seed=9)
    b = narada_run(60, transport_kind="udp", scale=SMOKE, seed=9)
    assert np.array_equal(a.rtts, b.rtts)
    assert a.loss_rate == b.loss_rate
