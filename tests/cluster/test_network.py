"""Tests for the LAN model: serialisation, queueing, drops, loopback."""

import pytest

from repro.cluster.network import FRAME_OVERHEAD_TCP, FRAME_OVERHEAD_UDP, Lan, Link, MTU
from repro.sim import Simulator


def make_lan(**kw):
    sim = Simulator(seed=1)
    lan = Lan(sim, **kw)
    lan.attach("a")
    lan.attach("b")
    return sim, lan


def test_transfer_delay_includes_serialization():
    sim, lan = make_lan(jitter_mean=0.0, switch_latency=0.0)
    ev = lan.transmit("a", "b", 125_000)  # 1 Mbit payload
    sim.run()
    # Two serialisations (tx + rx) of >= 1 Mbit at 100 Mbps => >= 20 ms.
    assert ev.value >= 0.020


def test_small_message_delay_sub_millisecond():
    sim, lan = make_lan()
    ev = lan.transmit("a", "b", 500)
    sim.run()
    assert 0.0 < ev.value < 0.002


def test_wire_bytes_adds_per_frame_overhead():
    sim, lan = make_lan()
    assert lan.wire_bytes(100, FRAME_OVERHEAD_TCP) == 100 + FRAME_OVERHEAD_TCP
    # Two frames for MTU+1 bytes.
    assert (
        lan.wire_bytes(MTU + 1, FRAME_OVERHEAD_UDP) == MTU + 1 + 2 * FRAME_OVERHEAD_UDP
    )


def test_frame_count():
    sim, lan = make_lan()
    assert lan.frame_count(0) == 1
    assert lan.frame_count(MTU) == 1
    assert lan.frame_count(MTU + 1) == 2
    assert lan.frame_count(10 * MTU) == 10


def test_loopback_is_cheap_and_lossless():
    sim, lan = make_lan()
    ev = lan.transmit("a", "a", 1_000_000)
    sim.run()
    assert ev.value == lan.loopback_delay


def test_queueing_under_fanin_increases_delay():
    """Many senders to one receiver queue at the rx link (broker hot spot)."""
    sim = Simulator(seed=3)
    lan = Lan(sim, jitter_mean=0.0)
    for h in ("r", "s1", "s2", "s3"):
        lan.attach(h)
    delays = []
    for src in ("s1", "s2", "s3"):
        ev = lan.transmit(src, "r", 100_000)
        assert ev is not None
        ev.callbacks.append(lambda e: delays.append(e.value))
    sim.run()
    assert len(delays) == 3
    assert delays[0] < delays[1] < delays[2]  # rx serialisation queues them


def test_random_loss_drops_some_datagrams():
    sim, lan = make_lan()
    sent, dropped = 200, 0
    for _ in range(sent):
        ev = lan.transmit(
            "a", "b", 500, droppable=True, loss_probability=0.2,
            overhead=FRAME_OVERHEAD_UDP,
        )
        if ev is None:
            dropped += 1
    assert 15 < dropped < 85  # ~20% of 200, loose bounds
    assert lan.tx_link("a").stats.drops_random == dropped


def test_loss_probability_scales_with_fragments():
    """A multi-fragment datagram is more likely to lose one fragment."""
    sim = Simulator(seed=5)
    lan = Lan(sim)
    lan.attach("a")
    lan.attach("b")
    small_drops = big_drops = 0
    n = 300
    for _ in range(n):
        if lan.transmit("a", "b", 100, droppable=True, loss_probability=0.05) is None:
            small_drops += 1
    for _ in range(n):
        if (
            lan.transmit("a", "b", 10 * MTU, droppable=True, loss_probability=0.05)
            is None
        ):
            big_drops += 1
    assert big_drops > small_drops


def test_buffer_overflow_drops_droppable_traffic():
    sim = Simulator(seed=7)
    lan = Lan(sim, buffer_bytes=10_000, jitter_mean=0.0)
    lan.attach("a")
    lan.attach("b")
    results = [
        lan.transmit("a", "b", 4_000, droppable=True) for _ in range(10)
    ]
    assert any(r is None for r in results)
    assert results[0] is not None  # first ones fit


def test_reliable_traffic_never_dropped_by_buffer():
    sim = Simulator(seed=7)
    lan = Lan(sim, buffer_bytes=10_000, jitter_mean=0.0)
    lan.attach("a")
    lan.attach("b")
    results = [lan.transmit("a", "b", 4_000) for _ in range(50)]
    assert all(r is not None for r in results)


def test_unknown_host_raises():
    sim, lan = make_lan()
    with pytest.raises(KeyError):
        lan.transmit("a", "nope", 100)


def test_link_queued_bytes_reflects_backlog():
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=8e6)  # 1 MB/s
    assert link.queued_bytes == 0.0
    link.serialize(500_000)
    assert link.queued_bytes == pytest.approx(500_000)


def test_link_negative_bytes_rejected():
    sim = Simulator()
    link = Link(sim, "l")
    with pytest.raises(ValueError):
        link.serialize(-1)


def test_effective_throughput_matches_testbed():
    """Paper §III.A: actual LAN transfer rate was 7-8 MB/s on 100 Mbps.

    Our wire model (MTU framing + header overhead + store-and-forward)
    should land a bulk transfer in the same ballpark — this validates the
    substitution in DESIGN.md §2.
    """
    sim = Simulator(seed=11)
    lan = Lan(sim, jitter_mean=0.0)
    lan.attach("a")
    lan.attach("b")
    payload = 50e6  # 50 MB bulk transfer
    ev = lan.transmit("a", "b", payload)
    sim.run()
    rate = payload / ev.value
    assert 5.5e6 < rate < 9e6


def test_attach_idempotent():
    sim, lan = make_lan()
    link_before = lan.tx_link("a")
    lan.attach("a")
    assert lan.tx_link("a") is link_before
    assert lan.hosts() == ["a", "b"]
