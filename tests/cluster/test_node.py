"""Tests for the Node CPU model."""

import pytest

from repro.cluster import Node
from repro.sim import Simulator


def test_execute_takes_work_seconds():
    sim = Simulator()
    node = Node(sim, "n1")

    def job():
        yield from node.execute(0.5)
        return sim.now

    assert sim.run_process(job()) == 0.5
    assert node.cpu_busy_time == 0.5


def test_cpu_scale_speeds_up_work():
    sim = Simulator()
    fast = Node(sim, "fast", cpu_scale=2.0)

    def job():
        yield from fast.execute(1.0)
        return sim.now

    assert sim.run_process(job()) == 0.5


def test_jobs_queue_fifo_on_single_cpu():
    sim = Simulator()
    node = Node(sim, "n1")
    finished = []

    def job(tag, work):
        yield from node.execute(work)
        finished.append((tag, sim.now))

    sim.process(job("a", 1.0))
    sim.process(job("b", 1.0))
    sim.process(job("c", 1.0))
    sim.run()
    assert finished == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_queueing_delay_grows_with_load():
    """More offered work -> longer completion for a probe job (Fig 7 shape)."""
    delays = []
    for njobs in (1, 10, 50):
        sim = Simulator()
        node = Node(sim, "n1")
        for _ in range(njobs):
            node.execute_process(0.01)

        def probe():
            yield from node.execute(0.001)
            return sim.now

        delays.append(sim.run_process(probe()))
    assert delays[0] < delays[1] < delays[2]


def test_zero_work_is_free():
    sim = Simulator()
    node = Node(sim, "n1")

    def job():
        yield from node.execute(0.0)
        return sim.now

    assert sim.run_process(job()) == 0.0
    assert node.cpu_busy_time == 0.0


def test_negative_work_rejected():
    sim = Simulator()
    node = Node(sim, "n1")

    def job():
        yield from node.execute(-1.0)

    with pytest.raises(ValueError):
        sim.run_process(job())


def test_invalid_cpu_scale():
    sim = Simulator()
    with pytest.raises(ValueError):
        Node(sim, "n1", cpu_scale=0.0)


def test_run_queue_length_observable():
    sim = Simulator()
    node = Node(sim, "n1")
    node.execute_process(1.0)
    node.execute_process(1.0)
    node.execute_process(1.0)
    lengths = []

    def probe():
        yield sim.timeout(0.5)
        lengths.append(node.run_queue_length)

    sim.process(probe())
    sim.run()
    assert lengths == [2]


def test_memory_accounting_via_jvms():
    from repro.cluster import Jvm

    sim = Simulator()
    node = Node(sim, "n1")
    assert node.memory_used_bytes == 0
    jvm = Jvm(sim, node, "jvm1")
    assert node.memory_used_bytes == jvm.committed_bytes
    assert node.memory_free_bytes == node.memory_bytes - jvm.committed_bytes
