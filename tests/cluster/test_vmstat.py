"""Tests for the vmstat sampler."""

import pytest

from repro.cluster import Jvm, Node, VmStat
from repro.cluster.jvm import MiB
from repro.sim import Simulator


def test_idle_node_reports_full_idle():
    sim = Simulator()
    node = Node(sim, "n1")
    vm = VmStat(sim, node, interval=1.0)
    sim.run(until=10.0)
    vm.stop()
    s = vm.summary()
    assert s.mean_cpu_idle_percent == pytest.approx(100.0)
    assert s.samples == 10


def test_busy_node_reports_reduced_idle():
    sim = Simulator()
    node = Node(sim, "n1")
    vm = VmStat(sim, node, interval=1.0)

    def load():
        # 50% duty cycle: 0.5s work then 0.5s sleep, repeatedly.
        while sim.now < 20.0:
            yield from node.execute(0.5)
            yield sim.timeout(0.5)

    sim.process(load())
    sim.run(until=20.0)
    s = vm.summary()
    assert 40.0 < s.mean_cpu_idle_percent < 60.0


def test_memory_consumption_peak_minus_bottom():
    sim = Simulator()
    node = Node(sim, "n1")
    jvm = Jvm(sim, node, "j")
    vm = VmStat(sim, node, interval=1.0)

    def churn():
        yield sim.timeout(2.5)
        jvm.alloc(100 * MiB)
        yield sim.timeout(5.0)

    sim.process(churn())
    sim.run(until=10.0)
    s = vm.summary()
    assert s.memory_consumption_bytes == pytest.approx(100 * MiB)
    assert s.memory_consumption_mb == pytest.approx(100.0)


def test_warmup_excludes_early_samples():
    sim = Simulator()
    node = Node(sim, "n1")
    vm = VmStat(sim, node, interval=1.0)

    def early_load():
        yield from node.execute(3.0)  # busy only during first 3 s

    sim.process(early_load())
    sim.run(until=20.0)
    s = vm.summary(warmup=5.0)
    assert s.mean_cpu_idle_percent == pytest.approx(100.0)


def test_empty_summary():
    sim = Simulator()
    node = Node(sim, "n1")
    vm = VmStat(sim, node, interval=1.0)
    s = vm.summary()
    assert s.samples == 0
    assert s.mean_cpu_idle_percent == 100.0


def test_invalid_interval():
    sim = Simulator()
    node = Node(sim, "n1")
    with pytest.raises(ValueError):
        VmStat(sim, node, interval=0.0)


def test_stop_halts_sampling():
    sim = Simulator()
    node = Node(sim, "n1")
    vm = VmStat(sim, node, interval=1.0)
    sim.run(until=3.0)
    vm.stop()
    sim.run(until=10.0)
    assert len(vm.samples) <= 4
