"""Tests for the JVM model: heap, threads, GC, OOM walls."""

import pytest

from repro.cluster import Jvm, Node, OutOfMemoryError
from repro.cluster.jvm import MiB
from repro.sim import Simulator


def make_jvm(**kw):
    sim = Simulator()
    node = Node(sim, "n1")
    jvm = Jvm(sim, node, "jvm1", **kw)
    return sim, node, jvm


def test_alloc_free_tracks_heap():
    sim, node, jvm = make_jvm()
    jvm.alloc(10 * MiB)
    assert jvm.heap_used == 10 * MiB
    jvm.free(4 * MiB)
    assert jvm.heap_used == 6 * MiB
    assert jvm.heap_high_water == 10 * MiB


def test_heap_exhaustion_raises_oom_and_kills_jvm():
    sim, node, jvm = make_jvm(heap_bytes=10 * MiB)
    jvm.alloc(9 * MiB)
    with pytest.raises(OutOfMemoryError, match="heap space"):
        jvm.alloc(2 * MiB)
    assert jvm.dead
    assert jvm.full_gcs == 1
    with pytest.raises(OutOfMemoryError, match="already dead"):
        jvm.alloc(1)


def test_thread_stack_budget_enforced():
    sim, node, jvm = make_jvm(
        native_budget_bytes=1 * MiB, thread_stack_bytes=256 * 1024
    )
    assert jvm.max_threads == 4

    def worker():
        yield sim.timeout(100.0)

    for _ in range(4):
        jvm.spawn_thread(worker())
    with pytest.raises(OutOfMemoryError, match="native thread"):
        jvm.spawn_thread(worker())
    assert jvm.thread_count == 4


def test_thread_exit_releases_stack():
    sim, node, jvm = make_jvm(
        native_budget_bytes=512 * 1024, thread_stack_bytes=256 * 1024
    )

    def quick():
        yield sim.timeout(1.0)

    jvm.spawn_thread(quick())
    jvm.spawn_thread(quick())
    assert jvm.thread_count == 2
    sim.run()
    assert jvm.thread_count == 0
    assert jvm.threads_peak == 2
    # Budget is free again.
    jvm.spawn_thread(quick())


def test_minor_gc_triggers_on_allocation_volume():
    sim, node, jvm = make_jvm(young_gen_bytes=1 * MiB)
    for _ in range(10):
        jvm.alloc(0.3 * MiB)
        jvm.free(0.3 * MiB)
    assert jvm.minor_gcs >= 2


def test_gc_pause_seizes_cpu():
    """A GC pause delays unrelated CPU work on the same node."""
    sim, node, jvm = make_jvm(
        young_gen_bytes=1 * MiB, gc_minor_base=0.5, gc_minor_per_live=0.0
    )
    jvm.alloc(2 * MiB)  # triggers a 0.5 s pause process
    assert jvm.minor_gcs == 1

    def probe():
        yield from node.execute(0.001)
        return sim.now

    assert sim.run_process(probe()) >= 0.5


def test_committed_bytes_counts_high_water_and_stacks():
    sim, node, jvm = make_jvm(thread_stack_bytes=256 * 1024)
    base = jvm.committed_bytes
    jvm.alloc(50 * MiB)
    jvm.free(50 * MiB)

    def worker():
        yield sim.timeout(10.0)

    jvm.spawn_thread(worker())
    assert jvm.committed_bytes == base + 50 * MiB + 256 * 1024


def test_negative_alloc_free_rejected():
    sim, node, jvm = make_jvm()
    with pytest.raises(ValueError):
        jvm.alloc(-1)
    with pytest.raises(ValueError):
        jvm.free(-1)


def test_spawn_on_dead_jvm_rejected():
    sim, node, jvm = make_jvm(heap_bytes=1 * MiB)
    with pytest.raises(OutOfMemoryError):
        jvm.alloc(2 * MiB)

    def worker():
        yield sim.timeout(1.0)

    with pytest.raises(OutOfMemoryError, match="already dead"):
        jvm.spawn_thread(worker())


def test_default_jvm_hits_wall_between_3000_and_4000_threads():
    """Paper §III.E.2: a single Narada broker (1 GiB heap) cannot serve 4000
    connections; Fig 8 shows it serving 3000.  The default native budget and
    stack size must place the wall in that window."""
    sim, node, jvm = make_jvm()
    assert 3000 < jvm.max_threads < 4000
