"""Tests for the Hydra cluster factory (paper Table I)."""

from repro.cluster import HYDRA_SPEC, HydraCluster
from repro.sim import Simulator


def test_eight_nodes_created():
    sim = Simulator()
    cluster = HydraCluster(sim)
    assert len(cluster) == 8
    assert cluster.node_names() == [f"hydra{i}" for i in range(1, 9)]


def test_nodes_attached_to_lan():
    sim = Simulator()
    cluster = HydraCluster(sim)
    assert cluster.lan.hosts() == sorted(f"hydra{i}" for i in range(1, 9))


def test_spec_matches_table_one():
    assert HYDRA_SPEC.node_count == 8
    assert HYDRA_SPEC.memory_bytes == 2 * 1024**3
    assert HYDRA_SPEC.lan_bandwidth_bps == 100e6
    assert "866" in HYDRA_SPEC.cpu
    assert "1.4.2" in HYDRA_SPEC.jvm


def test_transfer_between_hydra_nodes():
    sim = Simulator(seed=2)
    cluster = HydraCluster(sim)
    ev = cluster.lan.transmit("hydra1", "hydra8", 10_000)
    sim.run()
    assert ev.value > 0
