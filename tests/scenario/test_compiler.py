"""Compiler: scenarios lower onto rate schedules + fault plans correctly."""

import pytest

from repro.faults import FaultPlan, named_plan
from repro.powergrid.workload import FleetConfig
from repro.scenario import (
    RAMP_STEPS,
    Scenario,
    arm_scenario,
    compile_scenario,
    merge_fault_plan,
    region_hosts,
)


def _fleet(n=800, nodes=("hydra5", "hydra6", "hydra7", "hydra8")):
    return FleetConfig(n_generators=n, stop_at=200.0, client_nodes=nodes)


def test_flat_burst_becomes_one_rate_window():
    scenario = Scenario("s", n_regions=4).alarm_storm(
        100.0, 20.0, region=1, multiplier=6.0
    )
    compiled = compile_scenario(scenario, _fleet())
    assert len(compiled.rates) == 1
    (window,) = compiled.rates
    assert (window.start, window.end) == (100.0, 120.0)
    assert (window.gen_lo, window.gen_hi) == (200, 400)
    assert window.multiplier == 6.0
    assert len(compiled.faults) == 0
    assert [(w.start, w.end) for w in compiled.burst_windows] == [(100.0, 120.0)]


def test_ramp_discretizes_into_climbing_steps():
    scenario = Scenario("s").alarm_storm(
        100.0, 20.0, region=None, multiplier=5.0, ramp=8.0
    )
    compiled = compile_scenario(scenario, _fleet())
    windows = list(compiled.rates)
    assert len(windows) == RAMP_STEPS + 1
    multipliers = [w.multiplier for w in windows]
    assert multipliers == sorted(multipliers)
    assert multipliers[-1] == 5.0
    assert windows[0].start == 100.0
    assert windows[-1] == windows[-1].__class__(108.0, 120.0, 0, 800, 5.0)


def test_substation_outage_partitions_hosts_and_silences_generators():
    scenario = Scenario("s", n_regions=4).substation_outage(100.0, 30.0, region=2)
    fleet = _fleet()
    compiled = compile_scenario(scenario, fleet)
    (spec,) = compiled.faults
    assert spec.kind == "partition"
    # Region 2 of 4 over 800 block-assigned generators lives on hydra7.
    assert spec.params["hosts"] == ("hydra7",)
    (window,) = compiled.rates
    assert window.multiplier == 0.0
    assert (window.gen_lo, window.gen_hi) == (400, 600)
    assert compiled.burst_windows == ()


def test_link_degrade_compiles_loss_per_host():
    scenario = Scenario("s", n_regions=2).link_degrade(100.0, 10.0, region=0, loss=0.3)
    fleet = _fleet(nodes=("hydra5", "hydra6"))
    compiled = compile_scenario(scenario, fleet)
    (spec,) = compiled.faults
    assert spec.kind == "packet_loss"
    assert spec.params == {"probability": 0.3, "src": "hydra5", "dst": "*"}


def test_region_hosts_follows_fleet_assignment():
    scenario = Scenario("s", n_regions=4)
    event = scenario.alarm_storm(0.0, 1.0, region=None).events[0]
    assert region_hosts(scenario, event, _fleet()) == (
        "hydra5", "hydra6", "hydra7", "hydra8",
    )


def test_empty_cohort_is_skipped():
    scenario = Scenario("s", n_regions=4).alarm_storm(0.0, 1.0, region=2)
    compiled = compile_scenario(scenario, _fleet(n=2))
    # 2 generators over 4 regions: region 2 is (1, 1) -> nothing compiled.
    assert len(compiled.rates) == 0


def test_arm_scenario_threads_rates_into_the_fleet():
    fleet = _fleet()
    armed, compiled = arm_scenario(
        lambda ms, d: Scenario("s").alarm_storm(ms, d / 2, multiplier=2.0),
        100.0,
        60.0,
        fleet,
    )
    assert compiled is not None
    assert armed.rates is compiled.rates
    assert fleet.rates is None  # input untouched
    assert arm_scenario(None, 100.0, 60.0, fleet) == (fleet, None)


def test_merge_fault_plan_composes_with_user_plan():
    scenario = Scenario("s", n_regions=4).substation_outage(100.0, 10.0, region=0)
    compiled = compile_scenario(scenario, _fleet())
    assert merge_fault_plan(None, None) is None
    assert merge_fault_plan(compiled, None) is compiled.faults
    user = named_plan("latency_spike")(100.0, 60.0)
    merged = merge_fault_plan(compiled, user)
    assert {s.kind for s in merged} == {"partition", "latency"}
    # A scenario with no faults passes the user plan through untouched.
    quiet = compile_scenario(Scenario("q").alarm_storm(0.0, 1.0), _fleet())
    assert merge_fault_plan(quiet, user) is user


def test_conflicting_scenario_and_user_plan_raise():
    scenario = Scenario("s", n_regions=4).substation_outage(100.0, 20.0, region=0)
    compiled = compile_scenario(scenario, _fleet())
    clashing = FaultPlan().partition(105.0, 10.0, hosts=("hydra5",))
    with pytest.raises(ValueError, match="conflicting partition windows"):
        merge_fault_plan(compiled, clashing)
