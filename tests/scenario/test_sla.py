"""SLA scorer: miss/loss/dup percentages and windowed P99s."""

import math

import pytest

from repro.core import RecordBook
from repro.scenario import (
    SCORECARD_HEADERS,
    score_leg,
    scorecard,
    scorecard_row,
    sla_windows,
)
from repro.telemetry import TimeWindow


def _book(entries):
    """entries: (t_send, rtt_or_None)."""
    book = RecordBook()
    for i, (t, rtt) in enumerate(entries):
        record = book.new_record(gen_id=0, seq=i, t_before_send=t)
        if rtt is not None:
            record.t_received = t + rtt
    return book


def test_sla_windows_tile_the_measurement_window():
    windows = sla_windows(
        [TimeWindow("burst", 110.0, 120.0)], 100.0, 130.0
    )
    assert [(w.label, w.start, w.end) for w in windows] == [
        ("burst", 110.0, 120.0),
        ("steady", 100.0, 110.0),
        ("steady", 120.0, 130.0),
    ]
    # Bursts beyond the window clip; fully-outside bursts vanish.
    windows = sla_windows(
        [TimeWindow("burst", 125.0, 150.0), TimeWindow("burst", 0.0, 50.0)],
        100.0,
        130.0,
    )
    assert [(w.label, w.start, w.end) for w in windows] == [
        ("burst", 125.0, 130.0),
        ("steady", 100.0, 125.0),
    ]


def test_score_leg_counts_late_lost_and_duplicates():
    book = _book([
        (100.0, 0.010),   # steady, fine
        (105.0, None),    # steady, lost
        (111.0, 0.020),   # burst, fine
        (112.0, 6.0),     # burst, late (over the 5 s deadline)
        (90.0, 0.010),    # before the window: ignored
        (130.0, 0.010),   # at stop: ignored
    ])
    score = score_leg(
        "leg",
        book,
        measure_since=100.0,
        stop_at=130.0,
        burst=[TimeWindow("burst", 110.0, 120.0)],
        duplicates=1,
    )
    assert score.sent == 4
    assert score.delivered == 3
    assert score.loss_pct == 25.0
    assert score.deadline_miss_pct == 50.0  # 1 late + 1 lost of 4
    assert score.duplicate_pct == 100.0 / 3
    assert score.burst_p99_ms > 20.0
    assert score.steady_p99_ms == pytest.approx(10.0)


def test_score_leg_empty_slices_are_nan_not_crash():
    score = score_leg(
        "leg",
        _book([(101.0, 0.010)]),
        measure_since=100.0,
        stop_at=110.0,
        burst=[],
        duplicates=0,
    )
    assert math.isnan(score.burst_p99_ms)
    assert score.steady_p99_ms == pytest.approx(10.0)
    assert score.deadline_miss_pct == 0.0


def test_scorecard_renders_fixed_precision_strings():
    score = score_leg(
        "leg",
        _book([(101.0, 0.0105)]),
        measure_since=100.0,
        stop_at=110.0,
        burst=[],
    )
    row = scorecard_row(score)
    assert row == ("leg", "1", "1", "0.000%", "0.000%", "0.000%", "n/a", "10.500")
    headers, rows = scorecard([score])
    assert headers == SCORECARD_HEADERS
    assert rows == [row]
