"""Scenario DSL: validation, ordering, regions, library templates."""

import pytest

from repro.scenario import SCENARIOS, Scenario, ScenarioEvent, named_scenario


def test_event_validation():
    with pytest.raises(ValueError, match="unknown scenario event kind"):
        ScenarioEvent("earthquake", 0.0, 10.0)
    with pytest.raises(ValueError):
        ScenarioEvent("rate_burst", -1.0, 10.0)
    with pytest.raises(ValueError):
        ScenarioEvent("rate_burst", 0.0, 0.0)
    with pytest.raises(ValueError):
        ScenarioEvent("rate_burst", 0.0, 10.0, multiplier=-1.0)
    with pytest.raises(ValueError, match="ramp"):
        ScenarioEvent("rate_burst", 0.0, 10.0, ramp=11.0)
    with pytest.raises(ValueError, match="loss"):
        ScenarioEvent("link_degrade", 0.0, 10.0, loss=1.5)


def test_builders_validate_region_and_sort_events():
    scenario = Scenario("s", n_regions=2)
    scenario.link_degrade(50.0, 10.0, region=1)
    scenario.alarm_storm(10.0, 10.0, region=0, multiplier=4.0)
    scenario.substation_outage(30.0, 10.0, region=1)
    assert [e.at for e in scenario] == [10.0, 30.0, 50.0]
    with pytest.raises(ValueError, match="region 2 out of range"):
        scenario.alarm_storm(0.0, 1.0, region=2)


def test_region_range_partitions_the_fleet():
    scenario = Scenario("s", n_regions=4)
    ranges = [scenario.region_range(r, 10) for r in range(4)]
    assert ranges == [(0, 2), (2, 5), (5, 7), (7, 10)]
    # Contiguous, disjoint, exhaustive.
    assert ranges[0][0] == 0 and ranges[-1][1] == 10
    assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
    with pytest.raises(ValueError):
        scenario.region_range(4, 10)


def test_cache_key_reflects_structure():
    a = Scenario("s").alarm_storm(10.0, 20.0, region=0)
    b = Scenario("s").alarm_storm(10.0, 20.0, region=0)
    c = Scenario("s").alarm_storm(10.0, 20.0, region=0, multiplier=9.0)
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() != c.cache_key()


def test_library_templates_land_inside_the_window():
    for name, template in SCENARIOS.items():
        scenario = template(100.0, 60.0)
        assert scenario.name == name
        assert len(scenario) >= 1
        for event in scenario:
            assert event.at >= 100.0
            assert event.until <= 160.0 + 1e-9


def test_library_templates_are_deterministic():
    for template in SCENARIOS.values():
        assert (
            template(100.0, 60.0).cache_key() == template(100.0, 60.0).cache_key()
        )


def test_storm_front_moves_across_regions():
    scenario = named_scenario("storm_front")(0.0, 100.0)
    bursts = [e for e in scenario if e.kind == "rate_burst"]
    assert [e.region for e in bursts] == [0, 1, 2, 3]
    assert all(a.at < b.at for a, b in zip(bursts, bursts[1:]))


def test_cascading_trip_interleaves_faults_and_bursts():
    scenario = named_scenario("cascading_trip")(0.0, 100.0)
    kinds = [e.kind for e in scenario]
    assert kinds.count("substation_outage") == 2
    assert kinds.count("rate_burst") == 2
    # Each outage precedes the neighbor's overload burst.
    outages = [e for e in scenario if e.kind == "substation_outage"]
    bursts = [e for e in scenario if e.kind == "rate_burst"]
    for outage, burst in zip(outages, bursts):
        assert burst.at > outage.at
        assert burst.region == outage.region + 1


def test_named_scenario_unknown():
    with pytest.raises(ValueError, match="unknown scenario"):
        named_scenario("heat_dome")
