"""LinkFaults consulted by Lan.transmit: loss, latency, partition windows."""

from repro.cluster.network import Lan
from repro.faults import LinkFaults
from repro.sim import Simulator

HOSTS = ("hydra1", "hydra7", "hydra8")


def make_lan(seed=3, jitter_mean=0.0, with_faults=True):
    sim = Simulator(seed=seed)
    lan = Lan(sim, jitter_mean=jitter_mean)
    for host in HOSTS:
        lan.attach(host)
    if with_faults:
        lan.faults = LinkFaults(sim)
    return sim, lan


def at(sim, when, fn):
    """Run ``fn`` at sim-time ``when``, collecting its return value."""
    out = []
    sim.call_at(when, lambda: out.append(fn()))
    return out


def test_loss_window_drops_datagrams_only_inside_the_window():
    sim, lan = make_lan()
    lan.faults.add_loss(10.0, 20.0, 1.0)  # certain loss for 10 s

    before = at(sim, 5.0, lambda: lan.transmit("hydra1", "hydra7", 200, droppable=True))
    inside = at(sim, 15.0, lambda: lan.transmit("hydra1", "hydra7", 200, droppable=True))
    after = at(sim, 25.0, lambda: lan.transmit("hydra1", "hydra7", 200, droppable=True))
    sim.run()

    assert before[0] is not None
    assert inside[0] is None
    assert after[0] is not None
    assert lan.tx_link("hydra1").stats.drops_random == 1


def test_loss_windows_compose_multiplicatively():
    sim, lan = make_lan()
    lan.faults.add_loss(0.0, 10.0, 0.5)
    lan.faults.add_loss(0.0, 10.0, 0.5, src="hydra1")
    at(sim, 1.0, lambda: None)
    sim.run()
    assert abs(lan.faults.loss_probability("hydra1", "hydra7") - 0.75) < 1e-12
    # The src="hydra1" window does not apply to other sources.
    assert abs(lan.faults.loss_probability("hydra7", "hydra1") - 0.5) < 1e-12


def test_loss_window_never_touches_stream_traffic():
    sim, lan = make_lan()
    lan.faults.add_loss(0.0, 10.0, 1.0)
    got = at(sim, 1.0, lambda: lan.transmit("hydra1", "hydra7", 200, droppable=False))
    sim.run()
    assert got[0] is not None


def test_partition_drops_datagrams_and_holds_streams():
    sim, lan = make_lan()
    lan.faults.add_partition(0.0, 5.0, ("hydra7",))

    dropped = at(sim, 1.0, lambda: lan.transmit("hydra1", "hydra7", 200, droppable=True))
    held = at(sim, 1.0, lambda: lan.transmit("hydra1", "hydra7", 200, droppable=False))
    sim.run()

    assert dropped[0] is None
    assert lan.tx_link("hydra1").stats.drops_fault == 1
    assert lan.faults.partition_drops == 1
    # The stream transfer is delivered, but only after the cut heals at t=5.
    assert held[0] is not None
    assert held[0].value >= 4.0
    assert lan.faults.partition_holds == 1


def test_partition_is_a_cut_not_a_blackout():
    """Traffic between two hosts on the same side of the cut is unaffected."""
    sim, lan = make_lan()
    lan.faults.add_partition(0.0, 5.0, ("hydra7", "hydra8"))
    got = at(sim, 1.0, lambda: lan.transmit("hydra7", "hydra8", 200, droppable=True))
    sim.run()
    assert got[0] is not None
    assert got[0].value < 1.0
    assert lan.faults.partition_drops == 0


def test_latency_window_adds_extra_delay():
    sim_a, lan_a = make_lan(seed=5, with_faults=False)
    sim_b, lan_b = make_lan(seed=5)
    lan_b.faults.add_latency(0.0, 10.0, 0.05)

    base = at(sim_a, 1.0, lambda: lan_a.transmit("hydra1", "hydra7", 200))
    slow = at(sim_b, 1.0, lambda: lan_b.transmit("hydra1", "hydra7", 200))
    sim_a.run()
    sim_b.run()

    extra = slow[0].value - base[0].value
    assert abs(extra - 0.05) < 1e-9
    assert lan_b.faults.delayed_transfers == 1


def test_empty_link_faults_are_transparent():
    """An installed-but-empty LinkFaults changes nothing, including RNG use."""
    sim_a, lan_a = make_lan(seed=7, jitter_mean=80e-6, with_faults=False)
    sim_b, lan_b = make_lan(seed=7, jitter_mean=80e-6)
    assert lan_b.faults.empty

    got_a = at(sim_a, 1.0, lambda: lan_a.transmit("hydra1", "hydra7", 1400))
    got_b = at(sim_b, 1.0, lambda: lan_b.transmit("hydra1", "hydra7", 1400))
    sim_a.run()
    sim_b.run()
    assert got_a[0].value == got_b[0].value
