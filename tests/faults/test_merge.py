"""FaultPlan.merge: deterministic composition + overlap validation."""

import pytest

from repro.faults import FaultPlan


def test_merge_unions_and_orders_canonically():
    a = FaultPlan().packet_loss(at=50.0, duration=5.0, probability=0.2)
    b = FaultPlan().broker_crash(at=10.0, broker="broker:1", restart_after=5.0)
    merged = a.merge(b)
    assert [s.kind for s in merged] == ["broker_crash", "packet_loss"]
    assert len(a) == 1 and len(b) == 1  # inputs untouched


def test_merge_is_order_independent():
    a = FaultPlan().latency(at=30.0, duration=5.0, extra=0.01)
    b = FaultPlan().partition(at=10.0, duration=5.0, hosts=("hydra7",))
    assert [s.kind for s in a.merge(b)] == [s.kind for s in b.merge(a)]


def test_merge_dedupes_identical_specs():
    a = FaultPlan().packet_loss(at=50.0, duration=5.0, probability=0.2)
    b = FaultPlan().packet_loss(at=50.0, duration=5.0, probability=0.2)
    assert len(a.merge(b)) == 1


def test_merge_rejects_conflicting_windows_on_the_same_link():
    """Two different loss windows on one link overlapping in time is a
    contradiction, not a stack."""
    a = FaultPlan().packet_loss(at=50.0, duration=10.0, probability=0.2)
    b = FaultPlan().packet_loss(at=55.0, duration=10.0, probability=0.5)
    with pytest.raises(ValueError, match="conflicting packet_loss windows"):
        a.merge(b)
    with pytest.raises(ValueError, match="conflicting packet_loss windows"):
        b.merge(a)


def test_merge_rejects_same_start_zero_duration_conflicts():
    a = FaultPlan().consumer_crash(at=50.0, consumer=0)
    b = FaultPlan()._add(a.specs[0].__class__(
        "consumer_crash", 50.0, 0.0, "consumer:0", {"why": "other"}
    ))
    with pytest.raises(ValueError, match="conflicting consumer_crash"):
        a.merge(b)


def test_merge_allows_adjacent_and_disjoint_windows():
    a = FaultPlan().packet_loss(at=50.0, duration=10.0, probability=0.2)
    b = FaultPlan().packet_loss(at=60.0, duration=10.0, probability=0.5)
    merged = a.merge(b)
    assert [s.at for s in merged] == [50.0, 60.0]


def test_merge_allows_overlap_on_different_targets():
    a = FaultPlan().packet_loss(at=50.0, duration=10.0, probability=0.2, src="hydra5")
    b = FaultPlan().packet_loss(at=55.0, duration=10.0, probability=0.5, src="hydra6")
    assert len(a.merge(b)) == 2
