"""FaultPlan/FaultSpec: validation, ordering, templates."""

import pytest

from repro.faults import FaultPlan, FaultSpec, PLANS, named_plan


def test_spec_validates_kind_and_times():
    with pytest.raises(ValueError):
        FaultSpec("tornado", 1.0)
    with pytest.raises(ValueError):
        FaultSpec("packet_loss", -1.0)
    with pytest.raises(ValueError):
        FaultSpec("packet_loss", 1.0, duration=-2.0)


def test_spec_until_and_params():
    spec = FaultSpec("latency", 5.0, 3.0, params={"extra": 0.04})
    assert spec.until == 8.0
    assert spec.param("extra") == 0.04
    assert spec.param("missing", 7) == 7


def test_builder_sorts_specs_by_time():
    plan = (
        FaultPlan()
        .broker_crash(at=20.0, broker="broker:1")
        .packet_loss(at=5.0, duration=2.0, probability=0.5)
        .latency(at=10.0, duration=1.0, extra=0.02)
    )
    assert [s.at for s in plan] == [5.0, 10.0, 20.0]
    assert len(plan) == 3
    assert plan.specs[0].kind == "packet_loss"


def test_builder_validates_parameters():
    with pytest.raises(ValueError):
        FaultPlan().packet_loss(at=0.0, duration=1.0, probability=1.5)
    with pytest.raises(ValueError):
        FaultPlan().latency(at=0.0, duration=1.0, extra=-0.1)
    with pytest.raises(ValueError):
        FaultPlan().partition(at=0.0, duration=1.0, hosts=())
    with pytest.raises(ValueError):
        FaultPlan().cpu_slowdown(at=0.0, duration=1.0, node="hydra1", factor=0.0)
    with pytest.raises(ValueError):
        FaultPlan().slow_consumer(at=0.0, duration=1.0, consumer=0, factor=0.5)
    with pytest.raises(ValueError):
        FaultPlan().memory_pressure(at=0.0, broker="broker:0", nbytes=0)


def test_broker_crash_with_restart_carries_duration():
    plan = FaultPlan().broker_crash(at=10.0, restart_after=5.0)
    (spec,) = plan.specs
    assert spec.param("restart_after") == 5.0
    assert spec.until == 15.0


def test_every_named_template_lands_inside_the_window():
    since, duration = 100.0, 30.0
    for name in PLANS:
        plan = named_plan(name)(since, duration)
        assert len(plan) >= 1, name
        for spec in plan:
            assert since <= spec.at <= since + duration, (name, spec)
            assert spec.until <= since + duration + 1e-9, (name, spec)


def test_named_plan_unknown_raises():
    with pytest.raises(ValueError, match="unknown fault plan"):
        named_plan("earthquake")


def test_plans_are_pure_data():
    """Building a plan twice gives identical specs (no hidden randomness)."""
    a = named_plan("mixed")(50.0, 20.0)
    b = named_plan("mixed")(50.0, 20.0)
    assert a.specs == b.specs
