"""FaultScheduler node/application faults against live components."""

import pytest

from repro.cluster import HydraCluster
from repro.faults import FaultPlan, FaultScheduler
from repro.plog import PlogConfig, PlogDeployment
from repro.sim import Simulator
from repro.transport import TcpTransport


def make_world(n_brokers=1, config=None):
    sim = Simulator(seed=11)
    cluster = HydraCluster(sim)
    transport = TcpTransport(sim, cluster.lan)
    hosts = tuple(f"hydra{i + 1}" for i in range(n_brokers))
    deployment = PlogDeployment(
        sim, cluster, transport, broker_hosts=hosts, config=config or PlogConfig()
    )
    deployment.serve()
    return sim, cluster, deployment


def attach(sim, cluster, deployment, plan, **kw):
    return FaultScheduler(sim, plan).attach(
        lan=cluster.lan, cluster=cluster, brokers=deployment.brokers, **kw
    )


def test_broker_crash_and_restart():
    sim, cluster, deployment = make_world()
    plan = FaultPlan().broker_crash(at=1.0, broker="broker:0", restart_after=2.0)
    scheduler = attach(sim, cluster, deployment, plan)
    broker = deployment.brokers[0]

    sim.run(until=2.0)
    assert not broker.alive
    assert broker.crashes == 1
    sim.run(until=4.0)
    assert broker.alive
    assert broker.restarts == 1
    log = "\n".join(scheduler.render_log())
    assert "process killed" in log
    assert "back up" in log


def test_unresolvable_targets_are_skipped_not_raised():
    sim, cluster, deployment = make_world()
    plan = (
        FaultPlan()
        .broker_crash(at=1.0, broker="broker:7")
        .cpu_slowdown(at=1.0, duration=1.0, node="hydra99", factor=2.0)
        .consumer_crash(at=1.0, consumer=0)
    )
    scheduler = attach(sim, cluster, deployment, plan)
    sim.run(until=3.0)
    log = scheduler.render_log()
    assert len(log) == 3
    assert all("skipped" in line for line in log)
    assert deployment.brokers[0].alive


def test_cpu_slowdown_applies_and_reverts():
    sim, cluster, deployment = make_world()
    node = cluster.node("hydra1")
    plan = FaultPlan().cpu_slowdown(at=1.0, duration=2.0, node="hydra1", factor=4.0)
    attach(sim, cluster, deployment, plan)

    sim.run(until=2.0)
    assert node.cpu_scale == pytest.approx(0.25)
    sim.run(until=4.0)
    assert node.cpu_scale == pytest.approx(1.0)


def test_memory_pressure_ballast_released_after_window():
    sim, cluster, deployment = make_world()
    broker = deployment.brokers[0]
    nbytes = broker.jvm.heap_bytes * 0.25
    plan = FaultPlan().memory_pressure(at=1.0, broker="broker:0", nbytes=nbytes, duration=2.0)
    scheduler = attach(sim, cluster, deployment, plan)

    baseline = broker.jvm.heap_used
    sim.run(until=2.0)
    assert broker.jvm.heap_used == pytest.approx(baseline + nbytes)
    sim.run(until=4.0)
    assert broker.jvm.heap_used == pytest.approx(baseline)
    assert "ballast" in "\n".join(scheduler.render_log())


def test_memory_pressure_that_does_not_fit_is_an_oom_kill():
    sim, cluster, deployment = make_world()
    broker = deployment.brokers[0]
    plan = FaultPlan().memory_pressure(
        at=1.0, broker="broker:0", nbytes=broker.jvm.heap_bytes * 2
    )
    scheduler = attach(sim, cluster, deployment, plan)

    sim.run(until=2.0)
    assert not broker.alive
    assert broker.jvm.dead
    assert "OOM kill" in "\n".join(scheduler.render_log())


def test_restart_after_oom_is_refused():
    sim, cluster, deployment = make_world()
    broker = deployment.brokers[0]
    plan = (
        FaultPlan()
        .memory_pressure(at=1.0, broker="broker:0", nbytes=broker.jvm.heap_bytes * 2)
        .broker_crash(at=2.0, broker="broker:0", restart_after=1.0)
    )
    scheduler = attach(sim, cluster, deployment, plan)
    sim.run(until=5.0)
    assert not broker.alive  # a dead JVM cannot come back
    assert "skipped: JVM dead" in "\n".join(scheduler.render_log())


def test_stall_seizes_the_cpu_for_the_window():
    sim, cluster, deployment = make_world()
    node = cluster.node("hydra2")
    plan = FaultPlan().stall(at=1.0, duration=2.0, node="hydra2")
    attach(sim, cluster, deployment, plan)

    def probe():
        yield sim.timeout(1.1)
        yield from node.execute(0.001)
        return sim.now

    finished = sim.run_process(probe())
    # The probe queues behind the stall job and only runs after t=3.
    assert finished >= 3.0


class DummyConsumer:
    def __init__(self):
        self.name = "dummy-consumer"
        self.record_cpu_multiplier = 1.0
        self.closed = False

    def close(self):
        self.closed = True


def test_slow_consumer_multiplier_applies_and_reverts():
    sim, cluster, deployment = make_world()
    victim, bystander = DummyConsumer(), DummyConsumer()
    plan = FaultPlan().slow_consumer(at=1.0, duration=2.0, consumer=0, factor=8.0)
    attach(sim, cluster, deployment, plan, consumers=[victim, bystander])

    sim.run(until=2.0)
    assert victim.record_cpu_multiplier == 8.0
    assert bystander.record_cpu_multiplier == 1.0
    sim.run(until=4.0)
    assert victim.record_cpu_multiplier == 1.0


def test_consumer_crash_closes_the_consumer():
    sim, cluster, deployment = make_world()
    victim = DummyConsumer()
    plan = FaultPlan().consumer_crash(at=1.0, consumer=0)
    attach(sim, cluster, deployment, plan, consumers=[victim])
    sim.run(until=2.0)
    assert victim.closed


def test_scheduler_cannot_be_attached_twice():
    sim, cluster, deployment = make_world()
    scheduler = attach(sim, cluster, deployment, FaultPlan())
    with pytest.raises(RuntimeError):
        scheduler.attach(lan=cluster.lan)
