"""RetryPolicy math and the off-by-default recovery contract."""

import pytest

from repro.faults import NO_RETRY, RetryPolicy
from repro.sim import Simulator


def test_defaults_are_disabled():
    assert not NO_RETRY.enabled
    assert RetryPolicy().retries == 0


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


def test_delay_grows_exponentially_and_caps():
    policy = RetryPolicy(retries=10, backoff=0.1, multiplier=2.0, max_backoff=1.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    assert policy.delay(5) == pytest.approx(1.0)  # capped
    assert policy.delay(9) == pytest.approx(1.0)


def test_total_budget_sums_unjittered_delays():
    policy = RetryPolicy(retries=3, backoff=0.1, multiplier=2.0)
    assert policy.total_budget() == pytest.approx(0.1 + 0.2 + 0.4)


def test_jitter_draws_from_a_named_stream_deterministically():
    policy = RetryPolicy(retries=3, backoff=0.1, jitter=0.5)
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    delays_a = [policy.delay(1, a, "plog.retry.p0") for _ in range(5)]
    delays_b = [policy.delay(1, b, "plog.retry.p0") for _ in range(5)]
    assert delays_a == delays_b
    assert len(set(delays_a)) > 1  # jitter actually varies draw to draw
    for d in delays_a:
        assert 0.1 <= d <= 0.1 * 1.5


def test_jitter_streams_are_independent():
    policy = RetryPolicy(retries=1, backoff=0.1, jitter=0.5)
    sim = Simulator(seed=42)
    d1 = policy.delay(1, sim, "narada.retry.gen-1")
    d2 = policy.delay(1, sim, "narada.retry.gen-2")
    assert d1 != d2


def test_recovery_is_opt_in_everywhere():
    """Configs must not silently turn recovery on (seed determinism)."""
    from repro.plog import PlogConfig
    from repro.powergrid.workload import FleetConfig

    plog = PlogConfig()
    assert not plog.producer_retry.enabled
    assert plog.failover is False
    assert plog.consumer_recovery is False
    fleet = FleetConfig(n_generators=1, publish_interval=10.0)
    assert fleet.retry is None
    assert fleet.failover is False
