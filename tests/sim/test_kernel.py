"""Unit tests for the simulation kernel: clock, events, ordering, run()."""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import EmptySchedule


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_does_not_process_later_events():
    sim = Simulator()
    fired = []
    ev = sim.timeout(5.0)
    ev.add_callback(lambda e: fired.append(sim.now))
    sim.run(until=4.0)
    assert fired == []
    assert sim.now == 4.0
    sim.run(until=6.0)
    assert fired == [5.0]


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.run(until=3.0)
    with pytest.raises(ValueError):
        sim.run(until=2.0)


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        ev = sim.timeout(1.0)
        ev.add_callback(lambda e, i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_event_succeed_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("payload")
    sim.run()
    assert ev.processed and ev.ok and ev.value == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_failed_undefused_event_raises_at_kernel():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_failed_defused_event_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    sim.run()
    assert ev.processed and not ev.ok


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_call_at_runs_fn_at_time():
    sim = Simulator()
    seen = []
    sim.call_at(7.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.0]


def test_call_at_in_past_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.timeout(3.0)
    sim.timeout(1.0)
    assert sim.peek() == 1.0


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")
