"""Tests for named RNG streams: determinism, independence, stability."""

from repro.sim.rng import RngStreams, _stable_hash


def test_same_seed_same_stream_reproducible():
    a = RngStreams(42)
    b = RngStreams(42)
    assert [a.random("x") for _ in range(10)] == [b.random("x") for _ in range(10)]


def test_different_seeds_differ():
    a = RngStreams(1)
    b = RngStreams(2)
    assert [a.random("x") for _ in range(5)] != [b.random("x") for _ in range(5)]


def test_streams_are_independent():
    """Drawing from one stream must not perturb another."""
    a = RngStreams(7)
    b = RngStreams(7)
    # Interleave draws from an unrelated stream in `a` only.
    seq_a = []
    for _ in range(10):
        a.random("noise")
        seq_a.append(a.random("signal"))
    seq_b = [b.random("signal") for _ in range(10)]
    assert seq_a == seq_b


def test_stream_cached_not_restarted():
    r = RngStreams(3)
    first = r.random("s")
    second = r.random("s")
    assert first != second  # astronomically unlikely to collide


def test_uniform_bounds():
    r = RngStreams(11)
    draws = [r.uniform("u", 10.0, 20.0) for _ in range(100)]
    assert all(10.0 <= d < 20.0 for d in draws)


def test_exponential_mean_roughly_right():
    r = RngStreams(13)
    draws = [r.exponential("e", 2.0) for _ in range(5000)]
    mean = sum(draws) / len(draws)
    assert 1.8 < mean < 2.2


def test_stable_hash_is_process_independent_constant():
    # Pinned value: if this changes, every seeded experiment changes.
    assert _stable_hash("tcp.loss") == _stable_hash("tcp.loss")
    assert _stable_hash("a") != _stable_hash("b")
    assert 0 <= _stable_hash("anything") < 2**64
