"""Tests for Store, PriorityStore, Resource, Container."""

import pytest

from repro.sim import Container, PriorityStore, Resource, Simulator, Store
from repro.sim.resources import StoreFull


# ---------------------------------------------------------------- Store
def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        got = []
        for _ in range(5):
            item = yield store.get()
            got.append(item)
        return got

    sim.process(producer())
    cons = sim.process(consumer())
    sim.run()
    assert cons.value == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(3.0)
        yield store.put("x")

    cons = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert cons.value == (3.0, "x")


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(sim.now)
        yield store.put("b")
        times.append(sim.now)

    def consumer():
        yield sim.timeout(5.0)
        item = yield store.get()
        return item

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [0.0, 5.0]


def test_store_put_nowait_raises_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    store.put_nowait(1)
    store.put_nowait(2)
    assert store.is_full
    with pytest.raises(StoreFull):
        store.put_nowait(3)


def test_store_get_nowait():
    sim = Simulator()
    store = Store(sim)
    store.put_nowait("only")
    assert store.get_nowait() == "only"
    with pytest.raises(IndexError):
        store.get_nowait()


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put_nowait(1)
    store.put_nowait(2)
    assert len(store) == 2


def test_store_waiting_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(tag):
        item = yield store.get()
        results.append((tag, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield sim.timeout(1.0)
        yield store.put("a")
        yield store.put("b")

    sim.process(producer())
    sim.run()
    assert results == [("first", "a"), ("second", "b")]


# ---------------------------------------------------------- PriorityStore
def test_priority_store_orders_by_priority():
    sim = Simulator()
    store = PriorityStore(sim)
    for priority, tag in [(5, "low"), (1, "high"), (3, "mid")]:
        store.put_nowait((priority, tag))

    def consumer():
        got = []
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])
        return got

    assert sim.run_process(consumer()) == ["high", "mid", "low"]


def test_priority_store_capacity_and_nowait():
    sim = Simulator()
    store = PriorityStore(sim, capacity=1)
    store.put_nowait((1, "x"))
    with pytest.raises(StoreFull):
        store.put_nowait((2, "y"))
    assert store.get_nowait() == (1, "x")


def test_priority_store_blocked_put_admitted_in_order():
    sim = Simulator()
    store = PriorityStore(sim, capacity=1)

    def producer():
        yield store.put((2, "second"))
        yield store.put((1, "first-priority"))

    def consumer():
        got = []
        for _ in range(2):
            yield sim.timeout(1.0)
            item = yield store.get()
            got.append(item)
        return got

    sim.process(producer())
    cons = sim.process(consumer())
    sim.run()
    assert cons.value == [(2, "second"), (1, "first-priority")]


# -------------------------------------------------------------- Resource
def test_resource_limits_concurrency():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    active = []
    peak = []

    def worker(i):
        yield pool.acquire()
        active.append(i)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(i)
        pool.release()

    for i in range(6):
        sim.process(worker(i))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 3.0  # 6 workers / 2 slots * 1s


def test_resource_try_acquire():
    sim = Simulator()
    pool = Resource(sim, capacity=1)
    assert pool.try_acquire()
    assert not pool.try_acquire()
    pool.release()
    assert pool.try_acquire()


def test_resource_release_without_acquire():
    sim = Simulator()
    pool = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        pool.release()


def test_resource_available():
    sim = Simulator()
    pool = Resource(sim, capacity=3)
    pool.try_acquire()
    assert pool.available == 2


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ------------------------------------------------------------- Container
def test_container_put_get():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=10.0)
    tank.put(40.0)
    assert tank.level == 50.0
    assert tank.try_get(30.0)
    assert tank.level == 20.0


def test_container_overflow_raises():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    with pytest.raises(OverflowError):
        tank.put(11.0)


def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100.0)

    def consumer():
        yield tank.get(50.0)
        return sim.now

    def producer():
        yield sim.timeout(1.0)
        tank.put(20.0)
        yield sim.timeout(1.0)
        tank.put(30.0)

    cons = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert cons.value == 2.0


def test_container_getters_fifo_no_overtaking():
    sim = Simulator()
    tank = Container(sim, capacity=100.0)
    order = []

    def consumer(tag, amount):
        yield tank.get(amount)
        order.append(tag)

    sim.process(consumer("big", 50.0))
    sim.process(consumer("small", 5.0))

    def producer():
        yield sim.timeout(1.0)
        tank.put(10.0)  # enough for "small" but it must wait behind "big"
        yield sim.timeout(1.0)
        tank.put(60.0)

    sim.process(producer())
    sim.run()
    assert order == ["big", "small"]


def test_container_invalid_init():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=5.0, init=6.0)


def test_container_negative_amounts_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=5.0)
    with pytest.raises(ValueError):
        tank.put(-1.0)
    with pytest.raises(ValueError):
        tank.get(-1.0)
