"""Tests for AnyOf / AllOf condition events."""

import pytest

from repro.sim import Simulator


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(10.0, value="slow")
        result = yield sim.any_of([fast, slow])
        return (sim.now, result)

    when, result = sim.run_process(proc())
    assert when == 1.0
    assert list(result.values()) == ["fast"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(5.0, value="b")
        result = yield sim.all_of([a, b])
        return (sim.now, sorted(result.values()))

    when, values = sim.run_process(proc())
    assert when == 5.0
    assert values == ["a", "b"]


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        result = yield sim.all_of([])
        return result

    assert sim.run_process(proc()) == {}


def test_any_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        result = yield sim.any_of([])
        return result

    assert sim.run_process(proc()) == {}


def test_condition_with_already_processed_child():
    sim = Simulator()

    def proc():
        ev = sim.timeout(1.0, value="early")
        yield sim.timeout(2.0)
        result = yield sim.any_of([ev, sim.timeout(50.0)])
        return (sim.now, list(result.values()))

    when, values = sim.run_process(proc())
    assert when == 2.0
    assert values == ["early"]


def test_condition_failure_propagates():
    sim = Simulator()

    def failer():
        yield sim.timeout(1.0)
        raise RuntimeError("kaboom")

    def proc():
        with pytest.raises(RuntimeError, match="kaboom"):
            yield sim.all_of([sim.process(failer()), sim.timeout(10.0)])
        return sim.now

    assert sim.run_process(proc()) == 1.0


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(ValueError):
        sim1.any_of([sim1.timeout(1.0), sim2.timeout(1.0)])


def test_timeout_race_is_usable_as_wait_with_deadline():
    """The ack-or-timeout idiom used throughout the transports."""
    sim = Simulator()

    def proc():
        ack = sim.event()
        deadline = sim.timeout(5.0)
        sim.call_at(2.0, lambda: ack.succeed("acked"))
        result = yield sim.any_of([ack, deadline])
        assert ack in result and deadline not in result
        return sim.now

    assert sim.run_process(proc()) == 2.0
