"""The batch-event fast path: Simulator.batch + CohortProcess."""

import pytest

from repro.sim import CohortProcess, Simulator


def test_batch_fires_fn_with_event_at_the_right_time():
    sim = Simulator()
    seen = []
    ev = sim.batch(2.5, lambda e: seen.append((sim.now, e)))
    sim.run()
    assert seen == [(2.5, ev)]


def test_batch_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.batch(-0.1, lambda e: None)


def test_batch_costs_one_heap_entry_per_tick():
    """The point of the fast path: N messages fan out from ONE scheduled
    event, so the kernel's event counter grows by ticks, not messages."""
    sim = Simulator()
    before = sim._seq
    delivered = []

    def fan_out(_event):
        delivered.extend(range(1000))  # stand-in for a vectorized batch

    sim.batch(1.0, fan_out)
    sim.run()
    assert len(delivered) == 1000
    assert sim._seq - before == 1


def test_batch_orders_against_process_events():
    sim = Simulator()
    order = []

    def proc():
        yield sim.timeout(1.0)
        order.append("process@1")
        yield sim.timeout(2.0)
        order.append("process@3")

    sim.process(proc())
    sim.batch(2.0, lambda e: order.append("batch@2"))
    sim.run()
    assert order == ["process@1", "batch@2", "process@3"]


def test_cohort_process_self_reschedules_until_none():
    sim = Simulator()
    times = []

    def on_tick(now):
        times.append(now)
        return now + 10.0 if now < 25.0 else None

    cohort = CohortProcess(sim, on_tick, at=5.0)
    sim.run()
    assert times == [5.0, 15.0, 25.0]
    assert cohort.ticks == 3
    assert cohort.done


def test_cohort_process_can_tick_immediately_and_repeatedly_at_now():
    sim = Simulator()
    times = []

    def on_tick(now):
        times.append(now)
        # Re-ticking at the same instant is legal (delay 0), e.g. a cohort
        # draining several due rounds before advancing.
        return now if len(times) < 3 else None

    CohortProcess(sim, on_tick)
    sim.run()
    assert times == [0.0, 0.0, 0.0]


def test_cohort_process_rejects_ticks_in_the_past():
    sim = Simulator()
    CohortProcess(sim, lambda now: now - 1.0, at=2.0)
    with pytest.raises(ValueError, match="in the past"):
        sim.run()


def test_cohort_process_tick_count_is_heap_entry_count():
    sim = Simulator()
    before = sim._seq

    def on_tick(now):
        return now + 1.0 if now < 9.0 else None

    cohort = CohortProcess(sim, on_tick)
    sim.run()
    assert cohort.ticks == 10
    assert sim._seq - before == 10
