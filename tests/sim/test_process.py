"""Unit tests for processes: suspension, return values, interrupts, waiting."""

import pytest

from repro.sim import Interrupt, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "done"

    assert sim.run_process(proc()) == "done"
    assert sim.now == 3.0


def test_process_receives_timeout_value():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="tick")
        return got

    assert sim.run_process(proc()) == "tick"


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value

    assert sim.run_process(parent()) == 42
    assert sim.now == 5.0


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()

    def proc():
        ev = sim.timeout(1.0, value="x")
        yield sim.timeout(2.0)  # ev fires (and is processed) at t=1
        got = yield ev
        return (got, sim.now)

    assert sim.run_process(proc()) == ("x", 2.0)


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught child failed"


def test_unhandled_process_exception_raises_at_kernel():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [(3.0, "wake up")]


def test_interrupted_process_can_keep_running():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        return sim.now

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        proc.interrupt()

    sim.process(interrupter())
    sim.run()
    assert proc.ok and proc.value == 4.0


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_timeout_does_not_resume_twice():
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
        yield sim.timeout(10.0)
        resumes.append("second sleep done")

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt()

    sim.process(interrupter())
    sim.run()
    # The original t=5 timeout must NOT resume the process mid-second-sleep.
    assert resumes == ["interrupt", "second sleep done"]
    assert sim.now == 12.0


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        sim.run()


def test_cross_simulator_event_rejected():
    sim1, sim2 = Simulator(), Simulator()

    def proc():
        yield sim2.timeout(1.0)

    sim1.process(proc())
    with pytest.raises(RuntimeError, match="another simulator"):
        sim1.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_run_process_detects_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(RuntimeError, match="did not finish"):
        sim.run_process(stuck())


def test_active_process_visible_during_resume():
    sim = Simulator()
    seen = []

    def proc():
        seen.append(sim.active_process)
        yield sim.timeout(1.0)
        seen.append(sim.active_process)

    p = sim.process(proc())
    sim.run()
    assert seen == [p, p]
    assert sim.active_process is None
