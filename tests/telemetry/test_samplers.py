"""Resource samplers vs the paper's VmStat methodology."""

import pytest

from repro.cluster import HydraCluster, VmStat
from repro.sim import Simulator
from repro.sim.resources import Container, Resource, Store
from repro.telemetry import Telemetry
from repro.telemetry.samplers import ResourceSampler


def _busy_workload(sim, node, until=20.0):
    def work():
        while sim.now < until:
            yield from node.execute(0.3)  # 0.3 s CPU
            yield sim.timeout(0.7)  # then idle

    sim.process(work(), name="workload")


def test_sampler_matches_vmstat_summary():
    sim = Simulator(seed=7)
    cluster = HydraCluster(sim)
    node = cluster.node("hydra1")
    vm = VmStat(sim, node, interval=1.0)
    sampler = ResourceSampler(sim, node, interval=1.0)
    _busy_workload(sim, node)
    sim.run(until=20.0)
    vm.stop()
    sampler.stop()

    ours = sampler.summary(warmup=2.0)
    theirs = vm.summary(warmup=2.0)
    assert ours.samples == theirs.samples
    assert ours.mean_cpu_idle_percent == pytest.approx(
        theirs.mean_cpu_idle_percent
    )
    assert ours.memory_consumption_bytes == pytest.approx(
        theirs.memory_consumption_bytes
    )
    # ~30 % CPU is burnt, so idle sits near 70 %.
    assert 50.0 < ours.mean_cpu_idle_percent < 90.0


def test_sampler_is_passive_under_workload():
    """Event timings of the workload are unchanged by an attached sampler."""

    def run(with_sampler):
        sim = Simulator(seed=7)
        cluster = HydraCluster(sim)
        node = cluster.node("hydra1")
        if with_sampler:
            ResourceSampler(sim, node, interval=0.25)
        finish_times = []

        def work():
            for _ in range(30):
                yield from node.execute(0.05)
                yield sim.timeout(0.1)
                finish_times.append(sim.now)

        sim.process(work(), name="workload")
        sim.run(until=10.0)
        return finish_times

    assert run(False) == run(True)


def test_sampler_feeds_registry_and_resource_snapshots():
    sim = Simulator(seed=7)
    cluster = HydraCluster(sim)
    node = cluster.node("hydra1")
    store = Store(sim, capacity=10)
    resource = Resource(sim, capacity=2)
    level = Container(sim, capacity=100.0, init=40.0)

    tel = Telemetry("test")
    tel.sample_node(
        sim,
        node,
        middleware="plog",
        interval=1.0,
        resources={"queue": store, "cpu": resource, "heap": level},
    )
    _busy_workload(sim, node, until=5.0)
    sim.run(until=5.0)

    idle = tel.metrics.gauge("plog", "hydra1", "cpu_idle_percent")
    assert idle.n == 5
    assert 0.0 <= idle.mean <= 100.0
    assert tel.metrics.gauge("plog", "hydra1", "memory_used_bytes").n == 5
    assert tel.metrics.gauge("plog", "hydra1", "queue.depth").value == 0
    assert tel.metrics.gauge("plog", "hydra1", "cpu.in_use").value == 0
    assert tel.metrics.gauge("plog", "hydra1", "heap.level").value == 40.0


def test_snapshot_surfaces():
    sim = Simulator(seed=1)
    store = Store(sim, capacity=4)
    assert store.snapshot() == {
        "depth": 0, "getters_waiting": 0, "putters_waiting": 0
    }
    resource = Resource(sim, capacity=3)
    assert resource.snapshot() == {"in_use": 0, "capacity": 3, "waiters": 0}
    container = Container(sim, capacity=10.0, init=2.5)
    snap = container.snapshot()
    assert snap["level"] == 2.5


def test_sampler_rejects_bad_interval_and_empty_summary():
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    node = cluster.node("hydra1")
    with pytest.raises(ValueError):
        ResourceSampler(sim, node, interval=0.0)
    sampler = ResourceSampler(sim, node, interval=1.0)
    summary = sampler.summary()  # no samples yet
    assert summary.samples == 0
    assert summary.mean_cpu_idle_percent == 100.0
