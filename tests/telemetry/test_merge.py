"""Instrument merging and the export/merge fan-out round trip."""

import math
import pickle

import numpy as np
import pytest

from repro.core.records import RecordBook
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    P2Quantile,
    Telemetry,
    export_telemetry,
    merge_telemetry,
)
from repro.telemetry.merge import ImportedSampler
from repro.telemetry.samplers import ResourceSample


# ---------------------------------------------------------------- counters

def test_counter_merge_is_exact():
    a, b = Counter(), Counter()
    a.inc(3)
    b.inc(39)
    a.merge(b)
    assert a.value == 42


def test_gauge_merge_combines_extremes_and_mean():
    a, b = Gauge(), Gauge()
    for v in (2.0, 4.0):
        a.set(v)
    for v in (1.0, 9.0):
        b.set(v)
    a.merge(b)
    assert a.n == 4
    assert a.min == 1.0
    assert a.max == 9.0
    assert a.mean == pytest.approx(4.0)
    assert a.value == 9.0  # merged-in side counts as later


def test_gauge_merge_empty_other_is_noop():
    a, b = Gauge(), Gauge()
    a.set(5.0)
    a.merge(b)
    assert (a.n, a.value, a.min, a.max) == (1, 5.0, 5.0, 5.0)


# -------------------------------------------------------------- histograms

def _split_merge(values, split):
    whole = Histogram()
    for v in values:
        whole.observe(v)
    left, right = Histogram(), Histogram()
    for v in values[:split]:
        left.observe(v)
    for v in values[split:]:
        right.observe(v)
    left.merge(right)
    return whole, left


def test_histogram_merge_buckets_exact():
    rng = np.random.default_rng(7)
    values = list(rng.lognormal(mean=2.0, sigma=1.0, size=400))
    whole, merged = _split_merge(values, 173)
    assert merged.n == whole.n
    assert merged.counts == whole.counts
    assert merged.total == pytest.approx(whole.total)
    assert merged.min == whole.min
    assert merged.max == whole.max
    # Exact bucket counts mean exact bucketed quantiles.
    for q in (0.5, 0.9, 0.99):
        assert merged.quantile(q) == whole.quantile(q)


def test_histogram_merge_p2_quantiles_close_to_truth():
    rng = np.random.default_rng(21)
    values = list(rng.exponential(10.0, size=2000))
    _, merged = _split_merge(values, 900)
    for q in (0.5, 0.9, 0.95):
        truth = float(np.percentile(values, q * 100))
        assert merged.quantile_p2(q) == pytest.approx(truth, rel=0.25)


def test_histogram_merge_rejects_mismatched_buckets():
    a = Histogram(buckets=(1.0, 2.0))
    b = Histogram(buckets=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_p2_merge_exact_when_either_side_tiny():
    # Merging a raw-sample side replays its observations, so the result is
    # bit-identical to one estimator that saw the same stream in order.
    a, b = P2Quantile(0.5), P2Quantile(0.5)
    for v in (1.0, 2.0, 3.0):
        a.observe(v)
    for v in (4.0, 5.0, 6.0, 7.0):
        b.observe(v)
    a.merge(b)
    reference = P2Quantile(0.5)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
        reference.observe(v)
    assert a.n == reference.n == 7
    assert a.value == reference.value
    assert a._heights == reference._heights
    assert a._pos == reference._pos

    # Tiny self, marker-collapsed other: adopt-and-replay, still defined.
    c = P2Quantile(0.5)
    c.observe(100.0)
    c.merge(reference)
    assert c.n == 8
    assert not math.isnan(c.value)


def test_p2_merge_empty_and_mismatched():
    a, b = P2Quantile(0.9), P2Quantile(0.9)
    a.observe(1.0)
    a.merge(b)  # empty other: no-op
    assert a.n == 1
    with pytest.raises(ValueError):
        a.merge(P2Quantile(0.5))


def test_p2_merge_marker_invariants_hold():
    rng = np.random.default_rng(3)
    a, b = P2Quantile(0.95), P2Quantile(0.95)
    for v in rng.normal(50.0, 5.0, size=200):
        a.observe(float(v))
    for v in rng.normal(70.0, 5.0, size=300):
        b.observe(float(v))
    a.merge(b)
    assert a.n == 500
    assert a._heights == sorted(a._heights)
    assert a._pos[0] == 1.0
    assert a._pos[-1] == 500.0
    assert all(a._pos[i] < a._pos[i + 1] for i in range(4))
    # Future observations keep working on the merged state.
    for v in rng.normal(60.0, 5.0, size=200):
        a.observe(float(v))
    assert a.n == 700
    assert not math.isnan(a.value)


# ---------------------------------------------------------- export / merge

def _worker_session():
    """A tiny 'worker-side' session: one observed book + assorted metrics."""
    telemetry = Telemetry("worker")
    book = RecordBook()
    for i in range(3):
        record = book.new_record(1, i, float(i))
        record.t_after_send = float(i) + 0.001
        record.t_arrived = float(i) + 0.002
        record.t_received = float(i) + 0.003
        telemetry.mark(record, "broker_in", float(i) + 0.0015, "plog", "b1")
    telemetry.fault_window("packet_loss", 0.5, 1.5, "lan")
    telemetry.observe_run(book, middleware="plog", label="tiny run")
    telemetry.metrics.gauge("plog", "b1", "depth").set(4.0)
    telemetry.samplers.append(
        ImportedSampler(
            node="hydra1",
            middleware="plog",
            interval=1.0,
            samples=[ResourceSample(1.0, 0.75, 1e6), ResourceSample(2.0, 0.5, 3e6)],
        )
    )
    return telemetry, book


def test_export_merge_round_trip_rebinds_spans():
    telemetry, book = _worker_session()
    payload = pickle.dumps(
        (book, export_telemetry(telemetry, books=[book]))
    )
    new_book, export = pickle.loads(payload)  # fresh record identities

    parent = Telemetry("parent")
    merge_telemetry(parent, export, books=[new_book])

    assert len(parent.tracer.spans) == 3
    spans = parent.spans_for_book(new_book)
    assert len(spans) == 3
    assert spans[0].phases["broker_in"] == pytest.approx(0.0015)
    assert [s.seq for s in spans] == [0, 1, 2]
    assert parent.metrics.counter("plog", "harness", "messages_delivered").value == 3
    assert parent.metrics.gauge("plog", "b1", "depth").value == 4.0
    assert [r["label"] for r in parent.runs] == ["tiny run"]
    assert len(parent.fault_windows) == 1
    assert parent.fault_windows[0].kind == "packet_loss"
    sampler = parent.samplers[0]
    assert sampler.node.name == "hydra1"
    summary = sampler.summary()
    assert summary.mean_cpu_idle_percent == pytest.approx(62.5)
    assert summary.memory_consumption_bytes == pytest.approx(2e6)


def test_merge_accumulates_across_workers():
    parent = Telemetry("parent")
    books = []
    for _ in range(2):
        telemetry, book = _worker_session()
        book2, export = pickle.loads(
            pickle.dumps((book, export_telemetry(telemetry, books=[book])))
        )
        merge_telemetry(parent, export, books=[book2])
        books.append(book2)
    assert len(parent.tracer.spans) == 6
    assert parent.metrics.counter("plog", "harness", "messages_sent").value == 6
    rtt = parent.metrics.histogram("plog", "harness", "rtt_ms")
    assert rtt.n == 6
    for book in books:
        assert len(parent.spans_for_book(book)) == 3


def test_merge_rejects_unknown_version_and_book_mismatch():
    telemetry, book = _worker_session()
    export = export_telemetry(telemetry, books=[book])
    with pytest.raises(ValueError):
        merge_telemetry(Telemetry("p"), {**export, "version": 99}, books=[book])
    with pytest.raises(ValueError):
        merge_telemetry(Telemetry("p"), export, books=[])
