"""Counters, gauges and the two streaming quantile estimators.

The accuracy tests pit both estimators against ``numpy.percentile`` on
adversarial distributions:

* **bucketed**: relative error is bounded by ``factor - 1`` (~19 % at the
  default ratio) whenever the value lies inside the bucket range — the
  documented bound, asserted on every distribution including the one that
  breaks P²;
* **P²**: no hard bound, but empirically within a few percent on smooth and
  heavy-tailed inputs; its *documented failure mode* is the median of an
  extremely separated bimodal (parabolic interpolation strands the middle
  marker in the inter-mode gap), which is exactly why every histogram keeps
  the bucketed estimator alongside it.
"""

import math

import numpy as np
import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKET_FACTOR,
    Counter,
    Gauge,
    Histogram,
    MetricKey,
    MetricsRegistry,
    P2Quantile,
    geometric_buckets,
)

QUANTILES = (0.50, 0.90, 0.95, 0.99)


def _bimodal(rng: np.random.Generator) -> np.ndarray:
    """Two well-separated modes (~5 ms and ~500 ms), 60/40 mix."""
    return np.concatenate(
        [rng.normal(5.0, 0.5, 30_000), rng.normal(500.0, 40.0, 20_000)]
    ).clip(0.02)


def _heavy_tail(rng: np.random.Generator) -> np.ndarray:
    """Pareto(α=1.5): infinite variance, the worst case for fixed buckets."""
    return (rng.pareto(1.5, 50_000) + 1.0) * 3.0


def _lognormal(rng: np.random.Generator) -> np.ndarray:
    return rng.lognormal(3.0, 1.2, 50_000)


DISTRIBUTIONS = {
    "bimodal": _bimodal,
    "heavy_tail": _heavy_tail,
    "lognormal": _lognormal,
}


def _fill(xs: np.ndarray) -> Histogram:
    h = Histogram(quantiles=QUANTILES)
    for x in xs:
        h.observe(float(x))
    return h


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("q", QUANTILES)
def test_bucketed_quantile_within_documented_bound(name, q):
    xs = DISTRIBUTIONS[name](np.random.default_rng(42))
    h = _fill(xs)
    exact = float(np.percentile(xs, q * 100.0))
    estimate = h.quantile(q)
    bound = DEFAULT_BUCKET_FACTOR - 1.0  # ~19 % relative
    assert abs(estimate - exact) / exact <= bound


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("q", QUANTILES)
def test_p2_quantile_accuracy(name, q):
    xs = DISTRIBUTIONS[name](np.random.default_rng(42))
    h = _fill(xs)
    exact = float(np.percentile(xs, q * 100.0))
    estimate = h.quantile_p2(q)
    if name == "bimodal" and q == 0.50:
        # Documented P² failure: the median marker strands in the gap
        # between modes.  The estimate is wildly off — but the bucketed
        # estimator (asserted above) covers this case, which is why both
        # estimators ship in every histogram.
        assert abs(estimate - exact) / exact > 1.0
        return
    assert abs(estimate - exact) / exact <= 0.10


def test_p2_exact_below_five_samples():
    xs = [7.0, 1.0, 3.0]
    est = P2Quantile(0.5)
    for x in xs:
        est.observe(x)
    assert est.value == pytest.approx(np.percentile(xs, 50))
    assert math.isnan(P2Quantile(0.5).value)


def test_p2_rejects_degenerate_quantiles():
    for q in (0.0, 1.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            P2Quantile(q)


def test_geometric_buckets_cover_range_and_validate():
    bounds = geometric_buckets(1e-2, 1e5)
    assert bounds[0] == 1e-2
    assert bounds[-1] >= 1e5
    ratios = [b / a for a, b in zip(bounds, bounds[1:])]
    assert all(r == pytest.approx(DEFAULT_BUCKET_FACTOR) for r in ratios)
    with pytest.raises(ValueError):
        geometric_buckets(0.0, 1.0)
    with pytest.raises(ValueError):
        geometric_buckets(1.0, 1.0)
    with pytest.raises(ValueError):
        geometric_buckets(1.0, 2.0, factor=1.0)


def test_histogram_edge_cases():
    h = Histogram(buckets=(1.0, 2.0, 4.0))
    assert math.isnan(h.quantile(0.5))
    for x in (0.5, 1.5, 3.0, 100.0):  # 100.0 lands in the overflow bucket
        h.observe(x)
    assert h.n == 4
    assert h.counts[-1] == 1
    assert h.quantile(1.0) == 100.0
    assert h.min == 0.5 and h.max == 100.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram(buckets=(2.0, 1.0))
    d = h.to_dict()
    assert d["n"] == 4
    assert set(d["quantiles"]) == set(d["bucketed_quantiles"])


def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = Gauge()
    assert g.to_dict()["min"] == 0.0  # empty gauge renders zeros
    for v in (3.0, 1.0, 2.0):
        g.set(v)
    assert g.value == 2.0 and g.min == 1.0 and g.max == 3.0
    assert g.mean == pytest.approx(2.0)


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    c = reg.counter("plog", "broker1", "produces")
    assert reg.counter("plog", "broker1", "produces") is c
    with pytest.raises(TypeError):
        reg.gauge("plog", "broker1", "produces")
    with pytest.raises(TypeError):
        reg.histogram("plog", "broker1", "produces")
    reg.gauge("narada", "broker1", "heap")
    reg.histogram("rgma", "harness", "rtt_ms")
    assert len(reg) == 3
    keys = [str(k) for k, _ in reg]
    assert keys == sorted(keys)  # deterministic iteration order
    assert str(MetricKey("a", "b", "c")) == "a/b/c"
    d = reg.to_dict()
    assert d["plog/broker1/produces"]["kind"] == "counter"
    assert d["narada/broker1/heap"]["kind"] == "gauge"
    assert d["rgma/harness/rtt_ms"]["kind"] == "histogram"


# --------------------------------------------------------------- add_many

def test_add_many_matches_observe_loop_exactly():
    """Batch feeding must leave n/total/min/max and every bucket count
    exactly as the equivalent observe() loop would — bucketed quantiles
    and merge() then agree by construction."""
    rng = np.random.default_rng(5)
    values = np.concatenate([
        rng.lognormal(1.0, 1.5, 4000),
        [0.0, 1e-9, 1e12],  # underflow edge, tiny, overflow bucket
        np.array([1.0, 1.0, 1.0]),  # exact bound duplicates
    ])
    batched = Histogram()
    batched.add_many(values)
    looped = Histogram()
    for v in values:
        looped.observe(float(v))
    assert batched.n == looped.n
    assert batched.total == pytest.approx(looped.total, rel=1e-12)
    assert batched.min == looped.min
    assert batched.max == looped.max
    assert batched.counts == looped.counts
    for q in (0.5, 0.95, 0.99):
        assert batched.quantile(q) == looped.quantile(q)


def test_add_many_exact_bucket_boundary_values():
    """searchsorted(side='left') must agree with _bucket_index's binary
    search on values sitting exactly on a bucket bound."""
    h_batch = Histogram(buckets=(1.0, 2.0, 4.0))
    h_loop = Histogram(buckets=(1.0, 2.0, 4.0))
    vals = [1.0, 2.0, 4.0, 0.5, 3.0, 5.0]
    h_batch.add_many(vals)
    for v in vals:
        h_loop.observe(v)
    assert h_batch.counts == h_loop.counts == [2, 1, 2, 1]


def test_add_many_empty_and_incremental():
    h = Histogram()
    h.add_many([])
    assert h.n == 0
    h.add_many([1.0, 2.0])
    h.add_many(np.array([3.0]))
    assert h.n == 3
    assert h.total == pytest.approx(6.0)
    assert (h.min, h.max) == (1.0, 3.0)


def test_add_many_p2_estimate_stays_reasonable():
    """P² sees a strided subsample under add_many: approximate, not junk."""
    rng = np.random.default_rng(11)
    values = rng.exponential(10.0, 50_000)
    h = Histogram()
    h.add_many(values)
    true_p50 = float(np.quantile(values, 0.5))
    assert h.quantile_p2(0.5) == pytest.approx(true_p50, rel=0.15)
