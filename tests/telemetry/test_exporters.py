"""JSONL trace round-trip, schema validation, tables and result bridge."""

import json
import math

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.records import RecordBook
from repro.telemetry import Telemetry
from repro.telemetry.exporters import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    TraceSchemaError,
    metrics_tables,
    to_experiment_result,
    validate_trace_file,
    validate_trace_span,
    write_metrics_json,
    write_trace_jsonl,
)


def _session() -> tuple[Telemetry, RecordBook]:
    """A hand-built session: 4 delivered messages + 1 lost, 1 fault window."""
    tel = Telemetry("unit")
    book = RecordBook()
    for i in range(4):
        r = book.new_record(gen_id=1, seq=i, t_before_send=float(i))
        r.t_after_send = i + 0.01
        r.t_arrived = i + 0.20
        r.t_received = i + 0.25
        tel.mark(r, "broker_in", i + 0.05, "narada", "broker1")
        tel.mark(r, "broker_out", i + 0.15, "narada", "broker1")
    book.new_record(gen_id=1, seq=99, t_before_send=1.5)  # never delivered
    tel.fault_window("packet_loss", 1.0, 2.0, "lan")
    tel.observe_run(book, middleware="narada", label="unit-run")
    return tel, book


# ------------------------------------------------------------- JSONL writing
def test_trace_jsonl_round_trip(tmp_path):
    tel, _ = _session()
    path = tmp_path / "trace.jsonl"
    n = write_trace_jsonl(tel, str(path))
    assert n == 5

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    header, windows = lines[0], [o for o in lines if o["kind"] == "fault_window"]
    assert header["kind"] == "header"
    assert header["schema"] == TRACE_SCHEMA
    assert header["version"] == TRACE_VERSION
    assert header["label"] == "unit"
    assert header["span_count"] == 5
    assert header["runs"][0]["label"] == "unit-run"
    assert len(windows) == 1 and windows[0]["target"] == "lan"
    assert windows[0]["fault_kind"] == "packet_loss"

    summary = validate_trace_file(str(path))
    assert summary == {
        "spans": 5,
        "complete": 4,
        "fault_windows": 1,
        "middlewares": ["narada"],
    }
    # The span overlapping the window carries its annotation on disk.
    annotated = [o for o in lines if o.get("annotations")]
    assert annotated and all(
        o["annotations"] == ["packet_loss@lan"] for o in annotated
    )


def test_header_only_trace_is_valid(tmp_path):
    tel = Telemetry("empty")
    path = tmp_path / "trace.jsonl"
    assert write_trace_jsonl(tel, str(path)) == 0
    summary = validate_trace_file(str(path))
    assert summary["spans"] == 0 and summary["middlewares"] == []


# ---------------------------------------------------------------- validation
def _write_lines(tmp_path, *objs):
    path = tmp_path / "bad.jsonl"
    path.write_text("\n".join(objs) + "\n")
    return str(path)


HEADER = json.dumps(
    {"kind": "header", "schema": TRACE_SCHEMA, "version": TRACE_VERSION}
)


def test_validate_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(TraceSchemaError, match="no header"):
        validate_trace_file(str(path))


def test_validate_rejects_missing_header(tmp_path):
    span = json.dumps(
        {"kind": "span", "middleware": "m", "gen_id": 1, "seq": 0,
         "phases": {"created": 0.0}}
    )
    with pytest.raises(TraceSchemaError, match="header"):
        validate_trace_file(_write_lines(tmp_path, span))


def test_validate_rejects_wrong_schema_or_version(tmp_path):
    bad_schema = json.dumps(
        {"kind": "header", "schema": "other", "version": TRACE_VERSION}
    )
    with pytest.raises(TraceSchemaError, match="schema"):
        validate_trace_file(_write_lines(tmp_path, bad_schema))
    bad_version = json.dumps(
        {"kind": "header", "schema": TRACE_SCHEMA, "version": 99}
    )
    with pytest.raises(TraceSchemaError, match="version"):
        validate_trace_file(_write_lines(tmp_path, bad_version))


def test_validate_rejects_bad_json_line(tmp_path):
    with pytest.raises(TraceSchemaError, match="not JSON"):
        validate_trace_file(_write_lines(tmp_path, HEADER, "{not json"))


def test_validate_rejects_unknown_kind(tmp_path):
    with pytest.raises(TraceSchemaError, match="unknown line kind"):
        validate_trace_file(
            _write_lines(tmp_path, HEADER, json.dumps({"kind": "mystery"}))
        )


def test_validate_rejects_inverted_fault_window(tmp_path):
    window = json.dumps(
        {"kind": "fault_window", "fault_kind": "packet_loss",
         "start": 5.0, "end": 1.0, "target": "lan"}
    )
    with pytest.raises(TraceSchemaError, match="start <= end"):
        validate_trace_file(_write_lines(tmp_path, HEADER, window))


def test_validate_rejects_window_without_fault_kind(tmp_path):
    window = json.dumps(
        {"kind": "fault_window", "start": 1.0, "end": 2.0, "target": "lan"}
    )
    with pytest.raises(TraceSchemaError, match="fault_kind"):
        validate_trace_file(_write_lines(tmp_path, HEADER, window))


def test_validate_span_schema_errors():
    ok = {
        "middleware": "m", "gen_id": 1, "seq": 0,
        "phases": {"created": 0.0, "arrived": 0.5, "delivered": 0.6},
    }
    validate_trace_span(ok)

    with pytest.raises(TraceSchemaError, match="middleware"):
        validate_trace_span({**ok, "middleware": ""})
    with pytest.raises(TraceSchemaError, match="gen_id"):
        validate_trace_span({**ok, "gen_id": "one"})
    with pytest.raises(TraceSchemaError, match="non-empty"):
        validate_trace_span({**ok, "phases": {}})
    with pytest.raises(TraceSchemaError, match="unknown phase"):
        validate_trace_span({**ok, "phases": {"teleported": 1.0}})
    with pytest.raises(TraceSchemaError, match="finite"):
        validate_trace_span({**ok, "phases": {"created": math.nan}})
    # Causal violation: delivery before arrival.
    with pytest.raises(TraceSchemaError, match="'arrived'.*after"):
        validate_trace_span(
            {**ok, "phases": {"created": 0.0, "arrived": 2.0, "delivered": 1.0}}
        )
    with pytest.raises(TraceSchemaError, match="'created'.*after"):
        validate_trace_span(
            {**ok, "phases": {"created": 3.0, "arrived": 2.0}}
        )
    # A publish ack landing after delivery is legal (documented race).
    validate_trace_span(
        {**ok, "phases": {"created": 0.0, "published": 0.9,
                          "arrived": 0.5, "delivered": 0.6}}
    )


# ------------------------------------------------------------------ exports
def test_metrics_json(tmp_path):
    tel, _ = _session()
    path = tmp_path / "metrics.json"
    write_metrics_json(tel, str(path))
    doc = json.loads(path.read_text())
    assert doc["label"] == "unit"
    assert doc["metrics"]["narada/harness/messages_sent"]["value"] == 5
    assert doc["metrics"]["narada/harness/messages_delivered"]["value"] == 4
    assert doc["metrics"]["narada/harness/rtt_ms"]["kind"] == "histogram"
    assert doc["runs"][0]["label"] == "unit-run"
    assert doc["samplers"] == []


def test_metrics_tables_content():
    tel, _ = _session()
    text = metrics_tables(tel)
    assert "== telemetry: unit ==" in text
    assert "narada" in text
    assert "narada/broker1/span.broker_in" in text
    assert "narada/harness/rtt_ms" in text
    assert "PRT (ms)" in text and "p99 (bucket)" in text


def test_to_experiment_result_bridge():
    tel, book = _session()
    result = to_experiment_result(tel, "unit_exp")
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == "unit_exp"
    headers, rows = result.table
    assert headers[0] == "middleware"
    assert rows[0][0] == "narada"
    assert rows[0][1] == 5 and rows[0][2] == 4  # spans, delivered

    # Series are the Fig 15 cumulative phase boundaries: 0 .. RTT.
    spans = [s for s in tel.spans_for_book(book) if s.complete]
    rtt_ms = sum(s.rtt for s in spans) / len(spans) * 1e3
    points = result.series["narada"]
    assert points[0].y == 0.0
    assert points[-1].y == pytest.approx(rtt_ms)
    assert any("fault windows" in note for note in result.notes)
    assert result.meta["fault_windows"][0]["kind"] == "packet_loss"
