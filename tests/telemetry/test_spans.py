"""Spans: middleware hooks, record-book parity, zero behavioural impact.

The two load-bearing properties of the tentpole:

* **parity** — span-based phase breakdowns agree with the legacy
  :func:`repro.core.metrics.decompose` over the same record book, because
  endpoint phases *are* the record's timestamps;
* **zero impact** — running the same experiment with telemetry active
  yields bit-identical measured RTTs (marks and samplers are passive).
"""

import numpy as np
import pytest

from repro.core import decompose
from repro.harness.narada_experiments import narada_run
from repro.harness.plog_experiments import plog_run
from repro.harness.rgma_experiments import rgma_run
from repro.harness.scale import Scale
from repro.telemetry import Telemetry, phase_breakdown
from repro.telemetry.context import activate, current, deactivate, session
from repro.telemetry.spans import Span, Tracer

SMOKE = Scale.smoke()


# ---------------------------------------------------------------- unit level
def test_context_stack():
    assert current() is None
    a, b = Telemetry("a"), Telemetry("b")
    activate(a)
    activate(b)
    assert current() is b
    with pytest.raises(RuntimeError):
        deactivate(a)  # not innermost
    deactivate(b)
    assert current() is a
    deactivate(a)
    assert current() is None
    with session(a):
        assert current() is a
    assert current() is None


def test_tracer_first_mark_wins_and_counts_hops():
    tracer = Tracer()
    record = object()
    tracer.mark(record, "broker_in", 1.0, "ingress")
    tracer.mark(record, "broker_in", 2.0, "hub")  # forwarded: ignored
    tracer.mark(record, "broker_out", 3.0, "hub")
    marks = tracer._marks[id(record)]
    assert marks["broker_in"] == (1.0, "ingress")
    assert tracer._hops[id(record)] == 3


def test_span_properties():
    span = Span(middleware="m", gen_id=1, seq=2)
    assert not span.complete
    span.phases.update(
        {"created": 1.0, "published": 1.1, "arrived": 1.4, "delivered": 1.5}
    )
    assert span.complete
    assert span.prt == pytest.approx(0.1)
    assert span.pt == pytest.approx(0.3)
    assert span.srt == pytest.approx(0.1)
    assert span.rtt == pytest.approx(0.5)
    d = span.to_dict()
    assert list(d["phases"]) == ["created", "published", "arrived", "delivered"]


# ------------------------------------------------------------ harness parity
def test_narada_spans_match_decompose_and_rtts_bit_identical():
    baseline = narada_run(60, scale=SMOKE, seed=3)

    tel = Telemetry("test")
    with session(tel):
        traced = narada_run(60, scale=SMOKE, seed=3)

    # Zero behavioural impact: same seed, bit-identical measured RTTs.
    assert np.array_equal(baseline.rtts, traced.rtts)
    assert baseline.mean_rtt_ms == traced.mean_rtt_ms

    spans = tel.spans_for_book(traced.book)
    assert len(spans) == len(traced.book.records)
    legacy = decompose(traced.book, since=traced.measure_since)
    via_spans = phase_breakdown(spans, since=traced.measure_since)
    assert via_spans.prt_ms == pytest.approx(legacy.prt_ms, rel=1e-12)
    assert via_spans.pt_ms == pytest.approx(legacy.pt_ms, rel=1e-12)
    assert via_spans.srt_ms == pytest.approx(legacy.srt_ms, rel=1e-12)

    # Interior phases came from the live broker hooks.
    delivered = [s for s in spans if s.complete]
    assert delivered
    assert all("broker_in" in s.phases for s in delivered)
    assert all("broker_out" in s.phases for s in delivered)
    assert all(s.components["broker_in"] == "broker1" for s in delivered)
    assert all(
        s.phases["created"]
        <= s.phases["broker_in"]
        <= s.phases["broker_out"]
        <= s.phases["delivered"]
        for s in delivered
    )


def test_narada_dbn_broker_in_is_ingress_broker():
    tel = Telemetry("test")
    with session(tel):
        run = narada_run(60, dbn=True, scale=SMOKE, seed=3)
    spans = [s for s in tel.spans_for_book(run.book) if s.complete]
    assert spans
    # Publishers connect to leaf brokers; the hub (broker1) subscribes.
    assert all(s.components["broker_in"] != "broker1" for s in spans)
    assert all(s.components["broker_out"] == "broker1" for s in spans)
    # Forwarding across the BNM means more marks than distinct phases.
    assert any(s.hops > 2 for s in spans)


def test_rgma_spans_carry_servlet_phases():
    tel = Telemetry("test")
    with session(tel):
        run = rgma_run(20, scale=SMOKE, seed=3)
    spans = [s for s in tel.spans_for_book(run.book) if s.complete]
    assert spans
    assert all(s.components["broker_in"].startswith("pp.") for s in spans)
    assert all(s.components["broker_out"].startswith("cs.") for s in spans)
    assert all(s.components["delivered"] == "subscriber" for s in spans)


def test_plog_spans_and_bit_identical_rtts():
    baseline = plog_run(40, scale=SMOKE, seed=3)
    tel = Telemetry("test")
    with session(tel):
        traced = plog_run(40, scale=SMOKE, seed=3)
    assert np.array_equal(baseline.rtts, traced.rtts)
    spans = [s for s in tel.spans_for_book(traced.book) if s.complete]
    assert spans
    # The append lands before the produce ack returns: broker_in precedes
    # the 'published' stamp (the documented interior-phase ordering).
    assert all(s.phases["broker_in"] <= s.phases["published"] for s in spans)
    assert all("broker_out" in s.phases for s in spans)


def test_rgma_run_bit_identical_with_telemetry():
    baseline = rgma_run(20, scale=SMOKE, seed=3)
    tel = Telemetry("test")
    with session(tel):
        traced = rgma_run(20, scale=SMOKE, seed=3)
    assert np.array_equal(baseline.rtts, traced.rtts)


# ------------------------------------------------------------- fault windows
def test_fault_windows_annotate_only_their_own_run():
    from repro.faults import FaultPlan

    def plan(measure_since, duration):
        p = FaultPlan()
        p.packet_loss(measure_since, duration / 2, 0.3)
        return p

    tel = Telemetry("test")
    with session(tel):
        faulted = plog_run(40, scale=SMOKE, seed=3, fault_plan=plan)
        clean = plog_run(40, scale=SMOKE, seed=4)

    assert len(tel.fault_windows) == 1
    faulted_spans = tel.spans_for_book(faulted.book)
    clean_spans = tel.spans_for_book(clean.book)
    assert any(s.annotations for s in faulted_spans)
    # Windows are consumed per observe_run: the second (fault-free) run's
    # spans carry no annotations even though its clock overlaps the window.
    assert not any(s.annotations for s in clean_spans)
    label = tel.fault_windows[0].label
    assert all(a == label for s in faulted_spans for a in s.annotations)
    assert tel.runs[0]["fault_windows"] and not tel.runs[1]["fault_windows"]


def test_observe_run_metrics_rollup():
    tel = Telemetry("test")
    with session(tel):
        run = narada_run(60, scale=SMOKE, seed=3)
    sent = tel.metrics.counter("narada", "harness", "messages_sent").value
    delivered = tel.metrics.counter(
        "narada", "harness", "messages_delivered"
    ).value
    assert sent == run.sent
    assert delivered == run.received
    rtt = tel.metrics.histogram("narada", "harness", "rtt_ms")
    assert rtt.n == run.received
    assert rtt.mean == pytest.approx(run.mean_rtt_ms)
