"""Windowed quantiles: slicing, complement, parallel-merge determinism."""

import numpy as np
import pytest

from repro.telemetry import TimeWindow, WindowedQuantiles, complement_windows


def test_window_validates_and_contains():
    with pytest.raises(ValueError):
        TimeWindow("x", 10.0, 10.0)
    w = TimeWindow("burst", 10.0, 20.0)
    assert w.contains(10.0)
    assert w.contains(19.999)
    assert not w.contains(20.0)
    assert not w.contains(9.999)


def test_complement_tiles_the_measurement_window():
    bursts = [TimeWindow("burst", 10.0, 20.0), TimeWindow("burst", 30.0, 40.0)]
    steady = complement_windows(bursts, 0.0, 50.0, "steady")
    assert [(w.start, w.end) for w in steady] == [
        (0.0, 10.0), (20.0, 30.0), (40.0, 50.0),
    ]
    assert all(w.label == "steady" for w in steady)


def test_complement_clips_and_handles_overlaps():
    bursts = [
        TimeWindow("burst", -5.0, 12.0),
        TimeWindow("burst", 10.0, 25.0),
        TimeWindow("burst", 60.0, 70.0),  # outside entirely
    ]
    steady = complement_windows(bursts, 0.0, 50.0, "steady")
    assert [(w.start, w.end) for w in steady] == [(25.0, 50.0)]
    assert complement_windows([], 0.0, 10.0, "s")[0].start == 0.0


def test_observe_pools_same_label_and_slices_by_time():
    wq = WindowedQuantiles(
        [TimeWindow("burst", 0.0, 10.0), TimeWindow("burst", 20.0, 30.0),
         TimeWindow("steady", 10.0, 20.0)]
    )
    wq.observe(5.0, 1.0)
    wq.observe(25.0, 3.0)
    wq.observe(15.0, 2.0)
    wq.observe(99.0, 9.0)  # outside every window: dropped
    assert wq.count("burst") == 2
    assert wq.count("steady") == 1
    assert wq.quantile("burst", 50) == pytest.approx(2.0)
    assert np.isnan(WindowedQuantiles([TimeWindow("b", 0, 1)]).quantile("b", 99))


def test_parallel_merge_is_byte_identical_to_serial():
    """Slice per worker, merge in point order == slice the serial stream."""
    windows = [TimeWindow("burst", 10.0, 20.0), TimeWindow("steady", 0.0, 10.0)]
    rng = np.random.default_rng(7)
    points = [
        [(float(t), float(v)) for t, v in zip(rng.uniform(0, 20, 50), rng.normal(5, 1, 50))]
        for _ in range(4)
    ]

    serial = WindowedQuantiles(windows)
    for chunk in points:
        for t, v in chunk:
            serial.observe(t, v)

    workers = []
    for chunk in points:
        w = WindowedQuantiles(windows)
        for t, v in chunk:
            w.observe(t, v)
        workers.append(w)
    merged = WindowedQuantiles(windows)
    for w in workers:
        merged.merge(w)

    for label in ("burst", "steady"):
        assert merged.samples(label).tobytes() == serial.samples(label).tobytes()
        assert merged.quantile(label, 99) == serial.quantile(label, 99)


def test_merge_rejects_unknown_labels():
    a = WindowedQuantiles([TimeWindow("burst", 0.0, 1.0)])
    b = WindowedQuantiles([TimeWindow("other", 0.0, 1.0)])
    with pytest.raises(ValueError, match="labels"):
        a.merge(b)
