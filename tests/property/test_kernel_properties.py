"""Property-based tests for kernel, resources and metrics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import percentile_curve, within_threshold
from repro.sim import Simulator, Store
from repro.sim.resources import PriorityStore


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
def test_time_never_goes_backwards(delays):
    """Observed event times are non-decreasing regardless of schedule order."""
    sim = Simulator()
    observed = []
    for d in delays:
        ev = sim.timeout(d)
        ev.add_callback(lambda e: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.lists(st.integers(), min_size=0, max_size=40))
def test_store_preserves_order_and_content(items):
    """FIFO store: what goes in comes out, same order, nothing lost."""
    sim = Simulator()
    store = Store(sim)

    def producer():
        for item in items:
            yield store.put(item)

    out = []

    def consumer():
        for _ in items:
            value = yield store.get()
            out.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert out == items


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=40))
def test_priority_store_outputs_sorted(items):
    sim = Simulator()
    store = PriorityStore(sim)
    for i, item in enumerate(items):
        store.put_nowait((item, i))
    out = []

    def consumer():
        for _ in items:
            value = yield store.get()
            out.append(value[0])

    sim.run_process(consumer())
    assert out == sorted(items)


@given(
    st.lists(
        st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_percentile_curve_invariants(rtts):
    curve = percentile_curve(rtts)
    values = [v for _, v in curve]
    # Monotone in percentile; endpoints anchored to the data.
    assert values == sorted(values)
    assert values[-1] == pytest.approx(max(rtts) * 1e3)
    assert values[0] >= min(rtts) * 1e3 - 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=100),
    st.floats(min_value=0.0, max_value=10.0),
)
def test_within_threshold_matches_manual_count(rtts, threshold):
    frac = within_threshold(rtts, threshold)
    manual = sum(1 for r in rtts if r <= threshold) / len(rtts)
    assert frac == pytest.approx(manual)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_simulator_deterministic_for_any_seed(seed):
    """Two simulators with the same seed produce identical draw sequences."""
    a, b = Simulator(seed), Simulator(seed)
    for name in ("x", "y"):
        assert [a.rng.random(name) for _ in range(3)] == [
            b.rng.random(name) for _ in range(3)
        ]


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=8),
)
def test_fleet_block_assignment_partitions_ids(n, k):
    """node_index/id_range form a partition of [0, n)."""
    from repro.powergrid import FleetConfig

    config = FleetConfig(
        n_generators=n, client_nodes=tuple(f"n{i}" for i in range(k))
    )
    covered = []
    for j in range(k):
        lo, hi = config.id_range(j)
        for g in (lo, hi - 1):
            if lo < hi:
                assert config.node_index(g) == j
        covered.extend(range(lo, hi))
    assert covered == list(range(n))
