"""Property-based tests for the SQL subset (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.rgma.errors import RGMAException
from repro.rgma.sql import Insert, RowView, Select, parse_sql, render_insert

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
values = st.one_of(
    st.integers(min_value=-10**12, max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
        max_size=30,
    ),
    st.none(),
)


@given(st.dictionaries(identifiers, values, min_size=1, max_size=8))
def test_render_insert_parse_roundtrip(row):
    """render_insert produces SQL that parses back to the same row."""
    stmt = parse_sql(render_insert("t1", row))
    assert isinstance(stmt, Insert)
    assert stmt.table == "t1"
    parsed = dict(zip(stmt.columns, stmt.values))
    assert set(parsed) == set(row)
    for key, original in row.items():
        got = parsed[key]
        if isinstance(original, float):
            assert got == pytest.approx(original, rel=0, abs=0) or got == original
        else:
            assert got == original


@given(st.text(max_size=40))
def test_arbitrary_text_never_crashes_parser(text):
    """Garbage either parses or raises RGMAException — never anything else."""
    try:
        parse_sql(text)
    except RGMAException:
        pass


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
)
def test_where_range_predicate_equivalence(lo, hi):
    stmt = parse_sql(f"SELECT * FROM t WHERE genid >= {lo} AND genid < {hi}")
    assert isinstance(stmt, Select)
    for probe in (lo - 1, lo, (lo + hi) // 2, hi - 1, hi, hi + 1):
        if probe < 0:
            continue
        expected = lo <= probe < hi
        assert stmt.where.matches(RowView({"genid": probe})) == expected


@given(st.lists(identifiers, min_size=1, max_size=6, unique=True))
def test_select_column_list_roundtrip(cols):
    stmt = parse_sql(f"SELECT {', '.join(cols)} FROM t")
    assert stmt.columns == tuple(cols)
