"""Property-based invariants across the substrate models."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster import HydraCluster, Jvm, Node
from repro.jms.message import MapMessage
from repro.sim import Simulator


# ------------------------------------------------------------- message sizes
map_entries = st.lists(
    st.tuples(
        st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True),
        st.sampled_from(["int", "long", "float", "double", "string", "boolean"]),
    ),
    min_size=0,
    max_size=12,
    unique_by=lambda e: e[0],
)


def build_message(entries):
    m = MapMessage()
    for name, jms_type in entries:
        if jms_type == "int":
            m.set_int(name, 1)
        elif jms_type == "long":
            m.set_long(name, 1)
        elif jms_type == "float":
            m.set_float(name, 1.0)
        elif jms_type == "double":
            m.set_double(name, 1.0)
        elif jms_type == "boolean":
            m.set_boolean(name, True)
        else:
            m.set_string(name, "v" * 5)
    return m


@given(map_entries)
def test_wire_size_monotone_in_entries(entries):
    """Adding an entry never shrinks the wire size."""
    m = build_message(entries)
    size = m.wire_size()
    m.set_int("extra_entry", 1)
    assert m.wire_size() > size


@given(map_entries)
def test_copy_preserves_wire_size(entries):
    m = build_message(entries)
    m.set_property("id", 7)
    assert m.copy().wire_size() == m.wire_size()


# ----------------------------------------------------------------- JVM heap
alloc_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=10_000_000)),
    min_size=1,
    max_size=60,
)


@given(alloc_ops)
def test_jvm_heap_never_negative_and_bounded(ops):
    sim = Simulator()
    node = Node(sim, "n")
    jvm = Jvm(sim, node, "j", heap_bytes=512 * 1024 * 1024)
    from repro.cluster.jvm import OutOfMemoryError

    outstanding = 0.0
    for is_alloc, nbytes in ops:
        if jvm.dead:
            break
        if is_alloc:
            try:
                jvm.alloc(nbytes)
                outstanding += nbytes
            except OutOfMemoryError:
                break
        else:
            jvm.free(min(nbytes, outstanding))
            outstanding = max(0.0, outstanding - nbytes)
        assert 0.0 <= jvm.heap_used <= jvm.heap_bytes
        assert jvm.heap_high_water >= jvm.heap_used
        assert jvm.committed_bytes >= jvm.base_overhead_bytes


# -------------------------------------------------------------- LAN accounting
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["hydra1", "hydra2", "hydra3"]),
            st.sampled_from(["hydra1", "hydra2", "hydra3"]),
            st.integers(min_value=1, max_value=100_000),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_lan_reliable_transfers_all_complete(transfers):
    """Every reliable transfer produces exactly one delivery event that
    fires, with strictly positive latency, and tx frame counts match."""
    sim = Simulator(seed=5)
    cluster = HydraCluster(sim)
    events = []
    expected_tx = {"hydra1": 0, "hydra2": 0, "hydra3": 0}
    for src, dst, nbytes in transfers:
        ev = cluster.lan.transmit(src, dst, nbytes)
        assert ev is not None
        events.append(ev)
        if src != dst:
            expected_tx[src] += 1
    sim.run()
    assert all(ev.processed and ev.ok for ev in events)
    assert all(ev.value > 0 for ev in events)
    for host, count in expected_tx.items():
        assert cluster.lan.tx_link(host).stats.frames == count


@given(st.integers(min_value=1, max_value=5_000_000))
def test_lan_latency_increases_with_size(nbytes):
    sim = Simulator(seed=6)
    cluster = HydraCluster(sim)
    small = cluster.lan.transmit("hydra1", "hydra2", 10)
    sim.run()
    sim2 = Simulator(seed=6)
    cluster2 = HydraCluster(sim2)
    big = cluster2.lan.transmit("hydra1", "hydra2", 10 + nbytes)
    sim2.run()
    assert big.value > small.value
