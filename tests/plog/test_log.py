"""Tests for the segmented partition log (pure data structure)."""

import pytest

from repro.plog import PartitionLog


def rec(n, size=100.0):
    return [(f"k{i}", f"v{i}", size) for i in range(n)]


def test_append_assigns_contiguous_offsets():
    log = PartitionLog()
    first = log.append(rec(3))
    second = log.append(rec(2))
    assert first.base_offset == 0
    assert second.base_offset == 3
    assert log.end_offset == 5
    assert [r.offset for r in log.read(0, 10)] == [0, 1, 2, 3, 4]


def test_read_respects_offset_and_max():
    log = PartitionLog()
    log.append(rec(10))
    out = log.read(4, 3)
    assert [r.offset for r in out] == [4, 5, 6]
    assert log.read(10, 5) == []  # at the high-watermark
    assert log.read(3, 0) == []


def test_segment_rolling():
    log = PartitionLog(segment_max_bytes=250.0)
    log.append(rec(1))  # 100 bytes
    log.append(rec(1))
    log.append(rec(1))  # crosses 250 -> next append rolls
    log.append(rec(1))
    assert len(log.segments) >= 2
    # Reads still span segments transparently.
    assert [r.offset for r in log.read(0, 10)] == [0, 1, 2, 3]


def test_huge_batch_rolls_mid_batch():
    log = PartitionLog(segment_max_bytes=250.0)
    log.append(rec(10))  # 1000 bytes in one batch
    assert len(log.segments) > 2  # one batch cannot become one segment
    assert log.end_offset == 10


def test_retention_evicts_front_segments():
    log = PartitionLog(segment_max_bytes=200.0, retention_bytes=500.0)
    for _ in range(10):
        log.append(rec(1))
    assert log.total_bytes <= 500.0 + 200.0  # within one segment of the cap
    assert log.start_offset > 0
    assert log.end_offset == 10
    assert len(log) < 10


def test_eviction_reported_to_caller():
    log = PartitionLog(segment_max_bytes=100.0, retention_bytes=300.0)
    evicted = 0.0
    for _ in range(8):
        evicted += log.append(rec(1)).evicted_bytes
    # Heap bookkeeping must balance: appended == retained + evicted.
    appended = 8 * 100.0
    assert evicted + log.total_bytes == pytest.approx(appended)


def test_read_below_start_offset_clamps_to_oldest():
    log = PartitionLog(segment_max_bytes=100.0, retention_bytes=200.0)
    for _ in range(6):
        log.append(rec(1))
    assert log.start_offset > 0
    out = log.read(0, 3)  # a consumer that fell behind retention
    assert out[0].offset == log.start_offset


def test_record_overhead_counts_toward_sizes():
    log = PartitionLog(record_overhead_bytes=50.0)
    result = log.append(rec(2))
    assert result.appended_bytes == pytest.approx(2 * 150.0)
    assert log.total_bytes == pytest.approx(300.0)


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        PartitionLog(segment_max_bytes=0)
    with pytest.raises(ValueError):
        PartitionLog(retention_bytes=-1)
