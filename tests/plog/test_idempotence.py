"""Idempotent-producer state: retry absorption and failover hand-off."""

from repro.plog.idempotence import PartitionProducerState


def test_fresh_batch_is_not_a_duplicate():
    state = PartitionProducerState()
    assert state.duplicate("pid", 0, 10) is None
    state.record("pid", 0, 10, base_offset=0)
    assert state.duplicates == 0


def test_retried_batch_is_absorbed_with_original_offsets():
    state = PartitionProducerState()
    state.record("pid", 0, 10, base_offset=100)
    # The retry re-sends the identical batch; the broker answers with the
    # original append's offsets instead of appending again.
    reack = state.duplicate("pid", 0, 10)
    assert reack == (110, 100)  # (required hwm, base_offset)
    assert state.duplicates == 1


def test_partial_overlap_is_not_deduped():
    state = PartitionProducerState()
    state.record("pid", 0, 10, base_offset=0)
    # A batch extending past the recorded window is new data, not a retry.
    assert state.duplicate("pid", 5, 10) is None
    assert state.duplicate("pid", 10, 1) is None
    assert state.duplicates == 0


def test_empty_batch_is_never_a_duplicate():
    state = PartitionProducerState()
    state.record("pid", 0, 10, base_offset=0)
    assert state.duplicate("pid", 0, 0) is None


def test_producers_tracked_independently():
    state = PartitionProducerState()
    state.record("p1", 0, 5, base_offset=0)
    assert state.duplicate("p2", 0, 5) is None
    state.record("p2", 0, 5, base_offset=5)
    assert state.duplicate("p2", 0, 5) == (10, 5)
    assert state.duplicate("p1", 0, 5) == (5, 0)


def test_snapshot_round_trips_through_follower_merge():
    leader = PartitionProducerState()
    leader.record("pid", 0, 10, base_offset=0)
    leader.record("pid", 10, 10, base_offset=10)

    follower = PartitionProducerState()
    follower.merge_snapshot(leader.snapshot(), log_end=20)
    # Promoted follower recognises the producer's retry across failover.
    assert follower.duplicate("pid", 10, 10) == (20, 10)
    assert follower.index.next_expected("pid") == 20


def test_merge_is_gated_by_local_log_end():
    leader = PartitionProducerState()
    leader.record("pid", 0, 10, base_offset=0)
    snap = leader.snapshot()

    follower = PartitionProducerState()
    # The follower has replicated only 5 of the batch's 10 records: applying
    # the dedup entry now would absorb retries of records it does not hold.
    follower.merge_snapshot(snap, log_end=5)
    assert follower.duplicate("pid", 0, 10) is None
    assert follower.last_batch == {}
    # Next fetch round carries the snapshot again, now fully replicated.
    follower.merge_snapshot(snap, log_end=10)
    assert follower.duplicate("pid", 0, 10) == (10, 0)


def test_merge_keeps_newest_batch_per_producer():
    follower = PartitionProducerState()
    follower.record("pid", 20, 5, base_offset=40)
    stale = {"pid": (9, 0, 10, 0)}  # floor 9, batch (0, 10, 0)
    follower.merge_snapshot(stale, log_end=100)
    # The stale snapshot raises the floor but must not roll back last_batch.
    assert follower.last_batch["pid"] == (20, 5, 40)
    assert follower.index.seen("pid", 9)
