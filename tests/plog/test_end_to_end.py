"""End-to-end plog tests on the grid workload at test-sized loads."""

import pytest

from repro.cluster import HydraCluster
from repro.harness.plog_experiments import plog_run
from repro.harness.scale import Scale
from repro.plog import PlogConfig, PlogDeployment
from repro.sim import Simulator
from repro.transport import TcpTransport

SMOKE = Scale.smoke()


def test_plog_run_delivers_everything():
    run = plog_run(100, scale=SMOKE, seed=3)
    assert not run.oom
    assert run.refused == 0
    assert run.sent > 0
    assert run.received == run.sent
    assert run.loss_rate == 0.0
    assert run.duplicates == 0
    assert run.compliant
    # Linger-dominated latency: ~50 ms floor, well under the 5 s deadline.
    assert 40 < run.mean_rtt_ms < 500


def test_plog_run_is_deterministic():
    a = plog_run(100, scale=SMOKE, seed=3)
    b = plog_run(100, scale=SMOKE, seed=3)
    assert a.mean_rtt_ms == b.mean_rtt_ms
    assert a.stddev_rtt_ms == b.stddev_rtt_ms
    assert a.sent == b.sent
    assert a.received == b.received
    assert a.broker_stats == b.broker_stats


def test_plog_run_seed_changes_results():
    a = plog_run(100, scale=SMOKE, seed=3)
    b = plog_run(100, scale=SMOKE, seed=4)
    assert a.mean_rtt_ms != b.mean_rtt_ms


def test_plog_run_connection_accounting_is_exact():
    # 100 producers + 4 coordinator channels + data channels from the 4
    # consumers.  With one broker every consumer opens exactly one data
    # channel, so the count is exact — a regression guard for the
    # duplicate-connection race in the consumer's session cache.
    run = plog_run(100, scale=SMOKE, seed=3)
    stats = run.broker_stats["plog-hydra1"]
    assert stats["connections"] == 100 + 4 + 4


def test_plog_broker_thread_count_is_flat():
    small = plog_run(50, scale=SMOKE, seed=3)
    large = plog_run(400, scale=SMOKE, seed=3)
    threads_small = small.broker_stats["plog-hydra1"]["threads_peak"]
    threads_large = large.broker_stats["plog-hydra1"]["threads_peak"]
    # The I/O pool is fixed-size: 8x the connections, same threads.  This is
    # the structural contrast with Narada's thread-per-connection broker.
    assert threads_small == threads_large
    assert threads_large <= small.connections  # trivially far below 1/conn


def test_plog_spread_uses_all_brokers():
    run = plog_run(200, n_brokers=4, scale=SMOKE, seed=3)
    assert run.n_brokers == 4
    assert run.received == run.sent
    appended = {
        name: s["records_appended"] for name, s in run.broker_stats.items()
    }
    assert len(appended) == 4
    assert all(n > 0 for n in appended.values())  # every broker carries load


def test_plog_heap_wall_reproduced_when_budget_small():
    # Shrink the heap so connection state alone exhausts it: the plog
    # analogue of the Narada OOM test — the wall exists, it is just heap-
    # bound instead of thread-bound.
    config = PlogConfig(heap_bytes=60 * 48 * 1024)  # ~60 connections
    run = plog_run(100, scale=SMOKE, seed=3, config=config)
    assert run.oom
    assert run.refused > 0


def test_consumer_failover_resumes_delivery():
    # Kill one of two group members mid-run; after the rebalance the
    # survivor must own (and actually fetch) every partition, including the
    # ones it already held before the rebalance.
    sim = Simulator(seed=5)
    cluster = HydraCluster(sim)
    transport = TcpTransport(sim, cluster.lan)
    config = PlogConfig(partitions=8, linger=0.02)
    deployment = PlogDeployment(sim, cluster, transport, config=config)
    deployment.serve()

    received = []
    survivor = deployment.consumer(
        cluster.node("hydra5"), "c-survivor", "g",
        on_record=lambda value, t: received.append(value),
    )
    doomed = deployment.consumer(
        cluster.node("hydra6"), "c-doomed", "g",
        on_record=lambda value, t: received.append(value),
    )
    sim.process(survivor.start(), name="survivor")
    sim.process(doomed.start(), name="doomed")

    producer = deployment.producer(cluster.node("hydra7"), "p0")
    keys = [f"gen-{i}" for i in range(16)]  # covers many partitions

    def publish():
        for key in keys:
            yield from producer.connect_for("grid.monitoring", key)
        seq = 0
        while sim.now < 20.0:
            for key in keys:
                producer.send("grid.monitoring", key, (key, seq), 100)
            seq += 1
            yield sim.timeout(1.0)

    sim.process(publish(), name="publisher")
    sim.run(until=5.0)
    assert len(received) > 0
    doomed.close()
    before_failover = len(received)
    sim.run(until=25.0)
    survivor_partitions = set(survivor.assigned)
    assert survivor_partitions == set(range(8))
    # Records published after the failover keep arriving at the survivor,
    # on *all* partitions (distinct keys keep showing up).
    after = received[before_failover:]
    assert len(after) > 0
    assert {key for key, _ in after} == set(keys)
