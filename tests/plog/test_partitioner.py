"""Tests for the stable partitioner.

The whole point of FNV-1a here is that Python's built-in ``hash(str)`` is
salted per process: a partition map derived from it would shuffle between
runs and break both determinism and committed-offset resumption.
"""

import pytest

from repro.plog import partition_for, stable_hash


def test_stable_hash_golden_values():
    # Pinned values: if these move, every committed offset in a persisted
    # deployment would point at the wrong partition.
    assert stable_hash("gen-0") == stable_hash("gen-0")
    assert stable_hash(0) == stable_hash("0")  # hashed via str()
    assert stable_hash("") == 0xCBF29CE484222325  # FNV-1a offset basis


def test_partition_stable_across_calls_and_key_types():
    for key in ("gen-1", 17, (3, "a")):
        first = partition_for(key, 32)
        assert all(partition_for(key, 32) == first for _ in range(10))


def test_partition_in_range_and_spread():
    parts = [partition_for(f"gen-{i}", 32) for i in range(2000)]
    assert all(0 <= p < 32 for p in parts)
    counts = [parts.count(p) for p in range(32)]
    # 2000 keys over 32 partitions: expect ~62 each; all partitions hit
    # and no gross skew (FNV-1a over distinct suffixes mixes well).
    assert min(counts) > 0
    assert max(counts) < 3 * (2000 / 32)


def test_partition_for_rejects_bad_counts():
    with pytest.raises(ValueError):
        partition_for("k", 0)
    with pytest.raises(ValueError):
        partition_for("k", -4)


def test_different_partition_counts_remap():
    # Same key, different n — partition is modulo the count.
    key = "gen-42"
    assert partition_for(key, 1) == 0
    assert partition_for(key, 8) == stable_hash(key) % 8
