"""Tests for producer batching: linger timing, size flush, ack stamping."""

import pytest

from repro.cluster import HydraCluster
from repro.core import RecordBook
from repro.plog import PlogConfig, PlogDeployment, partition_for
from repro.sim import Simulator
from repro.transport import TcpTransport

TOPIC = "grid.monitoring"


def make_world(config):
    sim = Simulator(seed=7)
    cluster = HydraCluster(sim)
    transport = TcpTransport(sim, cluster.lan)
    deployment = PlogDeployment(sim, cluster, transport, config=config)
    deployment.serve()
    producer = deployment.producer(cluster.node("hydra5"), "p0")
    return sim, deployment, producer


def appended(deployment):
    return deployment.total_records_appended()


def test_linger_holds_then_flushes():
    config = PlogConfig(linger=0.05)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    t0 = sim.now
    producer.send(TOPIC, "gen-1", "v", 100)
    sim.run(until=t0 + 0.04)
    assert appended(deployment) == 0  # still lingering
    sim.run(until=t0 + 0.2)
    assert appended(deployment) == 1
    assert producer.batches_sent == 1


def test_records_in_linger_window_share_one_batch():
    config = PlogConfig(linger=0.05)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    for i in range(5):
        producer.send(TOPIC, "gen-1", f"v{i}", 100)
    sim.run(until=sim.now + 0.3)
    assert producer.batches_sent == 1
    assert producer.records_sent == 5
    assert appended(deployment) == 5


def test_batch_max_records_flushes_before_linger():
    config = PlogConfig(linger=10.0, batch_max_records=3)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    for i in range(3):
        producer.send(TOPIC, "gen-1", f"v{i}", 100)
    sim.run(until=sim.now + 1.0)  # far below the 10 s linger
    assert producer.batches_sent == 1
    assert appended(deployment) == 3


def test_size_flush_cancels_linger_timer():
    # After a size-triggered flush, the stale linger timer must not flush
    # the *next* batch early (the epoch guard).
    config = PlogConfig(linger=1.0, batch_max_records=2)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    t0 = sim.now
    producer.send(TOPIC, "gen-1", "a", 100)
    producer.send(TOPIC, "gen-1", "b", 100)  # size flush; timer armed at t0+1
    sim.run(until=t0 + 0.5)
    producer.send(TOPIC, "gen-1", "c", 100)  # new batch, lingers to t0+1.5
    sim.run(until=t0 + 1.2)  # stale timer fired at t0+1.0: must be a no-op
    assert producer.batches_sent == 1
    sim.run(until=t0 + 2.0)
    assert producer.batches_sent == 2
    assert producer.records_sent == 3


def test_batch_max_bytes_flushes():
    config = PlogConfig(linger=10.0, batch_max_bytes=250.0)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    producer.send(TOPIC, "gen-1", "a", 200)
    assert producer.batches_sent == 0
    producer.send(TOPIC, "gen-1", "b", 200)  # 400 >= 250
    sim.run(until=sim.now + 1.0)
    assert producer.batches_sent == 1


def test_acks_stamp_after_send_on_ack_arrival():
    config = PlogConfig(linger=0.02, acks=1)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    book = RecordBook()
    record = book.new_record(gen_id=1, seq=1, t_before_send=sim.now)
    producer.send(TOPIC, "gen-1", "v", 100, record=record)
    sim.run(until=sim.now + 1.0)
    assert producer.acks_received == 1
    # The stamp includes linger + wire + broker append, so it lands strictly
    # after the linger expiry.
    assert record.t_after_send is not None
    assert record.t_after_send > record.t_before_send + config.linger


def test_acks_zero_stamps_at_socket():
    config = PlogConfig(linger=0.02, acks=0)
    sim, deployment, producer = make_world(config)
    sim.run_process(producer.connect_for(TOPIC, "gen-1"))
    book = RecordBook()
    record = book.new_record(gen_id=1, seq=1, t_before_send=sim.now)
    producer.send(TOPIC, "gen-1", "v", 100, record=record)
    sim.run(until=sim.now + 1.0)
    assert producer.acks_received == 0
    assert record.t_after_send is not None


def test_keys_hash_to_their_partitions():
    config = PlogConfig(linger=0.01)
    sim, deployment, producer = make_world(config)
    keys = ["gen-1", "gen-2", "gen-3"]
    for key in keys:
        sim.run_process(producer.connect_for(TOPIC, key))
        producer.send(TOPIC, key, "v", 100)
    sim.run(until=sim.now + 1.0)
    for key in keys:
        partition = partition_for(key, config.partitions)
        log = deployment.owner(partition).logs[(TOPIC, partition)]
        assert any(r.key == key for r in log.read(0, 100))
