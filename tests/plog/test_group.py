"""Tests for consumer-group coordination: assignment, rebalance, offsets."""

import pytest

from repro.cluster import HydraCluster
from repro.plog import PlogBroker, PlogConfig, PlogDeployment
from repro.plog.group import GroupCoordinator, _Member
from repro.sim import Simulator
from repro.transport import TcpTransport

CONFIG = PlogConfig(partitions=8)


def make_world(config=CONFIG):
    sim = Simulator(seed=11)
    cluster = HydraCluster(sim)
    transport = TcpTransport(sim, cluster.lan)
    deployment = PlogDeployment(sim, cluster, transport, config=config)
    deployment.serve()
    return sim, cluster, deployment


def start_consumer(sim, cluster, deployment, name, node="hydra5"):
    consumer = deployment.consumer(cluster.node(node), name, "g")
    sim.process(consumer.start(), name=f"start.{name}")
    return consumer


# ----------------------------------------------------------------- assignment
def test_range_assignment_contiguous_and_complete():
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    broker = PlogBroker(sim, cluster.node("hydra1"), "b", CONFIG)
    coordinator = GroupCoordinator(broker, 8)
    members = [_Member(f"c{i}", None, "t") for i in range(3)]
    assignment = coordinator._range_assign(members)
    assert assignment == {"c0": (0, 1, 2), "c1": (3, 4, 5), "c2": (6, 7)}
    assert coordinator._range_assign([]) == {}


def test_join_storm_coalesces_to_one_rebalance():
    sim, cluster, deployment = make_world()
    consumers = [
        start_consumer(sim, cluster, deployment, f"c{i}") for i in range(4)
    ]
    sim.run(until=CONFIG.rebalance_delay + 1.0)
    coordinator = deployment.coordinator
    # Four joins landed inside one rebalance_delay window -> one rebalance.
    assert coordinator.rebalances == 1
    assert coordinator.member_count("g") == 4
    assigned = [set(c.assigned) for c in consumers]
    assert all(len(s) == 2 for s in assigned)  # 8 partitions / 4 members
    union = set().union(*assigned)
    assert union == set(range(8))
    assert sum(len(s) for s in assigned) == 8  # disjoint
    assert all(c.generation == 1 for c in consumers)


def test_member_leave_triggers_reassignment_to_survivors():
    sim, cluster, deployment = make_world()
    alive = start_consumer(sim, cluster, deployment, "alive")
    doomed = start_consumer(sim, cluster, deployment, "doomed", node="hydra6")
    sim.run(until=2.0)
    assert set(alive.assigned) | set(doomed.assigned) == set(range(8))
    doomed.close()  # channel EOF -> coordinator.on_disconnect
    sim.run(until=6.0)
    coordinator = deployment.coordinator
    assert coordinator.member_count("g") == 1
    assert set(alive.assigned) == set(range(8))
    assert alive.generation == 2
    assert coordinator.rebalances == 2


def test_stale_generation_does_not_advance_offsets():
    # After a rebalance, positions for partitions assigned away are dropped.
    sim, cluster, deployment = make_world()
    first = start_consumer(sim, cluster, deployment, "first")
    sim.run(until=2.0)
    assert set(first.assigned) == set(range(8))
    second = start_consumer(sim, cluster, deployment, "second", node="hydra6")
    sim.run(until=6.0)
    # Range assignor: 'first' < 'second', each gets a contiguous half.
    assert set(first.assigned) == {0, 1, 2, 3}
    assert set(first.positions) == {0, 1, 2, 3}
    assert set(second.assigned) == {4, 5, 6, 7}


# -------------------------------------------------------------------- commits
def test_commit_only_advances_owned_partitions():
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    broker = PlogBroker(sim, cluster.node("hydra1"), "b", CONFIG)
    coordinator = GroupCoordinator(broker, 8)
    coordinator.handle(object(), ("join", "g", "c0", "t"))
    group = coordinator.groups["g"]
    group.assignment = {"c0": (0, 1)}
    coordinator.handle(
        object(), ("commit", "g", "c0", "t", {0: 5, 1: 3, 2: 9}, 0)
    )
    assert group.offsets == {("t", 0): 5, ("t", 1): 3}  # partition 2 not owned
    # Offsets are monotone: a late commit from a stale fetch cannot rewind.
    coordinator.handle(object(), ("commit", "g", "c0", "t", {0: 2}, 0))
    assert group.offsets[("t", 0)] == 5


def test_commit_for_unknown_group_ignored():
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    broker = PlogBroker(sim, cluster.node("hydra1"), "b", CONFIG)
    coordinator = GroupCoordinator(broker, 8)
    coordinator.handle(object(), ("commit", "nope", "c0", "t", {0: 5}, 0))
    assert "nope" not in coordinator.groups


def test_paused_prerebalance_consumer_cannot_clobber_new_owner():
    """Zombie fencing: a commit stamped with a stale generation is dropped
    even when ownership and monotonicity checks would both accept it."""
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    broker = PlogBroker(sim, cluster.node("hydra1"), "b", CONFIG)
    coordinator = GroupCoordinator(broker, 8)
    coordinator.handle(object(), ("join", "g", "zombie", "t"))
    group = coordinator.groups["g"]
    group.generation = 1
    group.assignment = {"zombie": (0,)}
    coordinator.handle(object(), ("commit", "g", "zombie", "t", {0: 30}, 1))
    assert group.offsets[("t", 0)] == 30
    # Two rebalances later the paused member owns partition 0 again, but
    # its world is still generation 1; the new owner has committed 35.
    group.generation = 3
    group.assignment = {"zombie": (0,), "other": (1,)}
    group.offsets[("t", 0)] = 35
    coordinator.handle(object(), ("commit", "g", "zombie", "t", {0: 50}, 1))
    assert group.offsets[("t", 0)] == 35  # fenced, not clobbered
    assert coordinator.fenced_commits == 1
    # Once the zombie observes generation 3, its commits land again.
    coordinator.handle(object(), ("commit", "g", "zombie", "t", {0: 50}, 3))
    assert group.offsets[("t", 0)] == 50


def test_new_owner_resumes_from_committed_offset():
    sim = Simulator(seed=1)
    cluster = HydraCluster(sim)
    broker = PlogBroker(sim, cluster.node("hydra1"), "b", CONFIG)
    coordinator = GroupCoordinator(broker, 8)
    coordinator.handle(object(), ("join", "g", "c0", "t"))
    group = coordinator.groups["g"]
    group.assignment = {"c0": tuple(range(8))}
    coordinator.handle(
        object(), ("commit", "g", "c0", "t", {p: 10 + p for p in range(8)}, 0)
    )
    coordinator.handle(object(), ("leave", "g", "c0"))
    assert coordinator.member_count("g") == 0
    # Committed offsets survive membership churn for the next owner.
    assert group.offsets[("t", 3)] == 13
