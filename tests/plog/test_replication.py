"""Replication acceptance: leader election durability, ISR dynamics,
coordinator failover, and the supporting log/retry machinery."""

import pytest

from repro.faults import RetryPolicy, named_plan
from repro.faults.recovery import RttEstimator
from repro.harness.plog_experiments import plog_run
from repro.harness.scale import Scale
from repro.plog import ACKS_ALL, PlogConfig, PartitionLog
from repro.sim import Simulator

SMOKE = Scale.smoke()


def _rf2_config(**overrides):
    base = dict(
        replication_factor=2, acks=ACKS_ALL, consumer_recovery=True
    )
    base.update(overrides)
    return PlogConfig(**base)


# ------------------------------------------------------------ log surgery

def _filled_log(n=10, segment_max_bytes=400.0):
    log = PartitionLog(segment_max_bytes=segment_max_bytes)
    for i in range(n):
        log.append([(i, f"r{i}", 100.0)])
    return log


def test_truncate_to_drops_the_tail():
    log = _filled_log(10)
    before = log.total_bytes
    dropped = log.truncate_to(6)
    assert dropped == 4
    assert log.end_offset == 6
    assert log.total_bytes < before
    offsets = [r.offset for r in log.read(0, 100)]
    assert offsets == list(range(6))


def test_truncate_to_past_end_is_a_noop():
    log = _filled_log(5)
    assert log.truncate_to(5) == 0
    assert log.truncate_to(99) == 0
    assert log.end_offset == 5


def test_truncate_to_everything_restarts_at_offset():
    log = _filled_log(10)
    dropped = log.truncate_to(0)
    assert dropped == 10
    assert log.end_offset == 0
    result = log.append([(0, "again", 10.0)])
    assert result.base_offset == 0


def test_reset_to_fast_forwards_past_a_gap():
    log = _filled_log(3)
    freed = log.reset_to(50)
    assert freed > 0
    assert log.start_offset == 50
    assert log.end_offset == 50
    result = log.append([(0, "jumped", 10.0)])
    assert result.base_offset == 50


# ------------------------------------------------------- RTT estimation

def test_rtt_estimator_seeds_from_first_sample():
    est = RttEstimator(initial_rto=1.0)
    assert est.rto == 1.0
    est.observe(0.2)
    assert est.srtt == pytest.approx(0.2)
    assert est.rttvar == pytest.approx(0.1)
    assert est.rto == pytest.approx(0.2 + 4 * 0.1)


def test_rtt_estimator_converges_on_steady_rtt():
    est = RttEstimator(initial_rto=1.0, min_rto=1e-6)
    for _ in range(200):
        est.observe(0.05)
    assert est.srtt == pytest.approx(0.05, rel=1e-3)
    # Variance decays toward zero, so RTO approaches the RTT itself.
    assert est.rto == pytest.approx(0.05, rel=0.05)


def test_rtt_estimator_rto_tracks_a_latency_spike():
    est = RttEstimator(initial_rto=1.0)
    for _ in range(50):
        est.observe(0.05)
    calm = est.rto
    for _ in range(10):
        est.observe(0.5)
    assert est.rto > calm
    assert est.rto > 0.5  # timeout sits above the new RTT


def test_rtt_estimator_backs_off_on_timeout_until_next_sample():
    est = RttEstimator(initial_rto=1.0)
    for _ in range(50):
        est.observe(0.01)
    calm = est.rto
    est.backoff()
    assert est.rto == pytest.approx(2 * calm)
    est.backoff()
    assert est.rto == pytest.approx(4 * calm)
    # A valid (first-attempt) sample collapses the backoff again.
    est.observe(0.01)
    assert est.rto < 2 * calm


def test_rtt_estimator_clamps_to_bounds():
    est = RttEstimator(initial_rto=1.0, min_rto=0.1, max_rto=2.0)
    est.observe(0.001)
    assert est.rto == 0.1
    for _ in range(20):
        est.observe(100.0)
    assert est.rto == 2.0


def test_adaptive_retry_policy_bases_backoff_on_rto():
    sim = Simulator(seed=1)
    fixed = RetryPolicy(retries=3, backoff=0.1, jitter=0.0)
    adaptive = RetryPolicy(retries=3, backoff=0.1, jitter=0.0, adaptive=True)
    assert adaptive.delay(1, sim, "t", rto=0.7) == pytest.approx(0.7)
    assert adaptive.delay(2, sim, "t", rto=0.7) == pytest.approx(1.4)
    # Without an observed RTO the adaptive policy falls back to fixed.
    assert adaptive.delay(1, sim, "t") == fixed.delay(1, sim, "t")


# --------------------------------------------------- election durability

def test_leader_crash_loses_no_acked_record_rf2():
    """The headline property: RF=2 + acks=all + one-shot producers, broker
    crash mid-window — every acknowledged record is delivered."""
    run = plog_run(
        100,
        n_brokers=4,
        scale=SMOKE,
        seed=3,
        config=_rf2_config(),
        fault_plan=named_plan("broker_outage"),
    )
    assert run.elections > 0
    assert run.acked > 0
    assert run.acked_lost == 0
    # The outage is visible in *unacked* loss (one-shot producers), which
    # is exactly the contrast the ack contract is about.
    assert run.received == run.acked


def test_replication_is_inert_without_faults():
    run = plog_run(100, n_brokers=4, scale=SMOKE, seed=3, config=_rf2_config())
    assert run.elections == 0
    assert run.isr_shrinks == 0
    assert run.loss_rate == 0.0
    assert run.acked_lost == 0
    assert run.records_replicated > 0


def test_isr_shrinks_on_crash_and_expands_on_recovery():
    run = plog_run(
        100,
        n_brokers=4,
        scale=SMOKE,
        seed=3,
        config=_rf2_config(),
        fault_plan=named_plan("broker_outage"),
    )
    # The dead broker's replicas fall out of the ISR (lag rule and/or the
    # controller's proactive drop); after restart the fetchers catch the
    # logs up and every ISR recovers to full strength.
    assert run.isr_shrinks > 0
    assert run.isr_expands > 0


def test_elections_are_deterministic_across_reruns():
    def one_run():
        return plog_run(
            100,
            n_brokers=4,
            scale=SMOKE,
            seed=7,
            config=_rf2_config(),
            fault_plan=named_plan("broker_outage"),
        )

    a, b = one_run(), one_run()
    assert a.election_log == b.election_log
    assert a.elections == b.elections
    assert a.sent == b.sent
    assert a.received == b.received
    assert a.acked == b.acked


# ------------------------------------------------- coordinator failover

def test_coordinator_crash_reelects_and_resumes_commits():
    run = plog_run(
        100,
        n_brokers=4,
        scale=SMOKE,
        seed=3,
        config=_rf2_config(),
        fault_plan=named_plan("coordinator_outage"),
    )
    assert run.coordinator_elections >= 1
    # Consumers lost their coordinator channels and rejoined the group at
    # the re-elected coordinator (the rebalance that resumes assignments).
    assert run.coordinator_rejoins > 0
    assert run.acked_lost == 0
    assert run.received == run.acked


def test_coordinator_failover_is_deterministic():
    def one_run():
        return plog_run(
            100,
            n_brokers=4,
            scale=SMOKE,
            seed=11,
            config=_rf2_config(),
            fault_plan=named_plan("coordinator_outage"),
        )

    a, b = one_run(), one_run()
    assert a.election_log == b.election_log
    assert a.coordinator_elections == b.coordinator_elections
    assert a.coordinator_rejoins == b.coordinator_rejoins
    assert a.received == b.received


# ---------------------------------------------------- windowed producer

def test_windowed_producer_still_delivers_everything():
    config = PlogConfig(max_in_flight=1)
    run = plog_run(100, scale=SMOKE, seed=3, config=config)
    assert run.loss_rate == 0.0
    assert run.duplicates == 0


def test_window_of_zero_disables_the_limit():
    a = plog_run(100, scale=SMOKE, seed=3, config=PlogConfig(max_in_flight=0))
    b = plog_run(100, scale=SMOKE, seed=3, config=PlogConfig())
    assert a.loss_rate == 0.0
    assert a.sent == b.sent
    assert a.received == b.received
