#!/usr/bin/env python3
"""Quickstart: publish/subscribe through the full JMS + broker stack.

Builds the paper's testbed (8-node Hydra cluster on a 100 Mbps switched
LAN), starts one Narada broker, connects a publisher and a subscriber from
different nodes, and round-trips a handful of monitoring messages —
printing each message's simulated round-trip time.

Run:  python examples/quickstart.py
"""

from repro.cluster import HydraCluster
from repro.jms import MapMessage, Topic
from repro.narada import Broker, narada_connection_factory
from repro.sim import Simulator
from repro.transport import TcpTransport


def main() -> None:
    sim = Simulator(seed=42)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)

    # One broker on hydra1.
    broker = Broker(sim, cluster.node("hydra1"), "broker1")
    broker.serve(tcp, 5045)

    topic = Topic("power.monitoring")
    received = []

    def on_message(message):
        rtt_ms = (sim.now - message._t_published) * 1e3
        received.append(rtt_ms)
        print(
            f"  t={sim.now * 1e3:8.2f} ms: generator {message.get_int('genid')}"
            f" power={message.get_float('power_kw'):6.2f} kW"
            f"   (RTT {rtt_ms:.2f} ms)"
        )

    def subscriber():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra3"), "hydra1", 5045
        )
        connection = yield from factory.create_connection()
        connection.start()
        session = connection.create_session()
        # The paper's selector: filters nothing, but is evaluated per message.
        yield from session.create_subscriber(
            topic, selector="id < 10000", listener=on_message
        )

    def publisher():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra2"), "hydra1", 5045
        )
        connection = yield from factory.create_connection()
        connection.start()
        session = connection.create_session()
        pub = session.create_publisher(topic)
        for i in range(5):
            message = MapMessage()
            message.set_int("genid", i)
            message.set_float("power_kw", 42.0 + i)
            message.set_property("id", i)
            message._t_published = sim.now
            yield from pub.publish(message)
            yield sim.timeout(0.5)

    sim.run_process(subscriber())
    sim.process(publisher())
    sim.run(until=5.0)

    mean = sum(received) / len(received)
    print(f"\nreceived {len(received)}/5 messages, mean RTT {mean:.2f} ms")
    print(f"broker stats: {broker.stats}")


if __name__ == "__main__":
    main()
