#!/usr/bin/env python3
"""GMA from first principles: directory service + three transfer modes.

The GGF Grid Monitoring Architecture (§II.A) separates *discovery* (through
a directory service) from *data transfer* (publish/subscribe,
query/response or notification).  This example runs all three modes over
the simulated LAN — the architectural skeleton underneath both middlewares.

Run:  python examples/gma_architecture.py
"""

from repro.cluster import HydraCluster
from repro.gma import (
    DirectoryService,
    NotificationTransfer,
    ProducerRecord,
    PublishSubscribeTransfer,
    QueryResponseTransfer,
)
from repro.sim import Simulator


class SensorProducer:
    """A minimal GMA producer: holds readings, serves all three modes."""

    def __init__(self, name, address):
        self.record = ProducerRecord(name, "producer", "sensor.readings", address)
        self.events = []

    def events_since(self, cursor):
        return self.events[cursor:]

    def all_events(self):
        return list(self.events)


class LoggingConsumer:
    def __init__(self, name, address):
        self.record = ProducerRecord(name, "consumer", "sensor.readings", address)
        self.got = []

    def deliver(self, events):
        self.got.extend(events)


def main() -> None:
    sim = Simulator(seed=4)
    cluster = HydraCluster(sim)
    directory = DirectoryService(sim, cluster.node("hydra1"))
    producer = SensorProducer("pp-elettra", "hydra2")
    consumer = LoggingConsumer("control-room", "hydra3")

    # -- discovery ----------------------------------------------------------
    def discover():
        yield from directory.publish(producer.record)
        yield from directory.publish(consumer.record)
        found = yield from directory.search(
            kind="producer", event_type="sensor.readings"
        )
        return found

    found = sim.run_process(discover())
    print(f"directory search found: {[r.name for r in found]} "
          f"(took {sim.now * 1e3:.2f} ms)\n")

    # -- mode 1: publish/subscribe ------------------------------------------
    stream = PublishSubscribeTransfer(
        sim, cluster.lan, producer, consumer, period=1.0
    )
    stream.start()

    def feed():
        for i in range(4):
            producer.events.append(f"reading-{i}")
            yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        stream.terminate()

    sim.process(feed())
    sim.run(until=sim.now + 10.0)
    print(f"publish/subscribe streamed: {consumer.got}")

    # -- mode 2: query/response ----------------------------------------------
    qr = QueryResponseTransfer(sim, cluster.lan, producer, consumer)

    def query():
        events = yield from qr.query()
        return events

    events = sim.run_process(query())
    print(f"query/response returned {len(events)} events in one response")

    # -- mode 3: notification -------------------------------------------------
    notify = NotificationTransfer(sim, cluster.lan, producer, consumer)

    def push():
        n = yield from notify.notify()
        return n

    n = sim.run_process(push())
    print(f"notification pushed {n} events in one producer-initiated message")


if __name__ == "__main__":
    main()
