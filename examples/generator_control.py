#!/usr/bin/env python3
"""Control-plane monitoring: detecting a malfunctioning generator.

The paper's §I example: "if a power generator has been switched on but does
not respond for a long time then it will be considered to be
malfunctioning."  A control centre sends switch-on commands over JMS
request/reply (temporary topics + correlation ids); a generator that never
answers within the deadline is flagged.

Run:  python examples/generator_control.py
"""

from repro.cluster import HydraCluster
from repro.jms import MapMessage, TextMessage, Topic
from repro.jms.requestor import TopicRequestor, reply_to
from repro.narada import Broker, narada_connection_factory
from repro.sim import Simulator
from repro.transport import TcpTransport

COMMANDS = Topic("generator.commands")


def main() -> None:
    sim = Simulator(seed=99)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    broker = Broker(sim, cluster.node("hydra1"), "broker1")
    broker.serve(tcp, 5045)

    def mkconn(node):
        factory = narada_connection_factory(
            sim, tcp, cluster.node(node), "hydra1", 5045
        )
        holder = {}

        def go():
            conn = yield from factory.create_connection()
            conn.start()
            holder["c"] = conn

        sim.run_process(go())
        return holder["c"]

    # Three generators: gen-1 and gen-2 healthy, gen-3 silent (tripped
    # controller, §I's malfunction case).
    for gen_id, healthy in ((1, True), (2, True), (3, False)):
        conn = mkconn(f"hydra{1 + gen_id}")

        def setup(conn=conn, gen_id=gen_id, healthy=healthy):
            session = conn.create_session()

            def on_command(message, session=session, gen_id=gen_id, healthy=healthy):
                if message.get_int("target") != gen_id or not healthy:
                    return
                yield sim.timeout(0.2)  # actuation time
                status = TextMessage(f"generator-{gen_id}: ON, 48.5 kW")
                yield from reply_to(session, message, status)

            yield from session.create_subscriber(COMMANDS, listener=on_command)

        sim.run_process(setup())

    # The control centre.
    control = mkconn("hydra8")

    def control_loop():
        session = control.create_session()
        requestor = TopicRequestor(session, COMMANDS)
        for gen_id in (1, 2, 3):
            command = MapMessage()
            command.set_string("action", "switch-on")
            command.set_int("target", gen_id)
            command.set_property("target", gen_id)
            print(f"t={sim.now:6.2f}s  control: switch-on -> generator {gen_id}")
            reply = yield from requestor.request(command, timeout=5.0)
            if reply is None:
                print(f"t={sim.now:6.2f}s  generator {gen_id}: NO RESPONSE "
                      "within 5 s -> flagged as MALFUNCTIONING")
            else:
                print(f"t={sim.now:6.2f}s  generator {gen_id}: {reply.text}")

    sim.run_process(control_loop())


if __name__ == "__main__":
    main()
