#!/usr/bin/env python3
"""The Distributed Broker Network, with and without the broadcast flaw.

Builds the paper's 4-broker star (unit controller + three leaves, Fig 5),
publishes across the network, and contrasts the v1.1.3 broadcast behaviour
("data flowed to a node even if there was no subscriber linked to it",
§III.E.2) with subscription-aware shortest-path routing.

Run:  python examples/distributed_broker_network.py
"""

from repro.cluster import HydraCluster
from repro.jms import TextMessage, Topic
from repro.narada import Broker, BrokerNetwork, NaradaConfig, narada_connection_factory
from repro.sim import Simulator
from repro.transport import TcpTransport

TOPIC = Topic("power.monitoring")


def build_and_run(broadcast_flaw: bool, n_messages: int = 200):
    sim = Simulator(seed=5)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    config = NaradaConfig(broadcast_flaw=broadcast_flaw)

    brokers = {}
    for i, name in enumerate(("hub", "leaf-a", "leaf-b", "leaf-c"), start=1):
        broker = Broker(sim, cluster.node(f"hydra{i}"), name, config)
        broker.serve(tcp, 5045)
        brokers[name] = broker

    network = BrokerNetwork(sim, tcp)

    def wire():
        for broker in brokers.values():
            yield from network.add_broker(broker)
        yield from network.star("hub", ["leaf-a", "leaf-b", "leaf-c"])

    sim.run_process(wire())

    # Subscriber on leaf-a only; leaf-b and leaf-c have no subscribers.
    rtts = []

    def subscriber():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra5"), "hydra2", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        yield from session.create_subscriber(
            TOPIC,
            listener=lambda m: rtts.append(sim.now - m._t_sent),
        )

    sim.run_process(subscriber())
    sim.run(until=sim.now + 1.0)  # interest propagation

    def publisher():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra6"), "hydra3", 5045  # on leaf-b
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        pub = session.create_publisher(TOPIC)
        for i in range(n_messages):
            message = TextMessage(f"reading-{i}")
            message._t_sent = sim.now
            yield from pub.publish(message)
            yield sim.timeout(0.05)

    sim.run_process(publisher())
    sim.run(until=sim.now + 5.0)

    wasted = sum(
        b.stats.forwards_received
        for name, b in brokers.items()
        if name in ("leaf-c",)  # no subscriber, no publisher: pure waste
    )
    total_forwards = sum(b.stats.messages_forwarded for b in brokers.values())
    mean_rtt = sum(rtts) / len(rtts) * 1e3
    return len(rtts), mean_rtt, total_forwards, wasted


def main() -> None:
    print("4-broker star; publisher on leaf-b, subscriber on leaf-a,")
    print("leaf-c has nobody attached.\n")
    for flaw, label in ((True, "v1.1.3 broadcast flaw"), (False, "fixed routing")):
        delivered, mean_rtt, forwards, wasted = build_and_run(flaw)
        print(f"{label}:")
        print(f"  delivered {delivered} messages, mean RTT {mean_rtt:.2f} ms")
        print(f"  inter-broker forwards {forwards}, "
              f"events wastefully sent to idle leaf-c: {wasted}\n")


if __name__ == "__main__":
    main()
