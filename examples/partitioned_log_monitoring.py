#!/usr/bin/env python3
"""Grid monitoring over a partitioned commit log (the third candidate).

The same §I scenario as powergrid_monitoring.py — a fleet of generators
publishing power output and voltage every 10 s — but carried by a
Kafka-style partitioned log (repro.plog) instead of a Narada broker: the
topic is split into partitions hashed by generator id, producers batch
with a 50 ms linger, and a consumer group of four members (one per client
node) long-polls its assigned partitions.

The interesting contrast: the broker runs a fixed-size I/O thread pool, so
connection count never hits Narada's thread-per-connection memory wall —
try 8000 generators here, twice what the Narada broker refuses.

Run:  python examples/partitioned_log_monitoring.py [n_generators]
"""

import sys

from repro.cluster import HydraCluster, VmStat
from repro.core import RecordBook, rtt_stats
from repro.core.metrics import percentile_curve, soft_realtime_compliance
from repro.plog import PlogDeployment
from repro.powergrid import FleetConfig, PlogFleet, PlogReceiver
from repro.sim import Simulator
from repro.transport import TcpTransport

CLIENT_NODES = ("hydra5", "hydra6", "hydra7", "hydra8")


def main(n_generators: int = 2000) -> None:
    sim = Simulator(seed=7)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)

    deployment = PlogDeployment(sim, cluster, tcp, broker_hosts=("hydra1",))
    deployment.serve()
    vmstat = VmStat(sim, cluster.node("hydra1"))

    book = RecordBook()
    creation_interval = min(0.02, 80.0 / n_generators)
    fleet_config = FleetConfig(
        n_generators=n_generators,
        publish_interval=10.0,
        creation_interval=creation_interval,
        warmup_min=4.0,
        warmup_max=8.0,
        duration=60.0,
        client_nodes=CLIENT_NODES,
    )

    # One consumer-group member per client node; the coordinator splits the
    # topic's partitions evenly among them (no per-receiver subscriptions).
    receivers = [
        PlogReceiver(sim, cluster, deployment, node) for node in CLIENT_NODES
    ]
    for receiver in receivers:
        receiver.start()

    fleet = PlogFleet(sim, cluster, deployment, fleet_config, book)
    fleet.start()

    print(f"simulating {n_generators} generators over "
          f"{deployment.n_partitions} partitions ...")
    sim.run(until=n_generators * creation_interval + 8.0 + 60.0 + 15.0)

    stats = rtt_stats(book)
    print(f"\nmessages: {stats.sent} sent, {stats.count} received "
          f"(loss {stats.loss_rate:.3%})")
    print(f"RTT: mean {stats.mean_ms:.2f} ms, stddev {stats.stddev_ms:.2f} ms, "
          f"max {stats.max_ms:.1f} ms  (the ~50 ms floor is the linger)")
    print("percentiles:", "  ".join(
        f"p{p:.0f}={ms:.1f}ms" for p, ms in percentile_curve(book.rtts())
    ))

    ok, frac_bad, loss = soft_realtime_compliance(
        book, deadline_s=5.0, max_loss=0.005
    )
    verdict = "MEETS" if ok else "VIOLATES"
    print(f"\nsoft real-time requirement (5 s deadline, <0.5% late/lost): "
          f"{verdict} ({frac_bad:.3%} late or lost)")

    broker = deployment.brokers[0]
    print(f"\nbroker: {broker.stats.connections_accepted} connections, "
          f"{broker.jvm.threads_peak} JVM threads (fixed pool — no "
          f"thread-per-connection wall), "
          f"{broker.stats.records_appended} records appended in "
          f"{broker.stats.produce_batches} batches")
    print("consumer group:", "  ".join(
        f"{r.consumer.name}={len(r.consumer.assigned)}p" for r in receivers
    ))
    summary = vmstat.summary()
    print(f"broker node: CPU idle {summary.mean_cpu_idle_percent:.1f}%, "
          f"memory consumption {summary.memory_consumption_mb:.0f} MB")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
