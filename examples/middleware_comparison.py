#!/usr/bin/env python3
"""Head-to-head: the paper's study in one run.

Runs the same monitoring workload through NaradaBrokering and R-GMA,
decomposes each RTT into the paper's PRT/PT/SRT phases (Fig 15), checks the
soft real-time requirement for both, and derives Table III's qualitative
verdicts from the measurements.

Run:  python examples/middleware_comparison.py
"""

from repro.core import decompose
from repro.core.metrics import soft_realtime_compliance
from repro.harness.narada_experiments import narada_run
from repro.harness.rgma_experiments import rgma_run
from repro.harness.scale import Scale


def main() -> None:
    scale = Scale.smoke()
    connections = 200
    print(f"running {connections} generators through both middlewares ...\n")

    narada = narada_run(connections, scale=scale, seed=3)
    rgma = rgma_run(connections, scale=scale, seed=3)

    header = f"{'':24s} {'Narada':>12s} {'R-GMA':>12s}"
    print(header)
    print("-" * len(header))

    def line(label, a, b, fmt="{:>12.2f}"):
        print(f"{label:24s} {fmt.format(a)} {fmt.format(b)}")

    line("mean RTT (ms)", narada.mean_rtt_ms, rgma.mean_rtt_ms)
    line("stddev (ms)", narada.stddev_rtt_ms, rgma.stddev_rtt_ms)
    line("loss rate (%)", narada.loss_rate * 100, rgma.loss_rate * 100)

    n_phases = decompose(narada.book, since=narada.measure_since)
    r_phases = decompose(rgma.book, since=rgma.measure_since)
    print()
    line("PRT (ms)", n_phases.prt_ms, r_phases.prt_ms)
    line("PT  (ms)", n_phases.pt_ms, r_phases.pt_ms)
    line("SRT (ms)", n_phases.srt_ms, r_phases.srt_ms)

    print()
    for name, run in (("Narada", narada), ("R-GMA", rgma)):
        ok, frac, _ = soft_realtime_compliance(
            run.book, deadline_s=5.0, max_loss=0.005, since=run.measure_since
        )
        verdict = "MEETS" if ok else "VIOLATES"
        print(f"{name}: soft real-time requirement (5 s, <0.5%): {verdict} "
              f"({frac:.3%} late/lost)")

    print("\npaper's conclusion (§V): NaradaBrokering has very good real-time"
          "\nperformance; the current version of R-GMA is not suitable for"
          "\nreal-time monitoring — but offers content filtering and"
          "\nlatest/history queries for less time-critical applications.")


if __name__ == "__main__":
    main()
