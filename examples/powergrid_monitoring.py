#!/usr/bin/env python3
"""Power-grid monitoring: the paper's motivating scenario end-to-end.

A fleet of simulated power generators (the §I use case: dispersed renewable
units publishing power output and voltage every 10 s) reports through a
Narada broker to a monitoring centre.  The script then checks the paper's
soft real-time requirement: "Most of the data for monitoring should be
received within a time limit (e.g. 5 seconds).  A small number of delays are
sometimes allowed (e.g. less than 0.5%)."

Run:  python examples/powergrid_monitoring.py [n_generators]
"""

import sys

from repro.cluster import HydraCluster, VmStat
from repro.core import RecordBook, rtt_stats
from repro.core.metrics import percentile_curve, soft_realtime_compliance
from repro.narada import Broker
from repro.powergrid import FleetConfig, NaradaFleet, NaradaReceiver
from repro.powergrid.workload import MONITORING_TOPIC
from repro.sim import Simulator
from repro.transport import TcpTransport


def main(n_generators: int = 400) -> None:
    sim = Simulator(seed=7)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    broker = Broker(sim, cluster.node("hydra1"), "broker1")
    broker.serve(tcp, 5045)
    vmstat = VmStat(sim, cluster.node("hydra1"))

    book = RecordBook()
    fleet_config = FleetConfig(
        n_generators=n_generators,
        publish_interval=10.0,
        creation_interval=0.02,
        warmup_min=4.0,
        warmup_max=8.0,
        duration=60.0,
        client_nodes=("hydra5", "hydra6", "hydra7", "hydra8"),
    )

    # One monitoring receiver per client node, subscribed to its own
    # generators via an id-range selector (content-based filtering).
    for k, node in enumerate(fleet_config.client_nodes):
        lo, hi = fleet_config.id_range(k)
        receiver = NaradaReceiver(
            sim, cluster, tcp, ("hydra1", 5045), node, MONITORING_TOPIC,
            selector=f"id >= {lo} AND id < {hi}",
        )
        sim.run_process(receiver.start())

    fleet = NaradaFleet(sim, cluster, tcp, [("hydra1", 5045)], fleet_config, book)
    fleet.start()

    print(f"simulating {n_generators} generators publishing every 10 s ...")
    sim.run(until=n_generators * 0.02 + 8.0 + 60.0 + 15.0)

    stats = rtt_stats(book)
    print(f"\nmessages: {stats.sent} sent, {stats.count} received "
          f"(loss {stats.loss_rate:.3%})")
    print(f"RTT: mean {stats.mean_ms:.2f} ms, stddev {stats.stddev_ms:.2f} ms, "
          f"max {stats.max_ms:.1f} ms")
    print("percentiles:", "  ".join(
        f"p{p:.0f}={ms:.1f}ms" for p, ms in percentile_curve(book.rtts())
    ))

    ok, frac_bad, loss = soft_realtime_compliance(
        book, deadline_s=5.0, max_loss=0.005
    )
    verdict = "MEETS" if ok else "VIOLATES"
    print(f"\nsoft real-time requirement (5 s deadline, <0.5% late/lost): "
          f"{verdict} ({frac_bad:.3%} late or lost)")

    summary = vmstat.summary()
    print(f"broker node: CPU idle {summary.mean_cpu_idle_percent:.1f}%, "
          f"memory consumption {summary.memory_consumption_mb:.0f} MB")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
