#!/usr/bin/env python3
"""Transport shootout: the §III.E.1 comparison experiment, interactively.

Runs the six Table II configurations (UDP, UDP with CLIENT_ACKNOWLEDGE, NIO,
TCP, triple payload, 80 connections) at a reduced scale and prints the Fig
3/Fig 4 data: mean RTT, standard deviation, loss rate and the 95-100th
percentile curve per transport.

Run:  python examples/transport_shootout.py
"""

from repro.core.metrics import percentile_curve
from repro.harness.narada_experiments import COMPARISON_TESTS, narada_run
from repro.harness.scale import Scale


def main() -> None:
    scale = Scale.smoke()
    print(f"{'test':10s} {'RTT ms':>8s} {'STDDEV':>8s} {'loss':>8s}   "
          "p95 / p99 / p100 (ms)")
    print("-" * 72)
    for name, overrides in COMPARISON_TESTS.items():
        kwargs = dict(overrides)
        connections = kwargs.pop("connections", 800)
        run = narada_run(connections, scale=scale, seed=1, **kwargs)
        curve = dict(percentile_curve(run.rtts))
        print(
            f"{name:10s} {run.mean_rtt_ms:8.2f} {run.stddev_rtt_ms:8.2f} "
            f"{run.loss_rate:8.3%}   "
            f"{curve[95.0]:6.1f} / {curve[99.0]:6.1f} / {curve[100.0]:6.1f}"
        )
    print("\npaper's conclusion: 'We recommend TCP as the underlying "
          "transport protocol to reach high performance.'")


if __name__ == "__main__":
    main()
