#!/usr/bin/env python3
"""R-GMA's virtual database: SQL in, SQL out, no central storage.

Demonstrates the §II.A architecture: data published with SQL INSERT from
producer clients on different nodes, discovered through the registry, and
queried with SQL SELECT — continuous (streaming), latest and history
queries, including content-based filtering in the WHERE clause.

Run:  python examples/rgma_virtual_database.py
"""

from repro.cluster import HydraCluster
from repro.rgma import RGMADeployment
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=17)
    cluster = HydraCluster(sim)
    # Distributed deployment: producer servlets on hydra1/2, consumer
    # servlets on hydra3/4, registry on hydra1.
    deployment = RGMADeployment.distributed(sim, cluster)

    # -- continuous query with a WHERE predicate --------------------------
    consumer = deployment.consumer_client(cluster.node("hydra7"))
    streamed = []

    def start_consumer():
        yield from consumer.create(
            "SELECT * FROM gridmon WHERE genid < 2 AND dval1 > 10"
        )

    sim.run_process(start_consumer())
    sim.process(consumer.poll_loop(streamed.append))

    # -- two producers on different servers --------------------------------
    producers = []

    def start_producers():
        for i, node in enumerate(("hydra5", "hydra6")):
            client = deployment.producer_client(cluster.node(node), i)
            yield from client.create("gridmon")
            producers.append(client)

    sim.run_process(start_producers())
    sim.run(until=6.0)  # let the mediator attach streams

    def row(genid, power):
        base = {f"ival{i}": 0 for i in range(1, 4)}
        base.update({f"dval{i}": 0.0 for i in range(2, 9)})
        base.update({f"sval{i}": "x" for i in range(1, 5)})
        return {"genid": genid, "dval1": power, **base}

    def publish():
        print("publishing: gen0 power=50 (matches), gen1 power=5 (filtered),")
        print("            gen2 power=99 (filtered: genid >= 2)")
        yield from producers[0].insert(row(0, 50.0))
        yield from producers[0].insert(row(1, 5.0))
        yield from producers[1].insert(row(2, 99.0))
        # Overwrite gen0's latest value a little later.
        yield sim.timeout(2.0)
        yield from producers[0].insert(row(0, 75.0))

    sim.run_process(publish())
    sim.run(until=sim.now + 5.0)
    consumer.stop()

    print(f"\ncontinuous query streamed {len(streamed)} tuples:")
    for t in streamed:
        print(f"  genid={t.row['genid']} dval1={t.row['dval1']}"
              f" (inserted t={t.insert_time:.2f}s)")

    # -- one-shot latest / history queries ---------------------------------
    oneshot = deployment.consumer_client(cluster.node("hydra8"), 1)

    def queries():
        latest = yield from oneshot.query_latest("SELECT * FROM gridmon")
        history = yield from oneshot.query_history(
            "SELECT * FROM gridmon WHERE genid = 0"
        )
        return latest, history

    latest, history = sim.run_process(queries())
    print(f"\nlatest query: one tuple per generator, newest value wins:")
    for t in sorted(latest, key=lambda t: t.row["genid"]):
        print(f"  genid={t.row['genid']} dval1={t.row['dval1']}")
    print(f"\nhistory query for genid=0 returned {len(history)} versions: "
          f"{[t.row['dval1'] for t in history]}")


if __name__ == "__main__":
    main()
