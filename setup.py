"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments that lack the `wheel` package
(legacy `setup.py develop` path).
"""

from setuptools import setup

setup()
