"""The active-telemetry slot.

Middleware hook sites import :func:`current` from *this* module only — it
is deliberately free of numpy and of the rest of the telemetry package, so
the guard ``tel = current()`` adds one module attribute read and a ``None``
check to hot paths when telemetry is off.  Off is the default: nothing in
the simulator ever activates a session; only the harness (``--trace`` /
``--metrics-out``) or a test does, via :func:`session`.

Sessions nest as a stack so an experiment that builds its own private
session (e.g. ``fig15`` when run outside the CLI) composes with a
CLI-level session wrapping the whole run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

_stack: list["Telemetry"] = []


def current() -> Optional["Telemetry"]:
    """The innermost active :class:`~repro.telemetry.Telemetry`, or ``None``.

    This is the guard every instrumentation hook evaluates; ``None`` means
    telemetry is off and the hook must do nothing.
    """
    return _stack[-1] if _stack else None


def activate(telemetry: "Telemetry") -> None:
    """Push a session; prefer :func:`session` which guarantees the pop."""
    _stack.append(telemetry)


def deactivate(telemetry: "Telemetry") -> None:
    """Pop ``telemetry``; it must be the innermost active session."""
    if not _stack or _stack[-1] is not telemetry:
        raise RuntimeError("deactivate() of a session that is not innermost")
    _stack.pop()


@contextmanager
def session(telemetry: "Telemetry") -> Iterator["Telemetry"]:
    """Activate ``telemetry`` for the duration of the ``with`` block."""
    activate(telemetry)
    try:
        yield telemetry
    finally:
        deactivate(telemetry)
