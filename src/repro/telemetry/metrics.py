"""Counters, gauges and streaming histograms keyed by middleware/component.

Two streaming quantile estimators back every histogram, because the paper's
figures need tails (percentile-of-RTT, Figs 4/8-10/12/14) and a serving
stack cannot afford to keep every sample:

* **fixed-bucket**: geometric bucket bounds of ratio ``factor``; a quantile
  is linearly interpolated inside its bucket, so the estimate and the exact
  value share a bucket and the relative error is bounded by ``factor - 1``
  (the documented bound the accuracy tests assert);
* **P²** (Jain & Chlamtac, CACM 1985): five markers per tracked quantile,
  parabolic interpolation, O(1) memory, no distribution assumptions.

Both are validated against ``numpy.percentile`` on adversarial (bimodal,
heavy-tailed) distributions in ``tests/telemetry/test_metrics.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

#: Default quantiles every histogram tracks with a P² estimator.
DEFAULT_QUANTILES = (0.50, 0.90, 0.95, 0.99)

#: Default geometric bucket ratio; bounds the bucketed-quantile relative
#: error at ``DEFAULT_BUCKET_FACTOR - 1`` (~19 %).
DEFAULT_BUCKET_FACTOR = 2.0 ** 0.25


def geometric_buckets(
    lo: float = 1e-2,
    hi: float = 1e5,
    factor: float = DEFAULT_BUCKET_FACTOR,
) -> tuple[float, ...]:
    """Bucket upper bounds ``lo * factor**k`` covering ``[lo, hi]``.

    The defaults span 0.01 ms .. 100 s — every latency this testbed can
    produce — in ~93 buckets.
    """
    if lo <= 0 or hi <= lo or factor <= 1.0:
        raise ValueError("need 0 < lo < hi and factor > 1")
    bounds = []
    b = lo
    while b < hi:
        bounds.append(b)
        b *= factor
    bounds.append(b)
    return tuple(bounds)


#: Buckets for leader-election latency (seconds): elections resolve within
#: one failure-detection scan (~0.25 s), so the default milliseconds-first
#: latency buckets would lump every observation into a handful of bins.
#: 1 ms .. ~60 s at the default factor keeps the histogram informative for
#: both the detection delay and pathological multi-failure stalls.
ELECTION_LATENCY_BUCKETS = geometric_buckets(1e-3, 60.0)


class Counter:
    """A monotone event count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold a fan-out worker's counter into this one (exact)."""
        self.value += other.value

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A sampled level (queue depth, heap bytes, CPU idle)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.n = 0
        self.min = math.inf
        self.max = -math.inf
        self._total = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.n += 1
        self._total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._total / self.n if self.n else 0.0

    def merge(self, other: "Gauge") -> None:
        """Fold a worker's gauge in: n/total/min/max are exact; ``value``
        (last set) takes the merged-in side's, treating it as later."""
        if other.n == 0:
            return
        self.n += other.n
        self._total += other._total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.value = other.value

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "n": self.n,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "mean": self.mean,
        }


class P2Quantile:
    """One P²-estimated quantile (five markers, O(1) per observation)."""

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.n = 0
        self._init: list[float] = []
        # Marker heights, positions (1-based) and desired positions.
        self._heights: list[float] = []
        self._pos: list[float] = []
        self._want: list[float] = []
        self._dwant = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        self.n += 1
        if self._init is not None:
            self._init.append(x)
            if len(self._init) == 5:
                self._init.sort()
                self._heights = list(self._init)
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._want = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                              3.0 + 2.0 * q, 5.0]
                self._init = None  # type: ignore[assignment]
            return
        h, pos = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._want[i] += self._dwant[i]
        for i in (1, 2, 3):
            d = self._want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                sign = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                pos[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def merge(self, other: "P2Quantile") -> None:
        """Fold another estimator of the same quantile into this one.

        Exact when either side still holds raw samples (< 5 observations):
        the samples are simply replayed.  When both sides have collapsed to
        markers the merge is approximate — extreme markers take min/max,
        interior marker heights combine by observation-weighted average and
        positions/desired positions are rebuilt for the combined count.  The
        companion fixed-bucket histogram merges exactly, so bucketed
        quantiles stay within their documented error bound regardless.
        """
        if other.q != self.q:
            raise ValueError(f"cannot merge p{other.q} into p{self.q}")
        if other.n == 0:
            return
        if other._init is not None:
            for x in other._init:
                self.observe(x)
            return
        if self._init is not None:
            mine = list(self._init)
            self.n = other.n
            self._init = None  # type: ignore[assignment]
            self._heights = list(other._heights)
            self._pos = list(other._pos)
            self._want = list(other._want)
            for x in mine:
                self.observe(x)
            return
        n1, n2 = self.n, other.n
        total = n1 + n2
        h1, h2 = self._heights, other._heights
        heights = [
            min(h1[0], h2[0]),
            (h1[1] * n1 + h2[1] * n2) / total,
            (h1[2] * n1 + h2[2] * n2) / total,
            (h1[3] * n1 + h2[3] * n2) / total,
            max(h1[4], h2[4]),
        ]
        for i in range(1, 5):
            if heights[i] < heights[i - 1]:
                heights[i] = heights[i - 1]
        # Marker positions: each side's interior position approximates the
        # count of its observations at or below that marker, so the sums
        # (shifted for the shared 1-based origin) carry over; endpoints are
        # pinned at 1 and the combined count, the P² invariant.
        pos = [1.0, 0.0, 0.0, 0.0, float(total)]
        for i in (1, 2, 3):
            pos[i] = self._pos[i] + other._pos[i] - 1.0
        for i in (1, 2, 3):  # re-impose strict ordering with unit gaps
            if pos[i] <= pos[i - 1]:
                pos[i] = pos[i - 1] + 1.0
        for i in (3, 2, 1):
            if pos[i] >= pos[i + 1]:
                pos[i] = pos[i + 1] - 1.0
        q = self.q
        base = (1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0)
        self.n = total
        self._heights = heights
        self._pos = pos
        self._want = [
            base[i] + (total - 5) * self._dwant[i] for i in range(5)
        ]

    @property
    def value(self) -> float:
        """The current estimate (exact while fewer than 5 observations)."""
        if self.n == 0:
            return float("nan")
        if self._init is not None:
            ordered = sorted(self._init)
            # Exact quantile, linear interpolation (numpy's default).
            rank = self.q * (len(ordered) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])
        return self._heights[2]


class Histogram:
    """Fixed-bucket streaming histogram with embedded P² quantiles."""

    kind = "histogram"

    def __init__(
        self,
        buckets: Optional[Sequence[float]] = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ):
        self.bounds = tuple(buckets) if buckets is not None else geometric_buckets()
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._p2 = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[self._bucket_index(value)] += 1
        for estimator in self._p2.values():
            estimator.observe(value)

    #: Largest deterministic subsample a batched feed hands the P²
    #: estimators (P² is inherently sequential; see :meth:`add_many`).
    P2_SUBSAMPLE = 256

    def add_many(self, values) -> None:
        """Vectorized :meth:`observe` for a whole batch of values.

        ``n``, ``total``, ``min``/``max`` and the bucket counts update
        exactly as a loop of ``observe`` calls would (``searchsorted`` over
        the same bounds ``_bucket_index`` binary-searches), so bucketed
        quantiles and :meth:`merge` behave identically.  The embedded P²
        estimators are sequential by construction, so they see a bounded,
        deterministic (evenly strided) subsample of the batch — the P²
        estimate of a batch-fed histogram is approximate, while the
        bucketed quantile keeps its documented error bound.
        """
        import numpy as np

        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        self.n += int(arr.size)
        self.total += float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        idx = np.searchsorted(np.asarray(self.bounds), arr, side="left")
        counts = np.bincount(idx, minlength=len(self.counts))
        self.counts = [a + int(b) for a, b in zip(self.counts, counts)]
        stride = max(1, arr.size // self.P2_SUBSAMPLE)
        for x in arr[::stride][: self.P2_SUBSAMPLE]:
            for estimator in self._p2.values():
                estimator.observe(float(x))

    def _bucket_index(self, value: float) -> int:
        # Binary search over the upper bounds: bucket i covers
        # (bounds[i-1], bounds[i]]; everything above the last bound lands
        # in the overflow bucket.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile (error bound: one bucket ratio)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.n == 0:
            return float("nan")
        if q >= 1.0:
            return self.max
        target = q * self.n
        cum = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cum + count >= target:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (target - cum) / count
                return lo + frac * (hi - lo)
            cum += count
        return self.max  # pragma: no cover - q<1 always lands in-loop

    def quantile_p2(self, q: float) -> float:
        """The P² estimate for a tracked quantile."""
        return self._p2[q].value

    def merge(self, other: "Histogram") -> None:
        """Fold a worker's histogram in.

        Bucket counts, n, total and min/max merge exactly (bounds must
        match); the embedded P² estimators merge via
        :meth:`P2Quantile.merge` (approximate once both sides have 5+
        observations).
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        if other.n == 0:
            return
        self.n += other.n
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        for q, estimator in self._p2.items():
            theirs = other._p2.get(q)
            if theirs is not None:
                estimator.merge(theirs)

    @property
    def tracked_quantiles(self) -> tuple[float, ...]:
        return tuple(self._p2)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean if self.n else 0.0,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "quantiles": {
                f"p{q * 100:g}": self._p2[q].value for q in self._p2
            },
            "bucketed_quantiles": {
                f"p{q * 100:g}": self.quantile(q) for q in self._p2
            },
        }


@dataclass(frozen=True)
class MetricKey:
    """What a metric is keyed by: who produced it and what it counts."""

    middleware: str
    component: str
    name: str

    def __str__(self) -> str:
        return f"{self.middleware}/{self.component}/{self.name}"


class MetricsRegistry:
    """Get-or-create registry of instruments keyed middleware/component."""

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, object] = {}

    def _get(self, key: MetricKey, factory):
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = factory()
            self._metrics[key] = instrument
        return instrument

    def counter(self, middleware: str, component: str, name: str) -> Counter:
        instrument = self._get(MetricKey(middleware, component, name), Counter)
        if not isinstance(instrument, Counter):
            raise TypeError(f"{middleware}/{component}/{name} is not a counter")
        return instrument

    def gauge(self, middleware: str, component: str, name: str) -> Gauge:
        instrument = self._get(MetricKey(middleware, component, name), Gauge)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{middleware}/{component}/{name} is not a gauge")
        return instrument

    def histogram(
        self,
        middleware: str,
        component: str,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> Histogram:
        instrument = self._get(
            MetricKey(middleware, component, name),
            lambda: Histogram(buckets=buckets, quantiles=quantiles),
        )
        if not isinstance(instrument, Histogram):
            raise TypeError(f"{middleware}/{component}/{name} is not a histogram")
        return instrument

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of ``other`` into this registry.

        Instruments absent here are adopted by reference (``other`` is a
        discarded worker export, never used again); same-key instruments
        must agree on kind and merge via their ``merge`` methods.
        """
        for key, instrument in other:
            mine = self._metrics.get(key)
            if mine is None:
                self._metrics[key] = instrument
                continue
            if mine.kind != instrument.kind:  # type: ignore[attr-defined]
                raise TypeError(
                    f"cannot merge {instrument.kind} into {mine.kind} at {key}"  # type: ignore[attr-defined]
                )
            mine.merge(instrument)  # type: ignore[attr-defined]

    def __iter__(self) -> Iterator[tuple[MetricKey, object]]:
        return iter(sorted(self._metrics.items(), key=lambda kv: str(kv[0])))

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> dict:
        out: dict = {}
        for key, instrument in self:
            out[str(key)] = {
                "kind": instrument.kind,  # type: ignore[attr-defined]
                **instrument.to_dict(),  # type: ignore[attr-defined]
            }
        return out
