"""Per-message trace spans.

A :class:`Span` is the trace-shaped view of one monitored message: the
paper's four :class:`~repro.core.records.MessageRecord` timestamps become
the *endpoint* phases (``created`` / ``published`` / ``arrived`` /
``delivered``), and live broker-side marks add the *interior* phases
(``broker_in`` / ``broker_out``) that the record book never sees.  All
times come from the one simulated clock, so traces are deterministic and
cross-middleware phase durations are directly comparable — the property
the paper manufactures by sending and receiving on the same node
(§III.E.2).

The :class:`Tracer` accumulates marks keyed by ``id(record)`` (records are
plain unhashable dataclasses, and the record book keeps every record alive
for the run, so ids are stable and unique) and materialises spans when a
harness run binds its book with :meth:`Tracer.bind_book`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.core.metrics import PhaseBreakdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.records import RecordBook

#: Phase names in life-cycle order.  ``created``..``delivered`` are the
#: record-book boundaries; ``broker_in``/``broker_out`` are live broker
#: marks, and ``edge_in``/``parked``/``edge_out`` are the gateway-tier hop
#: (upstream delivery into the gateway, the long-poll park that consumed
#: the event, and the write into the long-poll response).
PHASES = (
    "created",
    "published",
    "broker_in",
    "broker_out",
    "edge_in",
    "parked",
    "edge_out",
    "arrived",
    "delivered",
)

#: The subset of phases whose ordering is a schema invariant (interior
#: broker phases may legitimately precede ``published`` — e.g. a plog
#: append lands before the produce acknowledgement returns).
ORDERED_PHASES = ("created", "published", "arrived", "delivered")


@dataclass
class Span:
    """One message's life through one middleware."""

    middleware: str
    gen_id: int
    seq: int
    #: phase name -> sim time (seconds); missing phases were never reached.
    phases: dict[str, float] = field(default_factory=dict)
    #: phase name -> component that first stamped it (broker/servlet name).
    components: dict[str, str] = field(default_factory=dict)
    #: total live marks observed (> len(phases) when a message crossed
    #: several brokers, e.g. the Narada DBN).
    hops: int = 0
    #: fault windows (``kind@target``) overlapping this span's lifetime.
    annotations: list[str] = field(default_factory=list)

    # ------------------------------------------------------------ durations
    @property
    def complete(self) -> bool:
        """All four endpoint phases stamped (the paper's "delivered and
        fully timed" criterion for Fig 15)."""
        return all(p in self.phases for p in ORDERED_PHASES)

    @property
    def prt(self) -> float:
        """Publishing Response Time (seconds)."""
        return self.phases["published"] - self.phases["created"]

    @property
    def pt(self) -> float:
        """Process Time: middleware transit, published -> arrived."""
        return self.phases["arrived"] - self.phases["published"]

    @property
    def srt(self) -> float:
        """Subscribing Response Time: arrived -> delivered."""
        return self.phases["delivered"] - self.phases["arrived"]

    @property
    def rtt(self) -> float:
        return self.phases["delivered"] - self.phases["created"]

    def to_dict(self) -> dict:
        out: dict = {
            "middleware": self.middleware,
            "gen_id": self.gen_id,
            "seq": self.seq,
            "phases": {p: self.phases[p] for p in PHASES if p in self.phases},
        }
        if self.components:
            out["components"] = dict(self.components)
        if self.hops:
            out["hops"] = self.hops
        if self.annotations:
            out["annotations"] = list(self.annotations)
        return out


class Tracer:
    """Collects live phase marks and materialises spans per run."""

    def __init__(self) -> None:
        #: id(record) -> {phase: (time, component)} — first mark wins, so a
        #: DBN message's ``broker_in`` is the ingress broker.
        self._marks: dict[int, dict[str, tuple[float, str]]] = {}
        self._hops: dict[int, int] = {}
        self.spans: list[Span] = []
        self._span_by_record: dict[int, Span] = {}

    # ----------------------------------------------------------------- marks
    def mark(self, record: object, phase: str, t: float, component: str) -> None:
        """Record that ``record`` crossed ``phase`` at sim time ``t``."""
        marks = self._marks.setdefault(id(record), {})
        self._hops[id(record)] = self._hops.get(id(record), 0) + 1
        if phase not in marks:
            marks[phase] = (t, component)

    # ----------------------------------------------------------------- spans
    def bind_book(self, book: "RecordBook", middleware: str) -> list[Span]:
        """Materialise one span per record of ``book``.

        Endpoint phases come from the record's timestamps (identical data
        to the paper's record-book analysis, so span-based decompositions
        agree bit-for-bit with :func:`repro.core.metrics.decompose`);
        interior phases merge in from live marks.
        """
        spans: list[Span] = []
        for record in book.records:
            span = Span(middleware=middleware, gen_id=record.gen_id, seq=record.seq)
            span.phases["created"] = record.t_before_send
            if record.t_after_send is not None:
                span.phases["published"] = record.t_after_send
            if record.t_arrived is not None:
                span.phases["arrived"] = record.t_arrived
            if record.t_received is not None:
                span.phases["delivered"] = record.t_received
            marks = self._marks.get(id(record))
            if marks:
                span.hops = self._hops.get(id(record), 0)
                for phase, (t, component) in marks.items():
                    span.phases.setdefault(phase, t)
                    span.components.setdefault(phase, component)
            spans.append(span)
            self._span_by_record[id(record)] = span
        self.spans.extend(spans)
        return spans

    def spans_for_book(self, book: "RecordBook") -> list[Span]:
        """The spans a previous :meth:`bind_book` built for ``book``."""
        return [
            self._span_by_record[id(r)]
            for r in book.records
            if id(r) in self._span_by_record
        ]

    def adopt(self, book: "RecordBook", pairs: Iterable[tuple[int, Span]]) -> None:
        """Register externally materialised spans for ``book``'s records.

        ``pairs`` are ``(record_index, span)`` built by a fan-out worker's
        own :meth:`bind_book`; the record identities changed when the book
        crossed the process boundary, so :meth:`spans_for_book` needs the
        mapping rebuilt against the unpickled records.  The spans themselves
        must be appended to :attr:`spans` by the caller (which controls
        cross-book ordering)."""
        records = book.records
        for record_index, span in pairs:
            self._span_by_record[id(records[record_index])] = span


def phase_breakdown(
    spans: Iterable[Span], since: float = 0.0
) -> PhaseBreakdown:
    """Mean PRT / PT / SRT over complete spans created at/after ``since``.

    Numerically identical to :func:`repro.core.metrics.decompose` over the
    originating record book — the endpoint phases *are* the record's
    timestamps — which is what lets Fig 15 be rebuilt on spans without
    moving any measured number.
    """
    rows = [
        s for s in spans if s.complete and s.phases["created"] >= since
    ]
    if not rows:
        return PhaseBreakdown(float("nan"), float("nan"), float("nan"))
    n = len(rows)
    return PhaseBreakdown(
        prt_ms=sum(s.prt for s in rows) / n * 1e3,
        pt_ms=sum(s.pt for s in rows) / n * 1e3,
        srt_ms=sum(s.srt for s in rows) / n * 1e3,
    )
