"""repro.telemetry — tracing, metrics and resource sampling in one session.

The paper's contribution is its measurements, and its method is "identical
instrumentation on every middleware": the same record book, the same vmstat
loop, the same clock.  This package is that method as a subsystem.  One
:class:`Telemetry` session owns

* a :class:`~repro.telemetry.spans.Tracer` of per-message spans with phase
  boundaries (created/published/broker-in/broker-out/arrived/delivered),
* a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges
  and streaming histograms keyed by middleware/component,
* :class:`~repro.telemetry.samplers.ResourceSampler` probes replicating the
  Figs 6/13 CPU-idle/memory methodology,
* the fault windows a :class:`repro.faults.FaultScheduler` armed, so
  exported spans carry fault annotations.

**Telemetry is off by default and has zero behavioural impact.**  Hook
sites guard on :func:`repro.telemetry.context.current` returning ``None``;
no session means no extra events, no extra allocations, bit-identical
experiment outputs.  Activating a session adds passive observation only —
marks and samplers read sim state but never mutate it or draw randomness —
so measured numbers are unchanged even when tracing is on (asserted by
``tests/telemetry/test_spans.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.telemetry.context import activate, current, deactivate, session
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricKey,
    MetricsRegistry,
    P2Quantile,
    geometric_buckets,
)
from repro.telemetry.merge import (
    ImportedSampler,
    export_telemetry,
    merge_telemetry,
)
from repro.telemetry.samplers import ResourceSample, ResourceSampler
from repro.telemetry.spans import PHASES, Span, Tracer, phase_breakdown
from repro.telemetry.windows import (
    TimeWindow,
    WindowedQuantiles,
    complement_windows,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.core.records import RecordBook
    from repro.sim.kernel import Simulator

__all__ = [
    "Counter",
    "FaultWindow",
    "Gauge",
    "Histogram",
    "ImportedSampler",
    "MetricKey",
    "MetricsRegistry",
    "P2Quantile",
    "PHASES",
    "ResourceSample",
    "ResourceSampler",
    "Span",
    "Telemetry",
    "TimeWindow",
    "Tracer",
    "WindowedQuantiles",
    "activate",
    "complement_windows",
    "current",
    "deactivate",
    "export_telemetry",
    "geometric_buckets",
    "merge_telemetry",
    "phase_breakdown",
    "session",
]


class FaultWindow:
    """One armed fault's (kind, time window, target) for span annotation."""

    __slots__ = ("kind", "start", "end", "target")

    def __init__(self, kind: str, start: float, end: float, target: str):
        self.kind = kind
        self.start = start
        self.end = end
        self.target = target

    @property
    def label(self) -> str:
        return f"{self.kind}@{self.target}"

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end and start < self.end

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "target": self.target,
        }


class Telemetry:
    """One observation session, usually wrapping one or more harness runs."""

    def __init__(self, label: str = "telemetry"):
        self.label = label
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.samplers: list[ResourceSampler] = []
        #: Every fault window any run inside this session armed.
        self.fault_windows: list[FaultWindow] = []
        #: Windows armed since the last ``observe_run`` — runs are separate
        #: simulations whose clocks all start at zero, so windows only
        #: annotate the run they were armed in.
        self._pending_windows: list[FaultWindow] = []
        #: One summary dict per observed run, in observation order.
        self.runs: list[dict] = []

    # ----------------------------------------------------------------- marks
    def mark(
        self,
        record: Any,
        phase: str,
        t: float,
        middleware: str,
        component: str,
    ) -> None:
        """Live phase mark from a middleware hook (plus a phase counter)."""
        self.tracer.mark(record, phase, t, component)
        self.metrics.counter(middleware, component, f"span.{phase}").inc()

    # ---------------------------------------------------------------- faults
    def fault_window(
        self, kind: str, start: float, end: float, target: str
    ) -> None:
        """Register an armed fault's window (called by the scheduler)."""
        window = FaultWindow(kind, start, end, target)
        self.fault_windows.append(window)
        self._pending_windows.append(window)

    # -------------------------------------------------------------- samplers
    def sample_node(
        self,
        sim: "Simulator",
        node: "Node",
        middleware: str,
        interval: float = 1.0,
        resources: Optional[Mapping[str, Any]] = None,
    ) -> ResourceSampler:
        """Attach a Figs 6/13-style CPU/memory probe to ``node``."""
        sampler = ResourceSampler(
            sim,
            node,
            registry=self.metrics,
            middleware=middleware,
            interval=interval,
            resources=resources,
        )
        self.samplers.append(sampler)
        return sampler

    # ------------------------------------------------------------------ runs
    def observe_run(
        self,
        book: "RecordBook",
        middleware: str,
        measure_since: float = 0.0,
        label: str = "",
    ) -> list[Span]:
        """Bind a finished run's record book into spans and roll up metrics.

        Called by the harness run functions (``narada_run`` / ``rgma_run``
        / ``plog_run``) when a session is active.  Endpoint phases derive
        from the record book — the same data every paper metric uses — so
        span-based analyses agree exactly with the record-based ones.
        """
        spans = self.tracer.bind_book(book, middleware)
        for window in self._pending_windows:
            for span in spans:
                start = span.phases["created"]
                end = span.phases.get("delivered", float("inf"))
                if window.overlaps(start, end):
                    span.annotations.append(window.label)
        windows, self._pending_windows = self._pending_windows, []

        harness = self.metrics
        harness.counter(middleware, "harness", "messages_sent").inc(
            sum(1 for s in spans if s.phases["created"] >= measure_since)
        )
        delivered = [
            s
            for s in spans
            if "delivered" in s.phases and s.phases["created"] >= measure_since
        ]
        harness.counter(middleware, "harness", "messages_delivered").inc(
            len(delivered)
        )
        rtt = harness.histogram(middleware, "harness", "rtt_ms")
        for span in delivered:
            rtt.observe(span.rtt * 1e3)
        self.runs.append(
            {
                "label": label or f"{middleware} run {len(self.runs)}",
                "middleware": middleware,
                "spans": len(spans),
                "delivered": len(delivered),
                "measure_since": measure_since,
                "fault_windows": [w.to_dict() for w in windows],
            }
        )
        return spans

    def spans_for_book(self, book: "RecordBook") -> list[Span]:
        return self.tracer.spans_for_book(book)
