"""Telemetry fan-out: export a worker session, merge it into a parent.

When the harness runs sweep points across a :class:`ProcessPoolExecutor`
(:mod:`repro.harness.parallel`), each worker observes its runs under a
*fresh* :class:`~repro.telemetry.Telemetry` session — the parent's session
object cannot cross the process boundary and come back.  The worker ships
:func:`export_telemetry`'s picklable snapshot alongside its run results,
and the parent folds it in with :func:`merge_telemetry`, so ``--trace`` /
``--metrics-out`` outputs are complete under any ``--jobs`` value.

Merge semantics:

* **spans** — appended verbatim, and re-bound to the *unpickled* record
  books via :meth:`~repro.telemetry.spans.Tracer.adopt` (record identity
  changes across the pickle round-trip), so ``spans_for_book`` keeps
  working for figure builders such as ``fig15_threeway``;
* **counters / gauges / histogram buckets** — merged exactly;
* **P² quantiles** — merged exactly while either side holds raw samples,
  approximately (observation-weighted markers) once both have collapsed to
  markers; the exact bucketed quantiles are unaffected;
* **resource samplers** — imported as read-only :class:`ImportedSampler`
  shims exposing the ``node.name`` / ``samples`` / ``summary()`` surface
  the exporters consume.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cluster.vmstat import VmStatSummary
from repro.telemetry.samplers import ResourceSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.records import RecordBook
    from repro.telemetry import Telemetry

EXPORT_VERSION = 1


class ImportedSampler:
    """Read-only stand-in for a fan-out worker's ResourceSampler.

    Quacks like :class:`~repro.telemetry.samplers.ResourceSampler` for every
    consumer in :mod:`repro.telemetry.exporters` (``node.name``,
    ``middleware``, ``samples``, ``summary``); it owns no simulator and
    cannot sample further.
    """

    def __init__(
        self,
        node: str,
        middleware: str,
        interval: float,
        samples: Sequence[ResourceSample],
    ):
        self.node = SimpleNamespace(name=node)
        self.middleware = middleware
        self.interval = interval
        self.samples = list(samples)

    def stop(self) -> None:  # parity with ResourceSampler
        pass

    def summary(self, warmup: float = 0.0) -> VmStatSummary:
        used = [s for s in self.samples if s.time >= warmup]
        if not used:
            return VmStatSummary(100.0, 0.0, 0)
        mean_idle = 100.0 * sum(s.cpu_idle_fraction for s in used) / len(used)
        mems = [s.memory_used_bytes for s in used]
        return VmStatSummary(
            mean_cpu_idle_percent=mean_idle,
            memory_consumption_bytes=max(mems) - min(mems),
            samples=len(used),
        )


def export_telemetry(
    telemetry: "Telemetry", books: Iterable["RecordBook"] = ()
) -> dict:
    """A picklable snapshot of ``telemetry`` for shipping to the parent.

    ``books`` are the record books travelling back with the worker's run
    results, in an order the parent can reproduce; each book's spans are
    exported as ``(record_index, span_index)`` pairs so the parent can
    re-bind them to the unpickled records.
    """
    tracer = telemetry.tracer
    span_index = {id(span): i for i, span in enumerate(tracer.spans)}
    book_bindings: list[list[tuple[int, int]]] = []
    for book in books:
        by_record = tracer._span_by_record
        book_bindings.append(
            [
                (record_index, span_index[id(by_record[id(record)])])
                for record_index, record in enumerate(book.records)
                if id(record) in by_record
            ]
        )
    return {
        "version": EXPORT_VERSION,
        "label": telemetry.label,
        "spans": tracer.spans,
        "book_bindings": book_bindings,
        "metrics": telemetry.metrics,
        "runs": telemetry.runs,
        "fault_windows": telemetry.fault_windows,
        "samplers": [
            {
                "node": sampler.node.name,
                "middleware": sampler.middleware,
                "interval": sampler.interval,
                "samples": sampler.samples,
            }
            for sampler in telemetry.samplers
        ],
    }


def merge_telemetry(
    parent: "Telemetry", export: dict, books: Sequence["RecordBook"] = ()
) -> None:
    """Fold a worker's :func:`export_telemetry` snapshot into ``parent``.

    ``books`` must be the *unpickled* record books, in the same order they
    were passed to :func:`export_telemetry` worker-side.
    """
    version = export.get("version")
    if version != EXPORT_VERSION:
        raise ValueError(f"unknown telemetry export version {version!r}")
    spans = export["spans"]
    parent.tracer.spans.extend(spans)
    bindings = export["book_bindings"]
    if len(books) != len(bindings):
        raise ValueError(
            f"{len(books)} books for {len(bindings)} exported bindings"
        )
    for book, pairs in zip(books, bindings):
        parent.tracer.adopt(
            book, [(record_index, spans[i]) for record_index, i in pairs]
        )
    parent.metrics.merge_from(export["metrics"])
    parent.runs.extend(export["runs"])
    parent.fault_windows.extend(export["fault_windows"])
    parent.samplers.extend(
        ImportedSampler(**sampler) for sampler in export["samplers"]
    )
