"""Periodic CPU-idle and memory probes — the paper's Figs 6/13 methodology.

"CPU idle time ... calculated as the average of CPU idle time during the
tests" and "memory consumption ... as the difference between peak and
bottom values" (§III.C).  :class:`ResourceSampler` reproduces both, like
:class:`repro.cluster.vmstat.VmStat`, but feeds the telemetry registry so
one session sees every deployment's resources side by side; it can also
watch queueing structures (:class:`repro.sim.Store` / ``Resource`` /
``Container``) via their read-only ``snapshot()`` surface.

Samplers are strictly passive: they read node and resource state, never
draw from an RNG stream and never mutate anything the workload touches —
so even a telemetry-*enabled* run measures the same numbers as a disabled
one (the extra timer events cannot reorder independently-scheduled events:
the kernel breaks time ties by scheduling sequence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Mapping, Optional

from repro.cluster.vmstat import VmStatSummary

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator
    from repro.telemetry.metrics import MetricsRegistry


@dataclass
class ResourceSample:
    """One probe of a node."""

    time: float
    cpu_idle_fraction: float
    memory_used_bytes: float


class ResourceSampler:
    """Samples one node (and optional queues) at a fixed interval."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        registry: Optional["MetricsRegistry"] = None,
        middleware: str = "",
        interval: float = 1.0,
        resources: Optional[Mapping[str, Any]] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.node = node
        self.registry = registry
        self.middleware = middleware or "cluster"
        self.interval = interval
        #: name -> object with a ``snapshot() -> dict[str, float]`` method.
        self.resources = dict(resources or {})
        self.samples: list[ResourceSample] = []
        self._last_busy = node.cpu_busy_time
        self._running = True
        sim.process(self._sampler(), name=f"telemetry.sampler.{node.name}")

    def stop(self) -> None:
        self._running = False

    def _sampler(self) -> Generator[Any, Any, None]:
        while self._running:
            yield self.sim.timeout(self.interval)
            busy = self.node.cpu_busy_time
            busy_delta = busy - self._last_busy
            self._last_busy = busy
            idle = max(0.0, 1.0 - busy_delta / self.interval)
            memory = self.node.memory_used_bytes
            self.samples.append(
                ResourceSample(
                    time=self.sim.now,
                    cpu_idle_fraction=idle,
                    memory_used_bytes=memory,
                )
            )
            if self.registry is not None:
                component = self.node.name
                self.registry.gauge(
                    self.middleware, component, "cpu_idle_percent"
                ).set(idle * 100.0)
                self.registry.gauge(
                    self.middleware, component, "memory_used_bytes"
                ).set(memory)
                for name, resource in self.resources.items():
                    for field_name, value in resource.snapshot().items():
                        self.registry.gauge(
                            self.middleware, component, f"{name}.{field_name}"
                        ).set(value)

    def summary(self, warmup: float = 0.0) -> VmStatSummary:
        """The paper's two per-node numbers, over samples past ``warmup``."""
        used = [s for s in self.samples if s.time >= warmup]
        if not used:
            return VmStatSummary(100.0, 0.0, 0)
        mean_idle = 100.0 * sum(s.cpu_idle_fraction for s in used) / len(used)
        mems = [s.memory_used_bytes for s in used]
        return VmStatSummary(
            mean_cpu_idle_percent=mean_idle,
            memory_consumption_bytes=max(mems) - min(mems),
            samples=len(used),
        )
