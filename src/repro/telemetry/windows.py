"""Time-windowed quantiles: during-burst vs steady-state tails.

Scenario scorecards need "P99 while the alarm storm was blowing" next to
"P99 in calm air" — the same RTT population sliced by *send time* into
labeled :class:`TimeWindow` slices.  :class:`WindowedQuantiles` does the
slicing and keeps the raw samples per label, so

* quantiles are exact (``np.percentile`` over the full slice), not
  streaming approximations, and
* slicing per parallel worker and merging in point order is byte-identical
  to slicing the serially-merged record book: ``merge`` extends the sample
  lists in call order, exactly like ``RecordBook.merge`` extends records
  (asserted by ``tests/telemetry/test_windows.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.records import RecordBook


@dataclass(frozen=True)
class TimeWindow:
    """One labeled slice of simulated time: ``start`` <= t < ``end``."""

    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("time window must end after it starts")

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


def complement_windows(
    windows: Sequence[TimeWindow], start: float, end: float, label: str
) -> tuple[TimeWindow, ...]:
    """The gaps between ``windows`` inside ``[start, end)``, as ``label``.

    This is how a scenario's steady-state slice is derived from its burst
    slices: everything in the measurement window that no burst covers.
    """
    edges = sorted(
        (max(w.start, start), min(w.end, end))
        for w in windows
        if w.end > start and w.start < end
    )
    gaps: list[TimeWindow] = []
    cursor = start
    for lo, hi in edges:
        if lo > cursor:
            gaps.append(TimeWindow(label, cursor, lo))
        cursor = max(cursor, hi)
    if cursor < end:
        gaps.append(TimeWindow(label, cursor, end))
    return tuple(gaps)


class WindowedQuantiles:
    """Per-label RTT samples, sliced by a timestamp at observe time.

    Several windows may share a label (a storm front is many regional burst
    windows, all ``"burst"``); their samples pool into one population.
    """

    def __init__(self, windows: Iterable[TimeWindow]):
        self.windows = tuple(windows)
        self._samples: dict[str, list[float]] = {
            w.label: [] for w in self.windows
        }

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self._samples)

    def observe(self, t: float, value: float) -> None:
        """File ``value`` under every window containing ``t``."""
        for w in self.windows:
            if w.contains(t):
                self._samples[w.label].append(value)

    def observe_book(self, book: "RecordBook", since: float = 0.0) -> None:
        """Slice a record book's delivered RTTs by send time."""
        for record in book.records:
            if record.delivered and record.t_before_send >= since:
                self.observe(record.t_before_send, record.rtt)

    def merge(self, other: "WindowedQuantiles") -> None:
        """Append another slicer's samples (same labels required) in order."""
        if set(other._samples) - set(self._samples):
            raise ValueError(
                f"cannot merge windows with labels {sorted(other._samples)} "
                f"into {sorted(self._samples)}"
            )
        for label, values in other._samples.items():
            self._samples[label].extend(values)

    def count(self, label: str) -> int:
        return len(self._samples[label])

    def samples(self, label: str) -> np.ndarray:
        return np.asarray(self._samples[label], dtype=float)

    def quantile(self, label: str, q: float) -> float:
        """The ``q``-quantile (0-100) of one label's slice; NaN when empty."""
        values = self._samples[label]
        if not values:
            return float("nan")
        return float(np.percentile(np.asarray(values, dtype=float), q))

    def p99_ms(self, label: str) -> float:
        return self.quantile(label, 99) * 1e3
