"""Exporters: JSONL trace dump, paper-style text tables, result bridge.

The JSONL trace format is line-delimited JSON with a self-describing
header (the "local text file for later analysis" of §III.B, grown up):

* line 1 — ``{"kind": "header", "schema": "repro.telemetry.trace",
  "version": 1, ...}``;
* then one ``{"kind": "fault_window", ...}`` line per armed fault;
* then one ``{"kind": "span", ...}`` line per traced message, with phase
  times in simulated seconds.

:func:`validate_trace_file` re-reads a dump and checks the schema — the CI
trace-smoke step runs it against a fresh ``--trace`` export.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Optional

from repro.core.experiment import ExperimentResult
from repro.core.report import render_table
from repro.telemetry.spans import ORDERED_PHASES, PHASES, phase_breakdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

TRACE_SCHEMA = "repro.telemetry.trace"
TRACE_VERSION = 1


class TraceSchemaError(ValueError):
    """A trace file violated the JSONL schema."""


# ------------------------------------------------------------------- writing

def write_trace_jsonl(telemetry: "Telemetry", path: str) -> int:
    """Dump the session's spans (and fault windows) to ``path``.

    Returns the number of span lines written.
    """
    spans = telemetry.tracer.spans
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "kind": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "label": telemetry.label,
            "runs": telemetry.runs,
            "span_count": len(spans),
        }
        fh.write(json.dumps(header) + "\n")
        for window in telemetry.fault_windows:
            # The window's own "kind" (packet_loss, ...) must not collide
            # with the line-kind discriminator, so it ships as fault_kind.
            doc = window.to_dict()
            doc["fault_kind"] = doc.pop("kind")
            fh.write(json.dumps({"kind": "fault_window", **doc}) + "\n")
        for span in spans:
            fh.write(json.dumps({"kind": "span", **span.to_dict()}) + "\n")
    return len(spans)


def write_metrics_json(telemetry: "Telemetry", path: str) -> None:
    """Dump the metrics registry (plus sampler summaries) as one JSON doc."""
    doc = {
        "label": telemetry.label,
        "metrics": telemetry.metrics.to_dict(),
        "samplers": [
            {
                "node": s.node.name,
                "middleware": s.middleware,
                "samples": len(s.samples),
                **_sampler_summary(s),
            }
            for s in telemetry.samplers
        ],
        "runs": telemetry.runs,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _sampler_summary(sampler) -> dict:
    summary = sampler.summary()
    return {
        "mean_cpu_idle_percent": summary.mean_cpu_idle_percent,
        "memory_consumption_mb": summary.memory_consumption_mb,
    }


# ---------------------------------------------------------------- validation

def _check(condition: bool, line_no: int, message: str) -> None:
    if not condition:
        raise TraceSchemaError(f"line {line_no}: {message}")


def validate_trace_span(span: dict, line_no: int = 0) -> None:
    """Schema-check one span object (raises :class:`TraceSchemaError`)."""
    _check(isinstance(span.get("middleware"), str) and span["middleware"] != "",
           line_no, "span.middleware must be a non-empty string")
    for field_name in ("gen_id", "seq"):
        _check(isinstance(span.get(field_name), int),
               line_no, f"span.{field_name} must be an integer")
    phases = span.get("phases")
    _check(isinstance(phases, dict) and len(phases) > 0,
           line_no, "span.phases must be a non-empty object")
    for name, value in phases.items():
        _check(name in PHASES, line_no, f"unknown phase {name!r}")
        _check(isinstance(value, (int, float)) and value == value,
               line_no, f"phase {name!r} time must be a finite number")
    # Causal orderings only.  'published' is a publish *acknowledgement*
    # stamp, which can land after delivery (a plog produce ack or an R-GMA
    # insert response racing the consumer's poll), so published-vs-arrived is
    # deliberately unconstrained; interior broker phases likewise (a plog
    # append precedes its ack).
    for earlier, later in (
        ("created", "published"),
        ("created", "arrived"),
        ("arrived", "delivered"),
    ):
        if earlier in phases and later in phases:
            _check(phases[earlier] <= phases[later], line_no,
                   f"phase {earlier!r} at {phases[earlier]} is after "
                   f"{later!r} at {phases[later]}")


def validate_trace_file(path: str) -> dict:
    """Validate a ``--trace`` JSONL dump; returns a summary dict."""
    spans = complete = windows = 0
    saw_header = False
    middlewares: set[str] = set()
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"line {line_no}: not JSON: {exc}") from exc
            _check(isinstance(obj, dict), line_no, "line must be an object")
            kind = obj.get("kind")
            if line_no == 1:
                _check(kind == "header", line_no, "first line must be the header")
                _check(obj.get("schema") == TRACE_SCHEMA, line_no,
                       f"schema must be {TRACE_SCHEMA!r}")
                _check(obj.get("version") == TRACE_VERSION, line_no,
                       f"version must be {TRACE_VERSION}")
                saw_header = True
                continue
            if kind == "fault_window":
                _check(
                    isinstance(obj.get("fault_kind"), str)
                    and obj["fault_kind"] != "",
                    line_no, "fault_window needs a fault_kind",
                )
                _check(
                    isinstance(obj.get("start"), (int, float))
                    and isinstance(obj.get("end"), (int, float))
                    and obj["start"] <= obj["end"],
                    line_no, "fault_window needs start <= end",
                )
                windows += 1
                continue
            _check(kind == "span", line_no, f"unknown line kind {kind!r}")
            validate_trace_span(obj, line_no)
            spans += 1
            middlewares.add(obj["middleware"])
            if all(p in obj["phases"] for p in ORDERED_PHASES):
                complete += 1
    if not saw_header:
        raise TraceSchemaError("empty trace file (no header line)")
    # A header-only file is otherwise valid (nothing traced is legal).
    return {
        "spans": spans,
        "complete": complete,
        "fault_windows": windows,
        "middlewares": sorted(middlewares),
    }


# -------------------------------------------------------------- text tables

def metrics_tables(telemetry: "Telemetry") -> str:
    """Paper-style text tables for a whole session."""
    parts: list[str] = [f"== telemetry: {telemetry.label} =="]

    by_middleware: dict[str, list] = {}
    for span in telemetry.tracer.spans:
        by_middleware.setdefault(span.middleware, []).append(span)
    if by_middleware:
        rows = []
        for middleware in sorted(by_middleware):
            spans = by_middleware[middleware]
            breakdown = phase_breakdown(spans)
            complete = sum(1 for s in spans if s.complete)
            annotated = sum(1 for s in spans if s.annotations)
            rows.append([
                middleware, len(spans), complete, annotated,
                breakdown.prt_ms, breakdown.pt_ms, breakdown.srt_ms,
                breakdown.rtt_ms,
            ])
        parts.append(render_table(
            ["middleware", "spans", "complete", "in-fault", "PRT (ms)",
             "PT (ms)", "SRT (ms)", "RTT (ms)"],
            rows,
        ))

    counter_rows, gauge_rows, histogram_rows = [], [], []
    for key, instrument in telemetry.metrics:
        if instrument.kind == "counter":
            counter_rows.append([str(key), instrument.value])
        elif instrument.kind == "gauge":
            gauge_rows.append([
                str(key), instrument.value, instrument.min, instrument.max,
                instrument.mean,
            ])
        else:
            histogram_rows.append([
                str(key), instrument.n, instrument.mean,
                instrument.quantile_p2(0.50), instrument.quantile_p2(0.95),
                instrument.quantile_p2(0.99), instrument.quantile(0.99),
            ])
    if counter_rows:
        parts.append(render_table(["counter", "value"], counter_rows))
    if gauge_rows:
        parts.append(render_table(
            ["gauge", "last", "min", "max", "mean"], gauge_rows
        ))
    if histogram_rows:
        parts.append(render_table(
            ["histogram", "n", "mean", "p50 (P2)", "p95 (P2)", "p99 (P2)",
             "p99 (bucket)"],
            histogram_rows,
        ))

    if telemetry.samplers:
        parts.append(render_table(
            ["node", "middleware", "CPU idle %", "memory (MB)", "samples"],
            [
                [
                    s.node.name,
                    s.middleware,
                    s.summary().mean_cpu_idle_percent,
                    s.summary().memory_consumption_mb,
                    len(s.samples),
                ]
                for s in telemetry.samplers
            ],
        ))
    return "\n".join(parts)


# ------------------------------------------------------------- result bridge

def to_experiment_result(
    telemetry: "Telemetry", experiment_id: str = "telemetry_session"
) -> ExperimentResult:
    """Bridge a session into the harness's :class:`ExperimentResult`.

    The series are per-middleware cumulative phase boundaries (the Fig 15
    shape); the table is the decomposition plus delivery counts.
    """
    result = ExperimentResult(
        experiment_id,
        f"telemetry session: {telemetry.label}",
        "phase",
        "millisecond",
    )
    by_middleware: dict[str, list] = {}
    for span in telemetry.tracer.spans:
        by_middleware.setdefault(span.middleware, []).append(span)
    rows = []
    for middleware in sorted(by_middleware):
        spans = by_middleware[middleware]
        breakdown = phase_breakdown(spans)
        cumulative = [
            0.0,
            breakdown.prt_ms,
            breakdown.prt_ms + breakdown.pt_ms,
            breakdown.rtt_ms,
        ]
        for x, value in enumerate(cumulative):
            result.add_point(middleware, x, value)
        delivered = sum(1 for s in spans if "delivered" in s.phases)
        rows.append([
            middleware, len(spans), delivered, breakdown.prt_ms,
            breakdown.pt_ms, breakdown.srt_ms, breakdown.rtt_ms,
        ])
    result.table = (
        ["middleware", "spans", "delivered", "PRT (ms)", "PT (ms)",
         "SRT (ms)", "RTT (ms)"],
        rows,
    )
    for run in telemetry.runs:
        result.note(
            f"run {run['label']}: {run['delivered']}/{run['spans']} spans "
            f"delivered"
            + (
                f", {len(run['fault_windows'])} fault windows"
                if run["fault_windows"]
                else ""
            )
        )
    if telemetry.fault_windows:
        result.meta["fault_windows"] = [
            w.to_dict() for w in telemetry.fault_windows
        ]
    return result
