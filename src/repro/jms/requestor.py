"""JMS request/reply: TopicRequestor over temporary destinations.

The standard JMS pattern for the control-plane side of monitoring ("if a
power generator has been switched on but does not respond for a long time
then it will be considered to be malfunctioning", §I): send a command,
correlate the reply on a temporary topic, time out if nothing comes back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.jms.destination import TemporaryTopic, Topic
from repro.jms.errors import IllegalStateException
from repro.jms.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.jms.session import Session


class TopicRequestor:
    """Synchronous request/reply over a topic.

    Creates a per-requestor temporary reply topic; each ``request`` stamps
    ``reply_to`` + a correlation id, publishes, and waits for the matching
    reply (or times out, returning None — the malfunction signal).
    """

    def __init__(self, session: "Session", topic: Topic):
        self.session = session
        self.topic = topic
        self.reply_topic = TemporaryTopic.create()
        self._publisher = session.create_publisher(topic)
        self._consumer = None  # created lazily (subscription is a network op)
        self._seq = 0

    def _ensure_consumer(self) -> Generator[Any, Any, None]:
        if self._consumer is None:
            self._consumer = yield from self.session.create_consumer(
                self.reply_topic
            )

    def request(
        self, message: Message, timeout: Optional[float] = None
    ) -> Generator[Any, Any, Optional[Message]]:
        """Publish ``message`` and wait for its correlated reply."""
        if self.session.closed:
            raise IllegalStateException("session is closed")
        yield from self._ensure_consumer()
        self._seq += 1
        correlation = f"{self.reply_topic.name}#{self._seq}"
        message.reply_to = self.reply_topic
        message.correlation_id = correlation
        yield from self._publisher.publish(message)
        deadline = (
            None if timeout is None else self.session.sim.now + timeout
        )
        while True:
            remaining = (
                None if deadline is None else max(0.0, deadline - self.session.sim.now)
            )
            reply = yield from self._consumer.receive(timeout=remaining)
            if reply is None:
                return None  # timed out: the responder is "malfunctioning"
            if reply.correlation_id == correlation:
                return reply
            # A stale reply from an earlier timed-out request: discard.

    def close(self) -> Generator[Any, Any, None]:
        if self._consumer is not None:
            yield from self._consumer.close()


def reply_to(
    session: "Session", request: Message, reply: Message
) -> Generator[Any, Any, None]:
    """Responder-side helper: send ``reply`` to the request's reply topic."""
    if request.reply_to is None:
        raise IllegalStateException("request carries no reply_to")
    reply.correlation_id = request.correlation_id
    producer = session.create_producer(request.reply_to)
    yield from producer.send(reply)
    producer.close()
