"""JMS destinations.

"Data are discovered by destination.  There are two kinds of destinations:
queue and topic" (paper §II.B).  Topics fan a message out to every matching
subscriber (publish/subscribe); queues hand each message to exactly one
receiver (point-to-point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

_temp_ids = count(1)


@dataclass(frozen=True)
class Destination:
    """Base class: a named delivery target."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("destination name must be non-empty")


@dataclass(frozen=True)
class Topic(Destination):
    """Publish/subscribe destination: all matching subscribers receive."""


@dataclass(frozen=True)
class Queue(Destination):
    """Point-to-point destination: exactly one receiver per message."""


@dataclass(frozen=True)
class TemporaryTopic(Topic):
    """Connection-scoped topic (e.g. for reply-to patterns)."""

    @staticmethod
    def create() -> "TemporaryTopic":
        return TemporaryTopic(name=f"$TMP.TOPIC.{next(_temp_ids)}")


@dataclass(frozen=True)
class TemporaryQueue(Queue):
    """Connection-scoped queue."""

    @staticmethod
    def create() -> "TemporaryQueue":
        return TemporaryQueue(name=f"$TMP.QUEUE.{next(_temp_ids)}")
