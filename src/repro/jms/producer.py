"""Message producers and topic publishers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.jms.destination import Destination, Topic
from repro.jms.errors import IllegalStateException, InvalidDestinationException
from repro.jms.message import DeliveryMode, Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.jms.session import Session


class MessageProducer:
    """Sends messages to a destination (or per-send destinations)."""

    def __init__(self, session: "Session", destination: Optional[Destination]):
        self.session = session
        self.destination = destination
        self.closed = False
        # Per-producer defaults (JMS producer knobs).
        self.delivery_mode = DeliveryMode.NON_PERSISTENT
        self.priority = 4
        self.time_to_live = 0.0  # seconds; 0 = no expiration
        self.disable_message_timestamp = False
        self.messages_sent = 0

    def send(
        self,
        message: Message,
        destination: Optional[Destination] = None,
        delivery_mode: Optional[int] = None,
        priority: Optional[int] = None,
        time_to_live: Optional[float] = None,
    ) -> Generator[Any, Any, None]:
        """Stamp headers and hand the message to the session/provider.

        A generator: completing the send is a network operation whose
        duration is the paper's Publishing Response Time (PRT, §III.F.2).
        """
        if self.closed:
            raise IllegalStateException("producer is closed")
        dest = destination or self.destination
        if dest is None:
            raise InvalidDestinationException("no destination for send")
        sim = self.session.sim
        message.destination = dest
        message.message_id = self.session.next_message_id()
        if not self.disable_message_timestamp:
            message.timestamp = sim.now
        message.delivery_mode = (
            delivery_mode if delivery_mode is not None else self.delivery_mode
        )
        message.priority = priority if priority is not None else self.priority
        ttl = time_to_live if time_to_live is not None else self.time_to_live
        message.expiration = sim.now + ttl if ttl > 0 else 0.0
        yield from self.session._send(message)
        self.messages_sent += 1

    def close(self) -> None:
        self.closed = True


class TopicPublisher(MessageProducer):
    """javax.jms.TopicPublisher: a producer fixed to a topic."""

    def __init__(self, session: "Session", topic: Topic):
        if not isinstance(topic, Topic):
            raise InvalidDestinationException(f"{topic!r} is not a Topic")
        super().__init__(session, topic)

    @property
    def topic(self) -> Topic:
        assert isinstance(self.destination, Topic)
        return self.destination

    def publish(self, message: Message, **kwargs: Any) -> Generator[Any, Any, None]:
        yield from self.send(message, **kwargs)
