"""JMS message selectors: the SQL-92 conditional expression subset.

The paper's subscribers attach "a simple JMS selector (e.g. 'id<10000')"
(§III.E) — not to filter anything out, but because real deployments always
have one, and its evaluation is a real per-message broker cost.  This module
implements the full JMS 1.1 selector language:

* boolean connectives ``AND`` / ``OR`` / ``NOT`` with SQL three-valued logic,
* comparisons ``=  <>  <  <=  >  >=`` (ordering only between numbers),
* arithmetic ``+  -  *  /`` with unary sign,
* ``BETWEEN``, ``IN``, ``LIKE`` (with ``ESCAPE``), ``IS [NOT] NULL``,
* integer / float / string / boolean literals, identifiers over message
  properties and ``JMS*`` headers.

Selectors compile once into nested Python closures; ``matches(message)`` is
then a plain call — the hot path the broker runs for every (message,
subscription) pair.  SQL UNKNOWN is modelled as ``None``; a selector matches
only when it evaluates to exactly ``True``.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from repro.jms.errors import InvalidSelectorException

# --------------------------------------------------------------------- lexer

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$.]*)
  | (?P<op><>|<=|>=|[=<>+\-*/(),])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "ESCAPE", "IS", "NULL",
    "TRUE", "FALSE",
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any):
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.value!r}"


def _lex(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise InvalidSelectorException(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        raw = m.group()
        if kind == "float":
            tokens.append(_Token("number", float(raw)))
        elif kind == "int":
            tokens.append(_Token("number", int(raw)))
        elif kind == "string":
            tokens.append(_Token("string", raw[1:-1].replace("''", "'")))
        elif kind == "ident":
            upper = raw.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token(upper, upper))
            else:
                tokens.append(_Token("ident", raw))
        else:
            tokens.append(_Token(raw, raw))
    tokens.append(_Token("eof", None))
    return tokens


# --------------------------------------------------- three-valued primitives

Evaluator = Callable[[Any], Any]  # message -> True | False | None | number | str


def _bool3(v: Any) -> Any:
    """Coerce a value to SQL three-valued boolean: non-booleans are UNKNOWN."""
    if v is None or isinstance(v, bool):
        return v
    return None


def _and3(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is True and b is True:
        return True
    return None


def _or3(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is False and b is False:
        return False
    return None


def _not3(a: Any) -> Any:
    if a is None:
        return None
    return not a


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


# -------------------------------------------------------------------- parser

class _Parser:
    """Recursive-descent parser that emits evaluator closures directly."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _lex(text)
        self.pos = 0
        #: Identifiers referenced by the selector (for introspection).
        self.identifiers: set[str] = set()

    # -- token plumbing ----------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str) -> Optional[_Token]:
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind: str) -> _Token:
        tok = self.next()
        if tok.kind != kind:
            raise InvalidSelectorException(
                f"expected {kind} but found {tok.value!r} in {self.text!r}"
            )
        return tok

    # -- grammar -------------------------------------------------------------
    def parse(self) -> Evaluator:
        expr = self.parse_or()
        if self.peek().kind != "eof":
            raise InvalidSelectorException(
                f"trailing tokens after expression in {self.text!r}"
            )
        return expr

    def parse_or(self) -> Evaluator:
        left = self.parse_and()
        while self.accept("OR"):
            right = self.parse_and()
            left = (lambda l, r: lambda m: _or3(_bool3(l(m)), _bool3(r(m))))(
                left, right
            )
        return left

    def parse_and(self) -> Evaluator:
        left = self.parse_not()
        while self.accept("AND"):
            right = self.parse_not()
            left = (lambda l, r: lambda m: _and3(_bool3(l(m)), _bool3(r(m))))(
                left, right
            )
        return left

    def parse_not(self) -> Evaluator:
        if self.accept("NOT"):
            inner = self.parse_not()
            return lambda m: _not3(_bool3(inner(m)))
        return self.parse_predicate()

    def parse_predicate(self) -> Evaluator:
        """An arithmetic expression optionally extended by a condition."""
        left = self.parse_sum()
        tok = self.peek()

        if tok.kind in ("=", "<>", "<", "<=", ">", ">="):
            op = self.next().kind
            right = self.parse_sum()
            return self._comparison(op, left, right)

        negate = False
        if tok.kind == "NOT":
            # NOT here belongs to BETWEEN / IN / LIKE.
            self.next()
            negate = True
            tok = self.peek()
            if tok.kind not in ("BETWEEN", "IN", "LIKE"):
                raise InvalidSelectorException(
                    f"expected BETWEEN/IN/LIKE after NOT in {self.text!r}"
                )

        if self.accept("BETWEEN"):
            low = self.parse_sum()
            self.expect("AND")
            high = self.parse_sum()

            def between(m: Any) -> Any:
                v, lo, hi = left(m), low(m), high(m)
                if not (_is_number(v) and _is_number(lo) and _is_number(hi)):
                    return None
                return lo <= v <= hi

            return (lambda m: _not3(between(m))) if negate else between

        if self.accept("IN"):
            self.expect("(")
            values = {self.expect("string").value}
            while self.accept(","):
                values.add(self.expect("string").value)
            self.expect(")")

            def isin(m: Any) -> Any:
                v = left(m)
                if v is None:
                    return None
                if not isinstance(v, str):
                    return None
                return v in values

            return (lambda m: _not3(isin(m))) if negate else isin

        if self.accept("LIKE"):
            pattern = self.expect("string").value
            escape = None
            if self.accept("ESCAPE"):
                esc = self.expect("string").value
                if len(esc) != 1:
                    raise InvalidSelectorException(
                        "ESCAPE must be a single character"
                    )
                escape = esc
            regex = _like_regex(pattern, escape)

            def like(m: Any) -> Any:
                v = left(m)
                if v is None:
                    return None
                if not isinstance(v, str):
                    return None
                return regex.fullmatch(v) is not None

            return (lambda m: _not3(like(m))) if negate else like

        if self.accept("IS"):
            isnot = bool(self.accept("NOT"))
            self.expect("NULL")
            if isnot:
                return lambda m: left(m) is not None
            return lambda m: left(m) is None

        # No condition follows: the raw expression flows upward.  Boolean
        # coercion happens at the connective / matches() layer, so that a
        # parenthesised arithmetic subexpression like ``(1 + 2) * 3`` keeps
        # its numeric value.
        return left

    @staticmethod
    def _comparison(op: str, left: Evaluator, right: Evaluator) -> Evaluator:
        def compare(m: Any) -> Any:
            a, b = left(m), right(m)
            if a is None or b is None:
                return None
            a_num, b_num = _is_number(a), _is_number(b)
            if op in ("=", "<>"):
                if a_num and b_num:
                    eq = a == b
                elif isinstance(a, bool) and isinstance(b, bool):
                    eq = a == b
                elif isinstance(a, str) and isinstance(b, str):
                    eq = a == b
                else:
                    return None  # incomparable types -> unknown
                return eq if op == "=" else not eq
            # Ordering comparisons: numbers only (JMS spec).
            if not (a_num and b_num):
                return None
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b

        return compare

    # -- arithmetic ---------------------------------------------------------
    def parse_sum(self) -> Evaluator:
        left = self.parse_product()
        while self.peek().kind in ("+", "-"):
            op = self.next().kind
            right = self.parse_product()
            left = self._arith(op, left, right)
        return left

    def parse_product(self) -> Evaluator:
        left = self.parse_unary()
        while self.peek().kind in ("*", "/"):
            op = self.next().kind
            right = self.parse_unary()
            left = self._arith(op, left, right)
        return left

    @staticmethod
    def _arith(op: str, left: Evaluator, right: Evaluator) -> Evaluator:
        def apply(m: Any) -> Any:
            a, b = left(m), right(m)
            if not (_is_number(a) and _is_number(b)):
                return None
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if b == 0:
                return None  # SQL division by zero -> unknown
            result = a / b
            # Integer division stays integral, like Java int arithmetic.
            if isinstance(a, int) and isinstance(b, int):
                return int(result) if result >= 0 else -int(-result)
            return result

        return apply

    def parse_unary(self) -> Evaluator:
        if self.accept("-"):
            inner = self.parse_unary()

            def negate(m: Any) -> Any:
                v = inner(m)
                return -v if _is_number(v) else None

            return negate
        if self.accept("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Evaluator:
        tok = self.next()
        if tok.kind == "number":
            value = tok.value
            return lambda m: value
        if tok.kind == "string":
            value = tok.value
            return lambda m: value
        if tok.kind == "TRUE":
            return lambda m: True
        if tok.kind == "FALSE":
            return lambda m: False
        if tok.kind == "ident":
            name = tok.value
            self.identifiers.add(name)
            return lambda m: m.selector_value(name)
        if tok.kind == "(":
            inner = self.parse_or()
            self.expect(")")
            return inner
        raise InvalidSelectorException(
            f"unexpected token {tok.value!r} in {self.text!r}"
        )


def _like_regex(pattern: str, escape: Optional[str]) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regex."""
    out: list[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape:
            i += 1
            if i >= len(pattern):
                raise InvalidSelectorException("dangling ESCAPE character")
            out.append(re.escape(pattern[i]))
        elif ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out), re.DOTALL)


# ----------------------------------------------------------------- public API

class Selector:
    """A compiled message selector.

    >>> sel = Selector("id < 10000 AND site IN ('uk', 'fr')")
    >>> sel.matches(msg)
    """

    def __init__(self, text: str):
        self.text = text.strip()
        if not self.text:
            raise InvalidSelectorException("empty selector")
        parser = _Parser(self.text)
        self._eval = parser.parse()
        self.identifiers = frozenset(parser.identifiers)

    def matches(self, message: Any) -> bool:
        """True iff the selector evaluates to TRUE (not FALSE, not UNKNOWN)."""
        return _bool3(self._eval(message)) is True

    def evaluate(self, message: Any) -> Any:
        """Three-valued result (True / False / None)."""
        return _bool3(self._eval(message))

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Selector({self.text!r})"


def parse_selector(text: Optional[str]) -> Optional[Selector]:
    """None/blank → None (match everything); otherwise a compiled Selector."""
    if text is None or not text.strip():
        return None
    return Selector(text)
