"""JMS exception hierarchy (javax.jms.* equivalents)."""


class JMSException(Exception):
    """Root of all JMS API failures."""


class InvalidSelectorException(JMSException):
    """The message selector string does not parse or type-check."""


class InvalidDestinationException(JMSException):
    """Operation on a destination the provider does not recognise."""


class MessageFormatException(JMSException):
    """Type mismatch reading or writing message fields/properties."""


class IllegalStateException(JMSException):
    """Operation invalid for the object's current state (e.g. closed)."""


class MessageNotWriteableException(MessageFormatException):
    """Attempt to modify a message in read-only mode."""
