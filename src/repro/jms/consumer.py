"""Message consumers: synchronous receive and asynchronous listeners.

"For synchronous transfer, the subscriber can either poll or wait for the
next message.  For asynchronous delivery, the subscriber registers itself as
a listening object, and the publisher will automatically send message by
invoking a method of the subscriber (callback)" (paper §II.B).  The paper's
receiving program uses the asynchronous path ("JMS notification mechanism").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.jms.destination import Destination, Topic
from repro.jms.errors import IllegalStateException, InvalidDestinationException
from repro.jms.message import Message
from repro.jms.selector import parse_selector
from repro.sim import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.jms.session import Session


class MessageConsumer:
    """Receives messages from one destination, optionally filtered."""

    def __init__(
        self,
        session: "Session",
        destination: Destination,
        selector_text: Optional[str] = None,
        listener: Optional[Callable[[Message], Any]] = None,
    ):
        self.session = session
        self.destination = destination
        self.selector = parse_selector(selector_text)  # validates eagerly
        self.selector_text = selector_text
        self.listener = listener
        self.closed = False
        self.messages_consumed = 0
        self._inbox: Store = Store(session.sim)
        self._handle: Any = None

    # ---------------------------------------------------------- registration
    def _register(self) -> Generator[Any, Any, None]:
        """Subscribe with the provider (network round trip)."""

        def deliver(message: Message) -> None:
            self.session.connection._route_delivery(self.session, self, message)

        self._handle = yield from self.session.connection.provider.subscribe(
            self.destination,
            self.selector_text,
            deliver,
            durable_name=getattr(self, "durable_name", None),
        )

    # -------------------------------------------------------------- receive
    def receive(
        self, timeout: Optional[float] = None
    ) -> Generator[Any, Any, Optional[Message]]:
        """Block for the next message; ``timeout`` seconds → None on expiry.

        ``timeout=0`` is the JMS ``receiveNoWait``.
        """
        if self.closed:
            raise IllegalStateException("consumer is closed")
        if self.listener is not None:
            raise IllegalStateException("receive() on a consumer with a listener")
        sim = self.session.sim
        if timeout == 0:
            if len(self._inbox):
                message = self._inbox.get_nowait()
                yield from self._consumed(message)
                return message
            return None
        get_ev = self._inbox.get()
        if timeout is None:
            message = yield get_ev
        else:
            deadline = sim.timeout(timeout)
            outcome = yield sim.any_of([get_ev, deadline])
            if get_ev not in outcome:
                self._inbox.cancel_get(get_ev)
                return None
            message = get_ev.value
        yield from self._consumed(message)
        return message

    def _consumed(self, message: Message) -> Generator[Any, Any, None]:
        message._set_read_only()
        self.messages_consumed += 1
        if message.expiration and self.session.sim.now > message.expiration:
            # Expired while parked: not delivered to the application,
            # but still acked away.
            yield from self.session._after_consume(message)
            return
        yield from self.session._after_consume(message)

    # ------------------------------------------------------------- listener
    def set_listener(self, listener: Callable[[Message], Any]) -> None:
        """Switch to asynchronous delivery.  Pending inbox messages are
        re-dispatched through the session's serial dispatcher."""
        self.listener = listener
        while len(self._inbox):
            message = self._inbox.get_nowait()
            self.session._dispatch_queue.put_nowait((self, message))

    # ----------------------------------------------------------------- close
    def close(self) -> Generator[Any, Any, None]:
        if self.closed:
            return
        self.closed = True
        if self._handle is not None:
            yield from self.session.connection.provider.unsubscribe(self._handle)


class TopicSubscriber(MessageConsumer):
    """javax.jms.TopicSubscriber, optionally durable."""

    def __init__(
        self,
        session: "Session",
        topic: Topic,
        selector_text: Optional[str] = None,
        listener: Optional[Callable[[Message], Any]] = None,
        durable_name: Optional[str] = None,
    ):
        if not isinstance(topic, Topic):
            raise InvalidDestinationException(f"{topic!r} is not a Topic")
        self.durable_name = durable_name
        super().__init__(session, topic, selector_text, listener)

    @property
    def topic(self) -> Topic:
        assert isinstance(self.destination, Topic)
        return self.destination

    @property
    def durable(self) -> bool:
        return self.durable_name is not None
