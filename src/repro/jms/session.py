"""JMS sessions: acknowledgement modes, transactions, serial dispatch.

The paper's tests ran "non-persistent delivery, non-durable subscription,
non-transaction, non-priority and AUTO_ACKNOWLEDGE settings unless otherwise
indicated" (§III.E), with test 2 switching to CLIENT_ACKNOWLEDGE.  Ack
behaviour is therefore a first-class experimental variable here:

* ``AUTO_ACKNOWLEDGE`` — the session acks each message right after its
  listener/receive completes (one ack message per data message);
* ``CLIENT_ACKNOWLEDGE`` — the application calls ``Message.acknowledge()``,
  which acks *all* messages consumed so far on the session (batching);
* ``DUPS_OK_ACKNOWLEDGE`` — the session acks lazily in fixed-size batches;
* ``SESSION_TRANSACTED`` — sends are buffered and consumed messages acked
  only at ``commit()``.

A session dispatches asynchronously-consumed messages serially (one
dispatcher process per session), matching the JMS single-threaded session
rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Protocol

from repro.jms.destination import Destination, Queue, Topic
from repro.jms.errors import IllegalStateException, JMSException
from repro.jms.message import Message
from repro.sim import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.jms.connection import Connection
    from repro.jms.consumer import MessageConsumer
    from repro.jms.producer import MessageProducer
    from repro.sim.kernel import Simulator


class AckMode:
    """javax.jms.Session acknowledgement-mode constants."""

    SESSION_TRANSACTED = 0
    AUTO_ACKNOWLEDGE = 1
    CLIENT_ACKNOWLEDGE = 2
    DUPS_OK_ACKNOWLEDGE = 3


class Provider(Protocol):
    """What a JMS provider (broker client runtime) must implement."""

    sim: "Simulator"

    def publish(self, message: Message) -> Generator[Any, Any, None]:
        """Deliver a message to the middleware."""
        ...  # pragma: no cover

    def subscribe(
        self,
        destination: Destination,
        selector_text: Optional[str],
        deliver: Callable[[Message], None],
        durable_name: Optional[str] = None,
    ) -> Generator[Any, Any, Any]:
        """Register a subscription; returns an opaque handle."""
        ...  # pragma: no cover

    def unsubscribe(self, handle: Any) -> Generator[Any, Any, None]:
        ...  # pragma: no cover

    def ack(self, messages: list[Message]) -> Generator[Any, Any, None]:
        """Acknowledge consumed messages to the middleware."""
        ...  # pragma: no cover

    def close(self) -> None:
        ...  # pragma: no cover


class Session:
    """A single-threaded context for producing and consuming messages."""

    #: DUPS_OK lazy-ack batch size.
    DUPS_OK_BATCH = 20

    def __init__(self, connection: "Connection", transacted: bool, ack_mode: int):
        if transacted:
            ack_mode = AckMode.SESSION_TRANSACTED
        if ack_mode not in (
            AckMode.SESSION_TRANSACTED,
            AckMode.AUTO_ACKNOWLEDGE,
            AckMode.CLIENT_ACKNOWLEDGE,
            AckMode.DUPS_OK_ACKNOWLEDGE,
        ):
            raise JMSException(f"invalid ack mode {ack_mode}")
        self.connection = connection
        self.transacted = transacted
        self.ack_mode = ack_mode
        self.closed = False
        self.sim = connection.provider.sim
        self.consumers: list["MessageConsumer"] = []
        self.producers: list["MessageProducer"] = []
        # Messages delivered but not yet acked (CLIENT / DUPS_OK / transacted).
        self._unacked: list[Message] = []
        # Buffered outbound messages (transacted sessions only).
        self._tx_sends: list[Message] = []
        # Serial dispatch queue for async consumers.
        self._dispatch_queue: Store = Store(self.sim)
        self._dispatcher = self.sim.process(self._dispatch_loop(), name="jms.session")

    # ------------------------------------------------------------ factories
    def create_producer(self, destination: Optional[Destination]) -> "MessageProducer":
        from repro.jms.producer import MessageProducer

        self._check_open()
        producer = MessageProducer(self, destination)
        self.producers.append(producer)
        return producer

    def create_publisher(self, topic: Topic) -> "TopicPublisherType":
        from repro.jms.producer import TopicPublisher

        self._check_open()
        publisher = TopicPublisher(self, topic)
        self.producers.append(publisher)
        return publisher

    def create_consumer(
        self,
        destination: Destination,
        selector: Optional[str] = None,
        listener: Optional[Callable[[Message], Any]] = None,
    ) -> Generator[Any, Any, "MessageConsumer"]:
        """Create (and register with the provider) a consumer.

        A generator: subscription registration is a network operation.
        """
        from repro.jms.consumer import MessageConsumer

        self._check_open()
        consumer = MessageConsumer(self, destination, selector, listener)
        yield from consumer._register()
        self.consumers.append(consumer)
        return consumer

    def create_subscriber(
        self,
        topic: Topic,
        selector: Optional[str] = None,
        listener: Optional[Callable[[Message], Any]] = None,
        durable_name: Optional[str] = None,
    ) -> Generator[Any, Any, "TopicSubscriberType"]:
        from repro.jms.consumer import TopicSubscriber

        self._check_open()
        subscriber = TopicSubscriber(self, topic, selector, listener, durable_name)
        yield from subscriber._register()
        self.consumers.append(subscriber)
        return subscriber

    # ------------------------------------------------------------- ids/time
    def next_message_id(self) -> str:
        """Connection-scoped: JMS message ids must be unique across sessions
        (brokers deduplicate routed events by id)."""
        return self.connection.next_message_id()

    # ---------------------------------------------------------------- sends
    def _send(self, message: Message) -> Generator[Any, Any, None]:
        self._check_open()
        if self.transacted:
            self._tx_sends.append(message)
            return
        yield from self.connection.provider.publish(message)

    # ------------------------------------------------------------- delivery
    def _on_delivery(self, consumer: "MessageConsumer", message: Message) -> None:
        """Provider push: enqueue for serial dispatch (async) or park in the
        consumer inbox (sync receive)."""
        if self.closed:
            return
        message._ack_session = self
        if consumer.listener is not None:
            self._dispatch_queue.put_nowait((consumer, message))
        else:
            consumer._inbox.put_nowait(message)

    def _dispatch_loop(self) -> Generator[Any, Any, None]:
        while True:
            consumer, message = yield self._dispatch_queue.get()
            if self.closed:
                return
            if message.expiration and self.sim.now > message.expiration:
                continue  # expired in transit; silently dropped per JMS
            message._set_read_only()
            result = consumer.listener(message)
            if hasattr(result, "send") and hasattr(result, "throw"):
                yield from result  # listener did simulated work
            consumer.messages_consumed += 1
            yield from self._after_consume(message)

    def _after_consume(self, message: Message) -> Generator[Any, Any, None]:
        # Acks are posted without gating the session dispatcher: the ack is
        # a protocol write, and waiting a full (possibly retransmitted) ack
        # round trip here would stall delivery of every queued message.
        if self.ack_mode == AckMode.AUTO_ACKNOWLEDGE:
            self.sim.process(
                self.connection.provider.ack([message]), name="jms.auto-ack"
            )
        elif self.ack_mode == AckMode.DUPS_OK_ACKNOWLEDGE:
            self._unacked.append(message)
            if len(self._unacked) >= self.DUPS_OK_BATCH:
                batch, self._unacked = self._unacked, []
                self.sim.process(
                    self.connection.provider.ack(batch), name="jms.dupsok-ack"
                )
        else:  # CLIENT_ACKNOWLEDGE or transacted: application/commit acks
            self._unacked.append(message)
        if False:  # pragma: no cover - keep generator shape for callers
            yield

    # -------------------------------------------------------- client ack/tx
    def _acknowledge_up_to(self, message: Message) -> None:
        """CLIENT_ACKNOWLEDGE: ack everything consumed so far (fire & forget)."""
        if self.ack_mode != AckMode.CLIENT_ACKNOWLEDGE:
            return
        if not self._unacked:
            return
        batch, self._unacked = self._unacked, []
        provider = self.connection.provider
        self.sim.process(provider.ack(batch), name="jms.client-ack")

    def commit(self) -> Generator[Any, Any, None]:
        self._check_open()
        if not self.transacted:
            raise IllegalStateException("commit() on non-transacted session")
        sends, self._tx_sends = self._tx_sends, []
        for message in sends:
            yield from self.connection.provider.publish(message)
        if self._unacked:
            batch, self._unacked = self._unacked, []
            yield from self.connection.provider.ack(batch)

    def rollback(self) -> Generator[Any, Any, None]:
        self._check_open()
        if not self.transacted:
            raise IllegalStateException("rollback() on non-transacted session")
        self._tx_sends.clear()
        # Redeliver consumed-but-uncommitted messages.
        redeliveries, self._unacked = self._unacked, []
        for message in redeliveries:
            message.redelivered = True
            for consumer in self.consumers:
                if consumer.destination == message.destination:
                    self._on_delivery(consumer, message)
                    break
        if False:  # pragma: no cover - keep generator shape
            yield

    def recover(self) -> None:
        """Non-transacted redelivery of unacked messages (CLIENT mode)."""
        if self.transacted:
            raise IllegalStateException("recover() on transacted session")
        redeliveries, self._unacked = self._unacked, []
        for message in redeliveries:
            message.redelivered = True
            for consumer in self.consumers:
                if consumer.destination == message.destination:
                    self._on_delivery(consumer, message)
                    break

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Wake the dispatcher so it can exit.
        self._dispatch_queue.put_nowait((None, None))
        for consumer in self.consumers:
            consumer.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise IllegalStateException("session is closed")


# typing aliases used in signatures above (avoid import cycles at runtime)
TopicPublisherType = Any
TopicSubscriberType = Any
