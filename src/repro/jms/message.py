"""JMS message types with JMS 1.1 header/property/body semantics.

The paper's workload packs "two integer, five float, two long, three double
and four string values ... in a JMS MapMessage as monitoring data"
(§III.E); our :class:`MapMessage` reproduces both the typed accessors and a
wire-size model so the LAN sees realistic byte counts (the paper observes
750 generators ≈ 75 msg/s at < 50 KB/s, i.e. ≤ ~660 B per message).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.jms.errors import MessageFormatException, MessageNotWriteableException


class DeliveryMode:
    """javax.jms.DeliveryMode constants."""

    NON_PERSISTENT = 1
    PERSISTENT = 2


#: Header overhead on the wire: message id, destination, timestamp, flags...
HEADER_WIRE_BYTES = 96
#: Per-property overhead: name length + type tag.
PROPERTY_OVERHEAD_BYTES = 3

#: JMS property/map value types and their wire sizes.
_TYPE_SIZES = {
    bool: 1,
    int: 8,  # conservatively long-sized
    float: 8,
}


def _value_wire_size(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return _TYPE_SIZES[bool]
    if isinstance(value, int):
        return _TYPE_SIZES[int]
    if isinstance(value, float):
        return _TYPE_SIZES[float]
    if isinstance(value, str):
        return 2 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return 4 + len(value)
    raise MessageFormatException(f"unsupported JMS value type {type(value).__name__}")


class Message:
    """Base message: headers + typed properties + provider bookkeeping."""

    def __init__(self) -> None:
        # Standard JMS headers.
        self.message_id: Optional[str] = None
        self.destination = None
        self.timestamp: Optional[float] = None
        self.correlation_id: Optional[str] = None
        self.reply_to = None
        self.delivery_mode: int = DeliveryMode.NON_PERSISTENT
        self.priority: int = 4
        self.expiration: float = 0.0  # 0 = never expires
        self.redelivered: bool = False
        self.jms_type: Optional[str] = None
        self._properties: dict[str, Any] = {}
        self._writable = True
        # Set by the receiving session so acknowledge() can reach it.
        self._ack_session = None

    # ----------------------------------------------------------- properties
    def set_property(self, name: str, value: Any) -> None:
        if not self._writable:
            raise MessageNotWriteableException("message is in read-only mode")
        if not name:
            raise MessageFormatException("property name must be non-empty")
        _value_wire_size(value)  # type check
        self._properties[name] = value

    def get_property(self, name: str) -> Any:
        return self._properties.get(name)

    def property_names(self) -> list[str]:
        return list(self._properties)

    def property_exists(self, name: str) -> bool:
        return name in self._properties

    def clear_properties(self) -> None:
        self._properties.clear()
        self._writable = True

    # ------------------------------------------------------------ selector
    def selector_value(self, identifier: str) -> Any:
        """Value an SQL selector identifier resolves to on this message.

        JMS selectors see user properties plus the ``JMSx``/``JMS`` headers.
        Unknown identifiers are NULL (SQL unknown), per spec.
        """
        header_map = {
            "JMSMessageID": self.message_id,
            "JMSCorrelationID": self.correlation_id,
            "JMSTimestamp": self.timestamp,
            "JMSDeliveryMode": (
                "PERSISTENT"
                if self.delivery_mode == DeliveryMode.PERSISTENT
                else "NON_PERSISTENT"
            ),
            "JMSPriority": self.priority,
            "JMSType": self.jms_type,
        }
        if identifier in header_map:
            return header_map[identifier]
        return self._properties.get(identifier)

    # ------------------------------------------------------------ ack/size
    def acknowledge(self) -> None:
        """CLIENT_ACKNOWLEDGE: ack this and all prior messages on the session."""
        if self._ack_session is not None:
            self._ack_session._acknowledge_up_to(self)

    def body_wire_size(self) -> int:
        return 0

    def wire_size(self) -> int:
        """Estimated bytes on the wire for this message."""
        props = sum(
            len(k.encode()) + PROPERTY_OVERHEAD_BYTES + _value_wire_size(v)
            for k, v in self._properties.items()
        )
        dest = len(self.destination.name.encode()) if self.destination else 0
        return HEADER_WIRE_BYTES + dest + props + self.body_wire_size()

    def _set_read_only(self) -> None:
        self._writable = False

    def copy(self) -> "Message":
        """Provider-side copy: what a broker hands to each subscriber."""
        import copy as _copy

        clone = _copy.copy(self)
        clone._properties = dict(self._properties)
        clone._writable = True
        clone._ack_session = None
        return clone


class TextMessage(Message):
    """A string body."""

    def __init__(self, text: str = ""):
        super().__init__()
        self.text = text

    def body_wire_size(self) -> int:
        return 4 + len(self.text.encode("utf-8"))


class ObjectMessage(Message):
    """A serialised object body; ``object_size`` approximates serialised form."""

    def __init__(self, obj: Any = None, object_size: Optional[int] = None):
        super().__init__()
        self.object = obj
        self._object_size = object_size

    def body_wire_size(self) -> int:
        if self._object_size is not None:
            return self._object_size
        return 64 + len(repr(self.object).encode("utf-8"))


class BytesMessage(Message):
    """A raw byte stream body."""

    def __init__(self, data: bytes = b""):
        super().__init__()
        self.data = bytearray(data)

    def write_bytes(self, data: bytes) -> None:
        if not self._writable:
            raise MessageNotWriteableException("message is in read-only mode")
        self.data.extend(data)

    def write_double(self, value: float) -> None:
        self.write_bytes(struct.pack(">d", value))

    def write_long(self, value: int) -> None:
        self.write_bytes(struct.pack(">q", value))

    def body_wire_size(self) -> int:
        return len(self.data)


class MapMessage(Message):
    """Typed name→value body — the paper's monitoring payload container."""

    #: JMS map value type tags, with their wire sizes.
    _SIZES = {
        "boolean": 1,
        "byte": 1,
        "short": 2,
        "char": 2,
        "int": 4,
        "long": 8,
        "float": 4,
        "double": 8,
    }

    def __init__(self) -> None:
        super().__init__()
        self._body: dict[str, tuple[str, Any]] = {}

    # Typed setters (subset of javax.jms.MapMessage).
    def _set(self, jms_type: str, name: str, value: Any) -> None:
        if not self._writable:
            raise MessageNotWriteableException("message is in read-only mode")
        if not name:
            raise MessageFormatException("map entry name must be non-empty")
        self._body[name] = (jms_type, value)

    def set_boolean(self, name: str, value: bool) -> None:
        self._set("boolean", name, bool(value))

    def set_int(self, name: str, value: int) -> None:
        self._set("int", name, int(value))

    def set_long(self, name: str, value: int) -> None:
        self._set("long", name, int(value))

    def set_float(self, name: str, value: float) -> None:
        self._set("float", name, float(value))

    def set_double(self, name: str, value: float) -> None:
        self._set("double", name, float(value))

    def set_string(self, name: str, value: str) -> None:
        self._set("string", name, str(value))

    def set_bytes(self, name: str, value: bytes) -> None:
        self._set("bytes", name, bytes(value))

    # Typed getters with JMS conversion rules (numeric widening only).
    def get(self, name: str) -> Any:
        entry = self._body.get(name)
        return entry[1] if entry else None

    def get_int(self, name: str) -> int:
        return self._coerce(name, int, ("byte", "short", "int"))

    def get_long(self, name: str) -> int:
        return self._coerce(name, int, ("byte", "short", "int", "long"))

    def get_float(self, name: str) -> float:
        return self._coerce(name, float, ("float",))

    def get_double(self, name: str) -> float:
        return self._coerce(name, float, ("float", "double"))

    def get_string(self, name: str) -> str:
        entry = self._body.get(name)
        if entry is None:
            raise MessageFormatException(f"no map entry {name!r}")
        return str(entry[1])

    def _coerce(self, name: str, target: type, allowed: tuple[str, ...]) -> Any:
        entry = self._body.get(name)
        if entry is None:
            raise MessageFormatException(f"no map entry {name!r}")
        jms_type, value = entry
        if jms_type == "string":
            try:
                return target(value)
            except ValueError as exc:
                raise MessageFormatException(str(exc)) from None
        if jms_type not in allowed:
            raise MessageFormatException(
                f"cannot read {jms_type} entry {name!r} as {target.__name__}"
            )
        return target(value)

    def item_names(self) -> list[str]:
        return list(self._body)

    def item_exists(self, name: str) -> bool:
        return name in self._body

    def body_wire_size(self) -> int:
        total = 2  # entry count
        for name, (jms_type, value) in self._body.items():
            total += 1 + len(name.encode("utf-8")) + 1  # name + type tag
            if jms_type == "string":
                total += 2 + len(str(value).encode("utf-8"))
            elif jms_type == "bytes":
                total += 4 + len(value)
            else:
                total += self._SIZES[jms_type]
        return total

    def copy(self) -> "MapMessage":
        clone = super().copy()
        clone._body = dict(self._body)  # type: ignore[attr-defined]
        return clone  # type: ignore[return-value]
