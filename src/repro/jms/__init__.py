"""Java Message Service (JMS 1.1) API model.

"JMS defines a set of Java APIs ... with which Java programmers can send and
receive messages via MOM in a uniform and vendor-neutral way regardless of
what the actual underlying middleware is" (paper §II.B).  This package is
that API surface, in Python: message types (the paper's workload uses
``MapMessage``), destinations, sessions with the standard acknowledgement
modes, producers/publishers, consumers/subscribers with synchronous receive
and asynchronous listeners, and a complete SQL-92 message-selector engine
(the paper's subscribers use the selector ``"id<10000"``).

The API is provider-neutral: it talks to any object implementing
:class:`repro.jms.session.Provider` — :mod:`repro.narada` supplies the
broker-backed implementation.
"""

from repro.jms.errors import (
    IllegalStateException,
    InvalidDestinationException,
    InvalidSelectorException,
    JMSException,
    MessageFormatException,
)
from repro.jms.message import (
    BytesMessage,
    DeliveryMode,
    MapMessage,
    Message,
    ObjectMessage,
    TextMessage,
)
from repro.jms.destination import Destination, Queue, TemporaryQueue, TemporaryTopic, Topic
from repro.jms.selector import Selector
from repro.jms.session import AckMode, Session
from repro.jms.connection import Connection, ConnectionFactory
from repro.jms.producer import MessageProducer, TopicPublisher
from repro.jms.consumer import MessageConsumer, TopicSubscriber

__all__ = [
    "AckMode",
    "BytesMessage",
    "Connection",
    "ConnectionFactory",
    "DeliveryMode",
    "Destination",
    "IllegalStateException",
    "InvalidDestinationException",
    "InvalidSelectorException",
    "JMSException",
    "MapMessage",
    "Message",
    "MessageConsumer",
    "MessageFormatException",
    "MessageProducer",
    "ObjectMessage",
    "Queue",
    "Selector",
    "Session",
    "TemporaryQueue",
    "TemporaryTopic",
    "TextMessage",
    "Topic",
    "TopicPublisher",
    "TopicSubscriber",
]
