"""JMS connections and connection factories."""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.jms.errors import IllegalStateException
from repro.jms.session import AckMode, Provider, Session

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

_client_ids = count(1)


class Connection:
    """An open link to the provider; sessions hang off it.

    JMS semantics preserved: message delivery to consumers is inhibited
    until :meth:`start` is called (deliveries arriving before then are
    buffered), and :meth:`close` tears down all sessions.
    """

    def __init__(self, provider: Provider, client_id: Optional[str] = None):
        self.provider = provider
        self.client_id = client_id or f"conn{next(_client_ids)}"
        self.started = False
        self.closed = False
        self.sessions: list[Session] = []
        self._pre_start_buffer: list[tuple[Any, Any, Any]] = []
        self._msg_seq = 0

    def next_message_id(self) -> str:
        self._msg_seq += 1
        return f"ID:{self.client_id}-{self._msg_seq}"

    def create_session(
        self, transacted: bool = False, ack_mode: int = AckMode.AUTO_ACKNOWLEDGE
    ) -> Session:
        if self.closed:
            raise IllegalStateException("connection is closed")
        session = Session(self, transacted, ack_mode)
        self.sessions.append(session)
        return session

    def start(self) -> None:
        """Enable delivery; flush anything that arrived while stopped."""
        if self.closed:
            raise IllegalStateException("connection is closed")
        self.started = True
        buffered, self._pre_start_buffer = self._pre_start_buffer, []
        for session, consumer, message in buffered:
            session._on_delivery(consumer, message)

    def stop(self) -> None:
        self.started = False

    def _route_delivery(self, session: Session, consumer: Any, message: Any) -> None:
        """Provider entry point honouring the started/stopped state."""
        if self.closed:
            return
        if not self.started:
            self._pre_start_buffer.append((session, consumer, message))
            return
        session._on_delivery(consumer, message)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for session in self.sessions:
            session.close()
        self.provider.close()


class ConnectionFactory:
    """Creates connections from a provider factory.

    ``provider_factory()`` must be a generator performing the network-level
    connect and returning a :class:`~repro.jms.session.Provider`.
    """

    def __init__(self, provider_factory: Callable[[], Generator[Any, Any, Provider]]):
        self._provider_factory = provider_factory

    def create_connection(
        self, client_id: Optional[str] = None
    ) -> Generator[Any, Any, Connection]:
        provider = yield from self._provider_factory()
        return Connection(provider, client_id)
