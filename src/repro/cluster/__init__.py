"""Simulated hardware substrate: nodes, LAN, JVM memory model, vmstat.

This package stands in for the paper's testbed — the 8-node "Hydra" cluster
of Pentium III 866 MHz machines on an isolated 100 Mbps switched LAN (paper
Table I).  See DESIGN.md §2 for why each substitution preserves the behaviour
the paper measures.
"""

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.cluster.network import Lan, Link
from repro.cluster.node import Node
from repro.cluster.vmstat import VmStat
from repro.cluster.hydra import HydraCluster, HYDRA_SPEC

__all__ = [
    "HYDRA_SPEC",
    "HydraCluster",
    "Jvm",
    "Lan",
    "Link",
    "Node",
    "OutOfMemoryError",
    "VmStat",
]
