"""The Hydra testbed (paper Table I) as a ready-made cluster factory.

Eight identical nodes, Pentium III 866 MHz, 2 GB RAM, Scientific Linux with
kernel 2.4.21, Sun Hotspot JVM 1.4.2, interconnected by a 100 Mbps switch on
an isolated LAN with a measured application transfer rate of 7–8 Mbyte/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.network import Lan
from repro.cluster.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class HydraSpec:
    """Table I constants."""

    node_count: int = 8
    cpu: str = "Pentium III 866 MHz"
    memory_bytes: int = 2 * 1024**3
    os: str = "Scientific Linux, kernel 2.4.21"
    jvm: str = "Sun Hotspot JVM 1.4.2"
    lan_bandwidth_bps: float = 100e6
    #: Observed end-to-end application transfer rate (paper: 7-8 MB/s).
    observed_transfer_rate_bytes: tuple[float, float] = (7e6, 8e6)
    middleware: str = "NaradaBrokering v1.1.3, R-GMA gLite v3.0, Tomcat v5.0.28"


HYDRA_SPEC = HydraSpec()


class HydraCluster:
    """Eight `hydra1..hydra8` nodes on one isolated switch."""

    def __init__(self, sim: "Simulator", spec: HydraSpec = HYDRA_SPEC):
        self.sim = sim
        self.spec = spec
        self.lan = Lan(sim, bandwidth_bps=spec.lan_bandwidth_bps)
        self.nodes: dict[str, Node] = {}
        for i in range(1, spec.node_count + 1):
            name = f"hydra{i}"
            self.nodes[name] = Node(sim, name, memory_bytes=spec.memory_bytes)
            self.lan.attach(name)

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def node_names(self) -> list[str]:
        return sorted(self.nodes, key=lambda n: int(n.removeprefix("hydra")))

    def __len__(self) -> int:
        return len(self.nodes)
