"""A coarse JVM memory model: heap, native thread stacks, GC pauses, OOM.

Both middlewares in the paper die by running out of memory: "a single Narada
broker ... ran out of memory to create new threads to serve more incoming
connections" (§III.E.2) and "one R-GMA server cannot accept 800 concurrent
connections.  It ran out of memory to create new threads" (§III.F.1).  Both
used ``-Xmx1024m`` on 2 GB machines with thread-per-connection servers, so
the wall is a function of heap size, per-connection heap state and native
stack consumption.  This model reproduces those walls mechanistically:

* **heap** — explicit ``alloc``/``free`` with a high-water mark (the paper's
  "memory consumption = peak - bottom" metric is read off this);
* **native stacks** — each spawned thread charges a fixed stack against a
  native budget; exhaustion raises :class:`OutOfMemoryError` with the
  classic "unable to create new native thread" message;
* **GC** — allocation volume triggers minor collections whose stop-the-world
  pauses seize the node CPU, producing the latency tail visible in the
  paper's 99–100th percentile plots; a failed allocation triggers a full
  collection before giving up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.cluster.node import Node
    from repro.sim.process import Process

MiB = 1024 * 1024


class OutOfMemoryError(Exception):
    """java.lang.OutOfMemoryError equivalent."""

    def __init__(self, message: str, jvm_name: str = ""):
        super().__init__(message)
        self.jvm_name = jvm_name


class Jvm:
    """One JVM process hosted on a :class:`~repro.cluster.node.Node`.

    Parameters
    ----------
    heap_bytes:
        ``-Xmx`` (paper: 1 GiB for both middlewares).
    thread_stack_bytes:
        Native stack per thread (JVM 1.4-era default, 256 KiB).
    native_budget_bytes:
        Address space available for thread stacks beyond the heap.
    young_gen_bytes:
        Allocation volume between minor collections.
    gc_minor_base / gc_minor_per_live:
        Minor pause = base + per_live × (live heap fraction).
    gc_full_base / gc_full_per_live:
        Same for full (allocation-failure) collections.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        heap_bytes: float = 1024 * MiB,
        thread_stack_bytes: float = 256 * 1024,
        native_budget_bytes: float = 900 * MiB,
        base_overhead_bytes: float = 24 * MiB,
        young_gen_bytes: float = 32 * MiB,
        gc_minor_base: float = 0.004,
        gc_minor_per_live: float = 0.050,
        gc_full_base: float = 0.150,
        gc_full_per_live: float = 0.800,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.heap_bytes = heap_bytes
        self.thread_stack_bytes = thread_stack_bytes
        self.native_budget_bytes = native_budget_bytes
        self.base_overhead_bytes = base_overhead_bytes
        self.young_gen_bytes = young_gen_bytes
        self.gc_minor_base = gc_minor_base
        self.gc_minor_per_live = gc_minor_per_live
        self.gc_full_base = gc_full_base
        self.gc_full_per_live = gc_full_per_live

        self.heap_used = 0.0
        self.heap_high_water = 0.0
        self.thread_count = 0
        self.threads_peak = 0
        self._allocated_since_gc = 0.0
        self.minor_gcs = 0
        self.full_gcs = 0
        self.dead = False
        node.attach_jvm(self)

    # --------------------------------------------------------------- memory
    @property
    def committed_bytes(self) -> float:
        """Process-resident memory as ``vmstat`` would see it."""
        return (
            self.base_overhead_bytes
            + self.heap_high_water
            + self.thread_count * self.thread_stack_bytes
        )

    @property
    def live_fraction(self) -> float:
        return self.heap_used / self.heap_bytes if self.heap_bytes else 1.0

    def alloc(self, nbytes: float, reason: str = "") -> None:
        """Allocate heap; may schedule a GC pause; raises on exhaustion."""
        if self.dead:
            raise OutOfMemoryError(f"JVM {self.name} already dead", self.name)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.heap_used + nbytes > self.heap_bytes:
            # Allocation failure: full stop-the-world collection.  Our
            # explicit alloc/free accounting has no floating garbage, so a
            # full GC cannot reclaim anything extra — the JVM is out of
            # memory for real, exactly like the saturated brokers in §III.
            self.full_gcs += 1
            self._pause(self.gc_full_base + self.gc_full_per_live * self.live_fraction)
            self.dead = True
            raise OutOfMemoryError(
                f"Java heap space ({reason or 'alloc'} of {nbytes:.0f} B, "
                f"used {self.heap_used:.0f}/{self.heap_bytes:.0f})",
                self.name,
            )
        self.heap_used += nbytes
        self.heap_high_water = max(self.heap_high_water, self.heap_used)
        self._allocated_since_gc += nbytes
        if self._allocated_since_gc >= self.young_gen_bytes:
            self._allocated_since_gc = 0.0
            self.minor_gcs += 1
            self._pause(
                self.gc_minor_base + self.gc_minor_per_live * self.live_fraction
            )

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.heap_used = max(0.0, self.heap_used - nbytes)

    def _pause(self, duration: float) -> None:
        """Stop-the-world: seize the node CPU for ``duration`` seconds."""
        self.node.execute_process(duration * self.node.cpu_scale)

    # -------------------------------------------------------------- threads
    def spawn_thread(
        self, generator: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> "Process":
        """Create a thread (process) charging one native stack.

        Raises :class:`OutOfMemoryError` when the native budget is exhausted —
        the exact failure mode behind both middlewares' connection walls.
        """
        if self.dead:
            raise OutOfMemoryError(f"JVM {self.name} already dead", self.name)
        needed = (self.thread_count + 1) * self.thread_stack_bytes
        if needed > self.native_budget_bytes:
            raise OutOfMemoryError(
                f"unable to create new native thread "
                f"(threads={self.thread_count}, stack={self.thread_stack_bytes:.0f} B)",
                self.name,
            )
        self.thread_count += 1
        self.threads_peak = max(self.threads_peak, self.thread_count)
        proc = self.sim.process(generator, name=name or f"{self.name}.thread")
        proc.add_callback(lambda _e: self._thread_exit())
        return proc

    def _thread_exit(self) -> None:
        self.thread_count -= 1

    @property
    def max_threads(self) -> int:
        """How many threads fit in the native budget."""
        return int(self.native_budget_bytes // self.thread_stack_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Jvm {self.name} heap={self.heap_used / MiB:.1f}/"
            f"{self.heap_bytes / MiB:.0f} MiB threads={self.thread_count}>"
        )
