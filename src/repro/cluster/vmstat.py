"""``vmstat`` emulation: periodic CPU-idle and memory sampling.

The paper records "CPU idle time ... calculated as the average of CPU idle
time during the tests" and "memory consumption ... as the difference between
peak and bottom values" (§III.C).  This sampler reproduces both definitions
against the modelled node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.cluster.node import Node


@dataclass
class VmStatSample:
    time: float
    cpu_idle_fraction: float
    memory_used_bytes: float


@dataclass
class VmStatSummary:
    """The two numbers the paper reports per node (Figs. 6 and 13)."""

    mean_cpu_idle_percent: float
    memory_consumption_bytes: float
    samples: int

    @property
    def memory_consumption_mb(self) -> float:
        return self.memory_consumption_bytes / (1024 * 1024)


class VmStat:
    """Samples a node at a fixed interval while the simulation runs."""

    def __init__(self, sim: "Simulator", node: "Node", interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.node = node
        self.interval = interval
        self.samples: list[VmStatSample] = []
        self._last_busy = node.cpu_busy_time
        self._running = True
        sim.process(self._sampler(), name=f"vmstat.{node.name}")

    def stop(self) -> None:
        self._running = False

    def _sampler(self) -> Generator[Any, Any, None]:
        while self._running:
            yield self.sim.timeout(self.interval)
            busy = self.node.cpu_busy_time
            busy_delta = busy - self._last_busy
            self._last_busy = busy
            idle = max(0.0, 1.0 - busy_delta / self.interval)
            self.samples.append(
                VmStatSample(
                    time=self.sim.now,
                    cpu_idle_fraction=idle,
                    memory_used_bytes=self.node.memory_used_bytes,
                )
            )

    def summary(self, warmup: float = 0.0) -> VmStatSummary:
        """Aggregate samples taken after ``warmup`` seconds of sim time."""
        used = [s for s in self.samples if s.time >= warmup]
        if not used:
            return VmStatSummary(100.0, 0.0, 0)
        mean_idle = 100.0 * sum(s.cpu_idle_fraction for s in used) / len(used)
        mems = [s.memory_used_bytes for s in used]
        return VmStatSummary(
            mean_cpu_idle_percent=mean_idle,
            memory_consumption_bytes=max(mems) - min(mems),
            samples=len(used),
        )
