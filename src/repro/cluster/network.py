"""The switched LAN model.

The paper's testbed is eight nodes on an isolated 100 Mbps switch, with an
observed application data rate of 7–8 Mbyte/s (paper §III.A).  We model a
store-and-forward switch: a frame is serialised onto the sender's NIC
transmit queue, propagates through the switch, and is serialised again on the
receiver's NIC receive path.  Each NIC direction is a FIFO queue in *virtual
time*: instead of simulating every frame as a process, a link keeps the time
its queue drains (``_next_free``) and computes each transfer's queueing +
serialisation delay in O(1).  Queueing delay at the receive side of a loaded
broker node is the dominant latency term in the paper's scaling experiments.

Datagram ("UDP") transfers can be dropped, either randomly (configured loss
probability per fragment) or deterministically when the virtual queue exceeds
the socket buffer.  Stream transfers are never dropped here — reliability is
the transport layer's job (see :mod:`repro.transport.tcp`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Ethernet maximum transmission unit (payload bytes per frame).
MTU = 1500
#: Per-frame overhead: Ethernet + IP + TCP headers, preamble, inter-frame gap.
FRAME_OVERHEAD_TCP = 78
#: Per-frame overhead for UDP datagram fragments.
FRAME_OVERHEAD_UDP = 66


@dataclass
class LinkStats:
    """Counters a link accumulates for reporting."""

    frames: int = 0
    bytes: int = 0
    drops_random: int = 0
    drops_overflow: int = 0
    #: Datagrams dropped by an injected network partition (repro.faults).
    drops_fault: int = 0


class Link:
    """One direction of one NIC: FIFO serialisation in virtual time."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        bandwidth_bps: float = 100e6,
        buffer_bytes: float = 256 * 1024,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.buffer_bytes = buffer_bytes
        self._next_free = 0.0
        self.stats = LinkStats()

    @property
    def queued_bytes(self) -> float:
        """Bytes currently waiting in the virtual queue."""
        backlog_seconds = max(0.0, self._next_free - self.sim.now)
        return backlog_seconds * self.bandwidth_bps / 8.0

    def serialize(self, nbytes: float, droppable: bool = False) -> Optional[float]:
        """Queue ``nbytes`` onto the link.

        Returns the absolute time the last bit leaves the link, or ``None``
        when ``droppable`` and the queue would overflow the buffer.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if droppable and self.queued_bytes + nbytes > self.buffer_bytes:
            self.stats.drops_overflow += 1
            return None
        start = max(self.sim.now, self._next_free)
        self._next_free = start + nbytes * 8.0 / self.bandwidth_bps
        self.stats.frames += 1
        self.stats.bytes += int(nbytes)
        return self._next_free


class Lan:
    """A full-duplex switched LAN connecting named hosts.

    Parameters
    ----------
    sim:
        Owning simulator.
    bandwidth_bps:
        Per-port line rate (paper: 100 Mbps).
    switch_latency:
        Fixed propagation + switching delay per frame burst (seconds).
    jitter_mean:
        Mean of the exponential jitter added per transfer (OS scheduling,
        interrupt coalescing).  Seeded per host pair.
    loopback_delay:
        Delay for same-host transfers (kernel loopback, no NIC involved).
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth_bps: float = 100e6,
        switch_latency: float = 150e-6,
        jitter_mean: float = 80e-6,
        loopback_delay: float = 30e-6,
        buffer_bytes: float = 256 * 1024,
    ):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.switch_latency = switch_latency
        self.jitter_mean = jitter_mean
        self.loopback_delay = loopback_delay
        self.buffer_bytes = buffer_bytes
        self._tx: dict[str, Link] = {}
        self._rx: dict[str, Link] = {}
        #: Optional injected link faults (see :mod:`repro.faults.link`);
        #: installed by a fault scheduler, consulted per transfer.
        self.faults = None

    def attach(self, host: str) -> None:
        """Register ``host`` on the switch (idempotent)."""
        if host not in self._tx:
            self._tx[host] = Link(
                self.sim, f"{host}.tx", self.bandwidth_bps, self.buffer_bytes
            )
            self._rx[host] = Link(
                self.sim, f"{host}.rx", self.bandwidth_bps, self.buffer_bytes
            )

    def hosts(self) -> list[str]:
        return sorted(self._tx)

    def tx_link(self, host: str) -> Link:
        return self._tx[host]

    def rx_link(self, host: str) -> Link:
        return self._rx[host]

    # ------------------------------------------------------------ transfers
    def frame_count(self, nbytes: float) -> int:
        """Number of MTU-sized fragments a payload occupies."""
        return max(1, math.ceil(nbytes / MTU))

    def wire_bytes(self, nbytes: float, overhead: int) -> float:
        """Payload plus per-frame protocol overhead."""
        return nbytes + self.frame_count(nbytes) * overhead

    def transmit(
        self,
        src: str,
        dst: str,
        nbytes: float,
        *,
        droppable: bool = False,
        loss_probability: float = 0.0,
        overhead: int = FRAME_OVERHEAD_TCP,
    ) -> Optional[Event]:
        """Move ``nbytes`` of payload from ``src`` to ``dst``.

        Returns an event firing at delivery time, or ``None`` when the
        transfer was dropped (only possible with ``droppable=True``).
        The event's value is the one-way delay in seconds.
        """
        if src not in self._tx or dst not in self._tx:
            raise KeyError(f"unknown host in transfer {src!r} -> {dst!r}")

        now = self.sim.now
        if src == dst:
            delay = self.loopback_delay
            ev = self.sim.event()
            ev.succeed(delay, delay=delay)
            return ev

        tx = self._tx[src]
        rx = self._rx[dst]

        fault_delay = 0.0
        p_frag = loss_probability
        if self.faults is not None:
            dropped, fault_delay = self.faults.verdict(src, dst, droppable)
            if dropped:
                tx.stats.drops_fault += 1
                return None
            extra_loss = self.faults.loss_probability(src, dst)
            if extra_loss > 0.0:
                # Independent loss processes compose multiplicatively.
                p_frag = 1.0 - (1.0 - p_frag) * (1.0 - extra_loss)

        if droppable and p_frag > 0.0:
            # Per-fragment random loss; one lost fragment loses the datagram.
            frags = self.frame_count(nbytes)
            p_msg = 1.0 - (1.0 - p_frag) ** frags
            if self.sim.rng.random(f"lan.loss.{src}->{dst}") < p_msg:
                tx.stats.drops_random += 1
                return None

        wire = self.wire_bytes(nbytes, overhead)
        tx_done = tx.serialize(wire, droppable=droppable)
        if tx_done is None:
            return None
        # The frame reaches the destination port after the switch latency;
        # receive-side serialisation starts no earlier than that.
        arrival_at_rx = tx_done + self.switch_latency
        rx_start_lag = max(0.0, arrival_at_rx - self.sim.now)
        # Model the rx queue in its own virtual time, offset by the lag.
        rx_done = self._serialize_at(rx, wire, rx_start_lag, droppable)
        if rx_done is None:
            tx.stats.drops_overflow += 1  # counted where it is observed
            return None
        jitter = self.sim.rng.exponential(f"lan.jitter.{src}->{dst}", self.jitter_mean)
        delivery = rx_done + jitter + fault_delay
        delay = delivery - now
        ev = self.sim.event()
        ev.succeed(delay, delay=delay)
        return ev

    def _serialize_at(
        self, link: Link, nbytes: float, start_lag: float, droppable: bool
    ) -> Optional[float]:
        """Serialise onto ``link`` as if enqueued ``start_lag`` in the future."""
        earliest = self.sim.now + start_lag
        if droppable:
            backlog = max(0.0, link._next_free - earliest)
            if backlog * link.bandwidth_bps / 8.0 + nbytes > link.buffer_bytes:
                link.stats.drops_overflow += 1
                return None
        start = max(earliest, link._next_free)
        link._next_free = start + nbytes * 8.0 / link.bandwidth_bps
        link.stats.frames += 1
        link.stats.bytes += int(nbytes)
        return link._next_free
