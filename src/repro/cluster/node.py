"""A compute node: one CPU with a FIFO run-queue and a memory budget.

The paper's testbed nodes are single-socket Pentium III machines, so the CPU
is modelled as a single non-preemptive server.  Work is expressed in seconds
of CPU time on that reference machine; queueing at the CPU is what produces
the "smooth increase of round-trip time according to the number of concurrent
connections" the paper observes (Fig. 7): more connections → more messages
per second → higher utilisation → longer run-queue waits.

The node also tracks busy time so :class:`repro.cluster.vmstat.VmStat` can
report CPU idle exactly the way the paper's ``vmstat`` runs did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.cluster.jvm import Jvm


class Node:
    """A simulated cluster node.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Node name (e.g. ``"hydra1"``).
    cpu_scale:
        Relative CPU speed; ``1.0`` is the paper's PIII 866 MHz reference.
        A job of ``work`` seconds takes ``work / cpu_scale`` to execute.
    memory_bytes:
        Physical memory (paper: 2 GB).
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        cpu_scale: float = 1.0,
        memory_bytes: int = 2 * 1024**3,
    ):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.sim = sim
        self.name = name
        self.cpu_scale = cpu_scale
        self.memory_bytes = memory_bytes
        self._cpu = Resource(sim, capacity=1)
        #: Total CPU-busy seconds since simulation start (for vmstat).
        self.cpu_busy_time = 0.0
        #: JVMs running on this node (for memory accounting).
        self.jvms: list["Jvm"] = []

    # ------------------------------------------------------------------ CPU
    def execute(self, work: float) -> Generator[Any, Any, None]:
        """Process-style: occupy the CPU for ``work`` reference-seconds.

        Usage inside a process::

            yield from node.execute(0.0002)
        """
        if work < 0:
            raise ValueError("work must be >= 0")
        if work == 0.0:
            return
        yield self._cpu.acquire()
        try:
            duration = work / self.cpu_scale
            yield self.sim.timeout(duration)
            self.cpu_busy_time += duration
        finally:
            self._cpu.release()

    def execute_process(self, work: float):
        """``execute`` wrapped as a Process (for fire-and-forget CPU load)."""
        return self.sim.process(self.execute(work), name=f"{self.name}.cpu")

    @property
    def run_queue_length(self) -> int:
        """Jobs waiting for the CPU right now (excluding the running one)."""
        return len(self._cpu._waiters)

    @property
    def cpu_in_use(self) -> bool:
        return self._cpu.in_use > 0

    # --------------------------------------------------------------- memory
    @property
    def memory_used_bytes(self) -> float:
        """Committed memory across all JVMs on this node."""
        return sum(jvm.committed_bytes for jvm in self.jvms)

    @property
    def memory_free_bytes(self) -> float:
        return self.memory_bytes - self.memory_used_bytes

    def attach_jvm(self, jvm: "Jvm") -> None:
        self.jvms.append(jvm)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} busy={self.cpu_busy_time:.3f}s>"
