"""Key → partition hashing.

The mapping must be *stable*: the same generator id must land on the same
partition in every run, every process and under every simulation seed —
partition assignment is topology, not randomness.  Python's built-in
``hash`` is salted per process for strings, so we use FNV-1a over the
key's string form instead.
"""

from __future__ import annotations

from typing import Any

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(key: Any) -> int:
    """64-bit FNV-1a of ``str(key)`` — deterministic across processes."""
    h = _FNV_OFFSET
    for byte in str(key).encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    return h


def partition_for(key: Any, n_partitions: int) -> int:
    """The partition ``key`` maps to in a topic of ``n_partitions``."""
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    return stable_hash(key) % n_partitions
