"""Append-only segmented partition logs with offset-based reads.

One :class:`PartitionLog` is the storage for one partition: a list of
segments, each holding a contiguous offset range.  Appends always go to the
active (last) segment, which rolls once it exceeds the configured size;
retention evicts whole segments from the front.  Reads address records by
offset, never by position in a queue — that is what makes consumption
pull-based and replayable.

The log itself is pure data structure (no simulated time, no CPU charges);
the broker charges CPU and heap around these calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class StoredRecord:
    """One appended record."""

    offset: int
    key: Any
    value: Any
    nbytes: float


@dataclass
class Segment:
    """A contiguous run of offsets."""

    base_offset: int
    records: list[StoredRecord] = field(default_factory=list)
    nbytes: float = 0.0

    @property
    def next_offset(self) -> int:
        return self.base_offset + len(self.records)


@dataclass(frozen=True)
class AppendResult:
    """What one batch append did to the log."""

    base_offset: int
    appended_bytes: float
    #: Bytes released by retention eviction during this append (the broker
    #: frees this much heap).
    evicted_bytes: float


class PartitionLog:
    """The commit log of one partition."""

    def __init__(
        self,
        segment_max_bytes: float = float("inf"),
        retention_bytes: float = float("inf"),
        record_overhead_bytes: float = 0.0,
    ):
        if segment_max_bytes <= 0 or retention_bytes <= 0:
            raise ValueError("segment_max_bytes and retention_bytes must be > 0")
        self.segment_max_bytes = segment_max_bytes
        self.retention_bytes = retention_bytes
        self.record_overhead_bytes = record_overhead_bytes
        self.segments: list[Segment] = [Segment(base_offset=0)]
        self.total_bytes = 0.0
        self.appends = 0
        self.records_appended = 0

    # -------------------------------------------------------------- offsets
    @property
    def start_offset(self) -> int:
        """Oldest retained offset."""
        return self.segments[0].base_offset

    @property
    def end_offset(self) -> int:
        """Offset the next appended record will get (the high-watermark)."""
        return self.segments[-1].next_offset

    # --------------------------------------------------------------- append
    def append(self, batch: list[tuple[Any, Any, float]]) -> AppendResult:
        """Append ``[(key, value, nbytes), ...]``; returns offsets + byte
        accounting for the caller's heap bookkeeping."""
        active = self.segments[-1]
        if active.records and active.nbytes >= self.segment_max_bytes:
            active = Segment(base_offset=active.next_offset)
            self.segments.append(active)
        base = active.next_offset
        appended = 0.0
        for key, value, nbytes in batch:
            stored_bytes = nbytes + self.record_overhead_bytes
            active.records.append(
                StoredRecord(active.next_offset, key, value, nbytes)
            )
            active.nbytes += stored_bytes
            appended += stored_bytes
            # Roll mid-batch too, so one huge batch cannot defeat retention.
            if active.nbytes >= self.segment_max_bytes:
                active = Segment(base_offset=active.next_offset)
                self.segments.append(active)
        if not self.segments[-1].records and len(self.segments) > 1:
            self.segments.pop()  # drop an empty roll at the tail
        self.total_bytes += appended
        self.appends += 1
        self.records_appended += len(batch)
        evicted = self._enforce_retention()
        return AppendResult(base, appended, evicted)

    def _enforce_retention(self) -> float:
        evicted = 0.0
        while self.total_bytes > self.retention_bytes and len(self.segments) > 1:
            segment = self.segments.pop(0)
            evicted += segment.nbytes
            self.total_bytes -= segment.nbytes
        return evicted

    # ------------------------------------------------------------- truncate
    def truncate_to(self, offset: int) -> int:
        """Discard every record at or above ``offset``; returns how many were
        dropped.

        A follower rejoining after a crash may hold records its new leader
        never replicated (they were acked only locally, or not at all); it
        truncates its log back to the leader's end offset before resuming
        replica fetches, exactly like Kafka's log truncation on leader epoch
        change.  Truncating at/after ``end_offset`` is a no-op; truncating
        below ``start_offset`` empties the retained log.
        """
        if offset >= self.end_offset:
            return 0
        dropped = 0
        while self.segments:
            segment = self.segments[-1]
            if segment.base_offset >= offset:
                dropped += len(segment.records)
                self.total_bytes -= segment.nbytes
                self.segments.pop()
                continue
            keep = offset - segment.base_offset
            for record in segment.records[keep:]:
                nbytes = record.nbytes + self.record_overhead_bytes
                segment.nbytes -= nbytes
                self.total_bytes -= nbytes
                dropped += 1
            del segment.records[keep:]
            break
        if not self.segments:
            self.segments = [Segment(base_offset=offset)]
        return dropped

    def reset_to(self, offset: int) -> float:
        """Discard all retained records and restart the log at ``offset``.

        A follower that lagged past the leader's retention fast-forwards
        this way: the evicted range cannot be replicated any more, and
        offsets must stay aligned with the leader's.  Returns the bytes
        released (for the caller's heap bookkeeping).
        """
        freed = self.total_bytes
        self.segments = [Segment(base_offset=offset)]
        self.total_bytes = 0.0
        return freed

    # ----------------------------------------------------------------- read
    def read(self, offset: int, max_records: int) -> list[StoredRecord]:
        """Up to ``max_records`` records starting at ``offset``.

        Offsets below ``start_offset`` (evicted) resume from the oldest
        retained record, as a real consumer would after falling behind
        retention.  Offsets at/after ``end_offset`` return ``[]``.
        """
        if max_records <= 0:
            return []
        offset = max(offset, self.start_offset)
        out: list[StoredRecord] = []
        for segment in self.segments:
            if segment.next_offset <= offset:
                continue
            index = max(0, offset - segment.base_offset)
            for record in segment.records[index:]:
                out.append(record)
                if len(out) >= max_records:
                    return out
        return out

    def __len__(self) -> int:
        """Retained record count."""
        return self.end_offset - self.start_offset
