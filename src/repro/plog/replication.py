"""Leader/follower partition replication and the cluster controller.

This is the fault-tolerance layer of the plog subsystem, modelled on
Kafka's replication protocol:

* every partition has ``replication_factor`` replicas; the first replica in
  the layout is the *preferred leader*.  Producers and consumers only ever
  talk to the leader; followers run a :class:`ReplicaFetcher` that pulls
  batches from the leader over the same simulated LAN (replication traffic
  pays the same latency/loss/CPU costs as client traffic);
* the leader tracks each follower's progress.  A replica fetch at offset
  ``N`` acknowledges everything below ``N``, so the leader's *high
  watermark* (HWM) — the offset below which every in-sync replica has the
  data — is ``min`` over the ISR's ends.  Consumers only read below the
  HWM and ``acks=all`` produce requests only complete once the HWM passes
  the batch, which is exactly why a leader crash loses no acked record:
  some surviving ISR member is guaranteed to hold it;
* the **ISR** (in-sync replica set) shrinks when a follower has not been
  caught up to the leader's end for ``replica_lag_max`` seconds and
  expands when it catches back up — so a slow or dead follower degrades
  durability visibly (under-replicated partition) instead of stalling
  producers forever;
* the :class:`ClusterController` is the control plane: a periodic liveness
  scan (period ``failure_detect_interval``) detects broker death, elects a
  new leader for each orphaned partition — the surviving ISR member with
  the lowest broker index, a deterministic rule — and re-elects the group
  coordinator when its broker dies.  The new coordinator recovers
  committed offsets by replaying its local replica of the internal
  ``__offsets`` partition, then consumers rejoin and a rebalance restores
  the group.  The controller reads its authoritative ISR view from change
  notifications the leaders push (the stand-in for Kafka's ZooKeeper /
  KRaft metadata writes), so elections never consult a dead broker.

Everything here is inert at ``replication_factor=1``: no fetchers, no
controller, HWM == log end — the pre-replication schedule is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.jvm import OutOfMemoryError
from repro.plog.config import OFFSETS_TOPIC
from repro.plog.idempotence import PartitionProducerState
from repro.telemetry.context import current as _telemetry
from repro.telemetry.metrics import ELECTION_LATENCY_BUCKETS
from repro.transport.base import (
    EOF,
    Channel,
    ChannelClosed,
    MessageLost,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.plog.broker import PlogBroker
    from repro.plog.deployment import PlogDeployment
    from repro.sim.kernel import Simulator


@dataclass
class ReplicaProgress:
    """Leader-side view of one follower."""

    #: Next offset the follower will fetch == its log end (a fetch at ``N``
    #: proves the follower holds everything below ``N``).
    next_offset: int = 0
    #: Last time the follower's fetch reached the leader's end offset.
    caught_up_at: float = 0.0
    in_isr: bool = False


@dataclass
class PartitionState:
    """Replication state of one partition replica (kept on every replica).

    On the leader, ``progress`` and ``pending_acks`` are live; on a
    follower they are empty and ``hwm`` trails the leader's (learned from
    replica-fetch responses, clamped to the local log end).
    """

    topic: str
    partition: int
    #: All replica broker names; ``replicas[0]`` is the preferred leader.
    replicas: tuple[str, ...]
    #: Current leader's broker name (``None`` while the partition is
    #: offline — no live ISR member to elect).
    leader: Optional[str]
    #: Bumped by the controller on every election; a fencing token.
    epoch: int = 0
    #: High watermark: consumers read below it, ``acks=all`` waits on it.
    hwm: int = 0
    #: follower name -> progress (leader only).
    progress: dict[str, ReplicaProgress] = field(default_factory=dict)
    #: Parked ``acks=all`` produce responses: (required_hwm, channel, corr,
    #: base_offset), released once ``hwm >= required_hwm`` (leader only).
    pending_acks: list[tuple[int, Channel, int, int]] = field(default_factory=list)

    @property
    def replicated(self) -> bool:
        return len(self.replicas) > 1

    def isr_names(self) -> frozenset[str]:
        """Current ISR as seen by the leader (leader is always a member)."""
        members = {name for name, p in self.progress.items() if p.in_isr}
        if self.leader is not None:
            members.add(self.leader)
        return frozenset(members)

    @property
    def isr_size(self) -> int:
        return 1 + sum(1 for p in self.progress.values() if p.in_isr)


class ReplicaFetcher:
    """One follower's pull loop for one partition.

    Runs forever: while its broker is a follower it long-polls the current
    leader with ``rfetch`` requests and appends the returned batches to the
    local log; while its broker leads (or is dead) it idles.  A response
    that does not arrive within the long-poll window plus a grace period is
    treated as a dead leader connection — the pending receive is cancelled,
    the channel dropped, and the loop reconnects to whatever the deployment
    now says the leader is (which is how a fetcher follows an election).
    """

    def __init__(
        self,
        deployment: "PlogDeployment",
        broker: "PlogBroker",
        topic: str,
        partition: int,
    ):
        self.deployment = deployment
        self.broker = broker
        self.sim: "Simulator" = broker.sim
        self.topic = topic
        self.partition = partition
        self.key = (topic, partition)
        self._channel: Optional[Channel] = None
        self._leader_name: Optional[str] = None
        self._corr = 0
        self.fetches = 0
        self.records_replicated = 0
        self.truncations = 0
        self.reconnects = 0

    def start(self) -> None:
        self.sim.process(
            self._run(), name=f"{self.broker.name}.replica.p{self.partition}"
        )

    # ------------------------------------------------------------------ loop
    def _run(self) -> Generator[Any, Any, None]:
        cfg = self.broker.config
        while True:
            state = self.broker.states.get(self.key)
            if state is None:  # pragma: no cover - partitions are never dropped
                return
            if not self.broker.alive or self.broker.jvm.dead:
                self._drop_channel()
                yield self.sim.timeout(cfg.replica_fetch_backoff)
                continue
            if state.leader == self.broker.name:
                # We lead: nothing to fetch.  Idle at the long-poll cadence
                # so a later demotion is picked up promptly.
                self._drop_channel()
                yield self.sim.timeout(cfg.replica_fetch_wait)
                continue
            leader_name = state.leader
            if leader_name is None:
                yield self.sim.timeout(cfg.replica_fetch_backoff)
                continue
            if (
                self._channel is None
                or self._channel.closed
                or self._leader_name != leader_name
            ):
                self._drop_channel()
                try:
                    self._channel = yield from self.deployment.connect_to_broker(
                        self.broker.node, leader_name
                    )
                    self._leader_name = leader_name
                    self.reconnects += 1
                except (TransportError, ChannelClosed, MessageLost):
                    yield self.sim.timeout(cfg.replica_fetch_backoff)
                    continue
            ok = yield from self._fetch_once(state, cfg)
            if not ok:
                self._drop_channel()
                yield self.sim.timeout(cfg.replica_fetch_backoff)

    def _fetch_once(self, state: PartitionState, cfg) -> Generator[Any, Any, bool]:
        """One request/response round trip; False = connection is suspect."""
        channel = self._channel
        log = self.broker.logs[self.key]
        offset = log.end_offset
        self._corr += 1
        corr = self._corr
        try:
            yield from channel.send(
                (
                    "rfetch",
                    corr,
                    self.topic,
                    self.partition,
                    offset,
                    cfg.replica_fetch_max_records,
                    cfg.replica_fetch_wait,
                    self.broker.name,
                ),
                cfg.frame_overhead_bytes,
            )
        except (MessageLost, ChannelClosed):
            return False
        self.fetches += 1
        deadline = self.sim.timeout(
            cfg.replica_fetch_wait + cfg.fetch_response_grace
        )
        while True:
            recv = channel.receive()
            yield self.sim.any_of([recv, deadline])
            if not recv.triggered:
                # Response lost or the leader stalled: withdraw the pending
                # receive so a late delivery is not silently swallowed by
                # an abandoned event, then rebuild the connection.
                channel.inbox.cancel_get(recv)
                return False
            delivery = recv.value
            frame = delivery.payload
            if frame is EOF:
                return False
            if frame[0] != "rfetch_resp" or frame[1] != corr:
                continue  # stale response from a previous (timed-out) round
            yield from self.broker.node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            _, _, records, leader_end, leader_hwm, epoch, producer_snapshot = frame
            return (
                yield from self._apply(
                    state, records, leader_end, leader_hwm, epoch,
                    producer_snapshot,
                )
            )

    def _apply(
        self,
        state: PartitionState,
        records: list,
        leader_end: int,
        leader_hwm: int,
        epoch: int,
        producer_snapshot: Optional[dict] = None,
    ) -> Generator[Any, Any, bool]:
        """Install one replica-fetch response into the local log."""
        broker = self.broker
        log = broker.logs[self.key]
        if state.leader != self._leader_name or not broker.alive:
            return False  # an election or crash happened while we waited
        if epoch > state.epoch:
            state.epoch = epoch
        if leader_end < log.end_offset:
            # We hold records the leader never had (appended under a lost
            # leadership, or acked only locally): truncate to the leader's
            # end before resuming, like Kafka on a leader-epoch change.
            before = log.total_bytes
            dropped = log.truncate_to(leader_end)
            if dropped:
                self.truncations += 1
                broker.jvm.free(before - log.total_bytes)
            return True  # refetch from the truncated end next round
        if records and records[0][0] > log.end_offset:
            # The range we were missing fell out of the leader's retention;
            # fast-forward past the gap so offsets stay aligned.
            freed = log.reset_to(records[0][0])
            if freed:
                broker.jvm.free(freed)
        if records:
            batch = [(key, value, nbytes) for _offset, key, value, nbytes in records]
            payload_bytes = sum(nbytes for _, _, nbytes in batch)
            stored = payload_bytes + broker.config.per_record_overhead_bytes * len(batch)
            yield from broker.node.execute(
                broker.config.append_cpu(len(batch), payload_bytes)
            )
            try:
                broker.jvm.alloc(stored, "replica append")
            except OutOfMemoryError:
                return False
            result = log.append(batch)
            if result.evicted_bytes:
                broker.jvm.free(result.evicted_bytes)
            self.records_replicated += len(batch)
            broker.stats.records_replicated += len(batch)
        if producer_snapshot:
            # Merge the leader's idempotence state, gated by what this
            # replica's log actually holds — a promotion mid-catch-up must
            # not dedup retries of records we never replicated.
            pstate = broker.producer_states.setdefault(
                self.key, PartitionProducerState()
            )
            pstate.merge_snapshot(producer_snapshot, log.end_offset)
        new_hwm = min(leader_hwm, log.end_offset)
        if new_hwm > state.hwm:
            state.hwm = new_hwm
            broker.wake_consumer_fetchers(self.topic, self.partition)
        return True

    def _drop_channel(self) -> None:
        if self._channel is not None and not self._channel.closed:
            self._channel.close()
        self._channel = None
        self._leader_name = None


class MembershipController:
    """Reusable control-plane base: a periodic broker-liveness scan.

    A single periodic process scans broker liveness every
    ``_detect_interval`` seconds — so detection latency is bounded and,
    crucially, *deterministic*: the scan draws no randomness and visits
    brokers in a fixed order, so the same seed yields the same
    failure/return transitions at the same times.  Subclasses supply the
    member list, the interval and the two transition hooks; the plog
    :class:`ClusterController` layers leader election on top, and
    :class:`repro.federation.controller.FederationController` layers
    tree re-parenting on top of the same scan.

    Any object with ``name``, ``alive`` and ``jvm.dead`` can be a member
    (the same duck-typed surface the fault injector relies on).
    """

    #: Process name of the monitor loop (subclasses override).
    monitor_name = "membership.controller"

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._alive: dict[str, bool] = {}

    # ---------------------------------------------------- subclass surface
    def _members(self):
        """The scanned brokers, in the (fixed) scan order."""
        raise NotImplementedError  # pragma: no cover

    @property
    def _detect_interval(self) -> float:
        raise NotImplementedError  # pragma: no cover

    def _on_broker_failure(self, broker) -> None:
        raise NotImplementedError  # pragma: no cover

    def _on_broker_return(self, broker) -> None:
        raise NotImplementedError  # pragma: no cover

    # -------------------------------------------------------------- liveness
    def _broker_up(self, broker) -> bool:
        return broker.alive and not broker.jvm.dead

    def _start_monitor(self) -> None:
        for broker in self._members():
            self._alive.setdefault(broker.name, True)
        self.sim.process(self._monitor(), name=self.monitor_name)

    def _monitor(self) -> Generator[Any, Any, None]:
        interval = self._detect_interval
        while True:
            yield self.sim.timeout(interval)
            for broker in self._members():
                up = self._broker_up(broker)
                if up and not self._alive[broker.name]:
                    self._alive[broker.name] = True
                    self._on_broker_return(broker)
                elif not up and self._alive[broker.name]:
                    self._alive[broker.name] = False
                    self._on_broker_failure(broker)


class ClusterController(MembershipController):
    """The control plane: failure detection, leader election, coordinator
    failover.

    The liveness scan itself lives in :class:`MembershipController`; this
    subclass owns what the transitions *mean* for a replicated log —
    partition leader election and group-coordinator failover.
    """

    monitor_name = "plog.controller"

    def __init__(self, sim: "Simulator", deployment: "PlogDeployment"):
        super().__init__(sim)
        self.deployment = deployment
        self.config = deployment.config
        #: Authoritative ISR view, fed by leader notifications.
        self.isr_view: dict[tuple[str, int], frozenset[str]] = {}
        self._epochs: dict[tuple[str, int], int] = {}
        self.elections = 0
        self.failed_elections = 0
        self.coordinator_elections = 0
        #: (time, topic, partition, new_leader) — the determinism witness.
        self.election_log: list[tuple[float, str, int, str]] = []
        self.coordinator_log: list[tuple[float, str]] = []

    def start(self) -> None:
        for broker in self.deployment.brokers:
            self._alive[broker.name] = True
            broker.isr_listener = self._on_isr_change
            for key, state in broker.states.items():
                if state.leader == broker.name:
                    self.isr_view[key] = state.isr_names()
                    self._epochs[key] = state.epoch
        self._start_monitor()

    # ------------------------------------------------------------- liveness
    def _members(self) -> list["PlogBroker"]:
        return self.deployment.brokers

    @property
    def _detect_interval(self) -> float:
        return self.config.failure_detect_interval

    # ------------------------------------------------------------ elections
    def _on_isr_change(
        self, topic: str, partition: int, isr: frozenset[str]
    ) -> None:
        self.isr_view[(topic, partition)] = isr
        tel = _telemetry()
        if tel is not None:
            under = sum(
                1
                for key, members in self.isr_view.items()
                if len(members) < len(self._replicas_of(key))
            )
            tel.metrics.gauge("plog", "replication", "under_replicated").set(under)

    def _replicas_of(self, key: tuple[str, int]) -> tuple[str, ...]:
        for broker in self.deployment.brokers:
            state = broker.states.get(key)
            if state is not None:
                return state.replicas
        return ()  # pragma: no cover - every key has replicas

    def _on_broker_failure(self, broker: "PlogBroker") -> None:
        crashed_at = getattr(broker, "crashed_at", None)
        if crashed_at is None:
            crashed_at = self.sim.now
        # Re-elect every partition the dead broker led.
        for key, state in broker.states.items():
            if state.leader == broker.name:
                self._elect(key, crashed_at)
        # Proactively drop the dead broker from surviving leaders' ISRs so
        # acks=all stalls for at most the detection interval, not the full
        # replica lag window.
        for survivor in self.deployment.brokers:
            if survivor is broker or not self._broker_up(survivor):
                continue
            for key, state in survivor.states.items():
                if state.leader == survivor.name and broker.name in state.progress:
                    survivor.drop_follower(key[0], key[1], broker.name)
        if self.deployment.coordinator_broker() is broker:
            self._elect_coordinator()

    def _on_broker_return(self, broker: "PlogBroker") -> None:
        # The returnee re-enters as a follower everywhere; its fetchers
        # truncate and catch up, and leaders re-admit it to the ISR once it
        # is caught up.  Offline partitions it replicates can now elect.
        for key, state in broker.states.items():
            current = self.deployment.leader_name(key[0], key[1])
            if current is None:
                self._elect(key, self.sim.now)
            elif current != broker.name and state.leader != current:
                broker.become_follower(
                    key[0], key[1], current, self._epochs.get(key, state.epoch)
                )
        if not self._broker_up(self.deployment.coordinator_broker()):
            self._elect_coordinator()
        elif self.deployment.coordinator_broker() is not broker:
            # Stale coordinator state on the returnee (it used to host the
            # group coordinator before crashing): drop it so the discovery
            # path stays unambiguous.
            if broker.coordinator is not None and broker is not self.deployment.coordinator_broker():
                broker.coordinator = None

    def _elect(self, key: tuple[str, int], crashed_at: float) -> None:
        topic, partition = key
        isr = self.isr_view.get(key)
        if isr is None:
            isr = frozenset(self._replicas_of(key))
        candidates = [
            broker
            for broker in self.deployment.brokers
            if broker.name in isr and self._broker_up(broker)
        ]
        if not candidates:
            # No live in-sync replica: the partition goes offline rather
            # than electing a stale replica and silently losing acked data
            # (Kafka with unclean.leader.election.enable=false).
            self.failed_elections += 1
            self.deployment.set_leader(topic, partition, None)
            return
        new_leader = candidates[0]  # deployment order == lowest broker index
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        survivors = frozenset(
            b.name for b in candidates
        )
        new_leader.become_leader(topic, partition, epoch, survivors)
        for broker in self.deployment.brokers:
            if broker is new_leader or not self._broker_up(broker):
                continue
            if key in broker.states:
                broker.become_follower(topic, partition, new_leader.name, epoch)
        self.deployment.set_leader(topic, partition, new_leader)
        self.isr_view[key] = survivors
        self.elections += 1
        self.election_log.append((self.sim.now, topic, partition, new_leader.name))
        tel = _telemetry()
        if tel is not None:
            tel.metrics.counter("plog", "controller", "elections").inc()
            tel.metrics.histogram(
                "plog",
                "controller",
                "election_latency_s",
                buckets=ELECTION_LATENCY_BUCKETS,
            ).observe(max(0.0, self.sim.now - crashed_at))

    # ---------------------------------------------------------- coordinator
    def _elect_coordinator(self) -> None:
        from repro.plog.group import GroupCoordinator

        offsets_key = (OFFSETS_TOPIC, 0)
        isr = self.isr_view.get(offsets_key, frozenset())
        candidates = [
            broker
            for broker in self.deployment.brokers
            if self._broker_up(broker) and broker.name in isr
        ]
        if not candidates:
            # Fall back to any live broker: group offsets recovered from
            # its (possibly lagging) __offsets replica, membership rebuilt
            # by consumer rejoins either way.
            candidates = [
                broker
                for broker in self.deployment.brokers
                if self._broker_up(broker)
            ]
        if not candidates:
            return  # whole cluster down; retried when a broker returns
        new_broker = candidates[0]
        if (
            new_broker is self.deployment.coordinator_broker()
            and self._broker_up(new_broker)
        ):
            return
        # Move leadership of the __offsets partition with the coordinator
        # so commit mirroring keeps appending locally.
        if offsets_key in new_broker.states:
            epoch = self._epochs.get(offsets_key, 0) + 1
            self._epochs[offsets_key] = epoch
            survivors = frozenset(
                b.name for b in self.deployment.brokers
                if self._broker_up(b) and (b.name in isr or b is new_broker)
            )
            new_broker.become_leader(OFFSETS_TOPIC, 0, epoch, survivors)
            for broker in self.deployment.brokers:
                if broker is not new_broker and self._broker_up(broker):
                    if offsets_key in broker.states:
                        broker.become_follower(
                            OFFSETS_TOPIC, 0, new_broker.name, epoch
                        )
            self.deployment.set_leader(OFFSETS_TOPIC, 0, new_broker)
            self.isr_view[offsets_key] = survivors
        coordinator = GroupCoordinator(new_broker, self.config.partitions)
        offsets_log = new_broker.logs.get(offsets_key)
        if offsets_log is not None:
            coordinator.recover_from_log(offsets_log)
        self.deployment.install_coordinator(new_broker, coordinator)
        self.coordinator_elections += 1
        self.coordinator_log.append((self.sim.now, new_broker.name))
        tel = _telemetry()
        if tel is not None:
            tel.metrics.counter("plog", "controller", "coordinator_elections").inc()
