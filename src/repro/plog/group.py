"""Consumer-group coordination: membership, assignment, offsets.

The coordinator lives on one broker (the deployment picks broker 0) and
owns three pieces of state per group:

* **membership** — which consumers are alive, keyed by member id, with the
  channel the coordinator can push to;
* **assignment** — the current partition → member mapping, stamped with a
  monotonically increasing *generation* so consumers can discard stale
  fetches after a rebalance;
* **committed offsets** — where each partition's consumption stands, so a
  member that inherits a partition resumes where its predecessor stopped.

Rebalances are *coalesced*: a membership change arms a one-shot timer
(``rebalance_delay``) and every further change inside the window rides the
same timer, so a join storm at fleet start triggers one assignment, not
hundreds.  Assignment is range-style: sort partitions and members, give
each member a contiguous slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.plog.config import PlogConfig
from repro.transport.base import Channel, ChannelClosed, MessageLost

if TYPE_CHECKING:  # pragma: no cover
    from repro.plog.broker import PlogBroker
    from repro.sim.kernel import Simulator


@dataclass
class _Member:
    member_id: str
    channel: Channel
    topic: str


@dataclass
class _Group:
    name: str
    members: dict[str, _Member] = field(default_factory=dict)
    #: Bumped on every completed rebalance.
    generation: int = 0
    #: (topic, partition) -> committed offset (next offset to consume).
    offsets: dict[tuple[str, int], int] = field(default_factory=dict)
    #: member id -> tuple of assigned partitions, from the last rebalance.
    assignment: dict[str, tuple[int, ...]] = field(default_factory=dict)
    rebalance_armed: bool = False


class GroupCoordinator:
    """Group membership + partition assignment, hosted on one broker."""

    def __init__(self, broker: "PlogBroker", n_partitions: int):
        self.broker = broker
        self.sim: "Simulator" = broker.sim
        self.config: PlogConfig = broker.config
        self.n_partitions = n_partitions
        self.groups: dict[str, _Group] = {}
        self.rebalances = 0
        #: Commits rejected because the sender's generation was stale.
        self.fenced_commits = 0
        #: Optional mirror for accepted commits — the deployment wires this
        #: to append ``(group, topic, partition, offset)`` entries to the
        #: replicated ``__offsets`` partition so a successor coordinator
        #: can recover committed positions after a failover.
        self.offsets_sink: Optional[Callable[[list], None]] = None
        #: Offsets installed by :meth:`recover_from_log` at election time.
        self.offsets_recovered = 0
        broker.coordinator = self

    # ------------------------------------------------------------- requests
    def handle(self, channel: Channel, frame: tuple) -> None:
        kind = frame[0]
        if kind == "join":
            _, group_name, member_id, topic = frame
            self._on_join(channel, group_name, member_id, topic)
        elif kind == "leave":
            _, group_name, member_id = frame
            self._on_leave(group_name, member_id)
        elif kind == "commit":
            _, group_name, member_id, topic, offsets, generation = frame
            self._on_commit(group_name, member_id, topic, offsets, generation)
        else:  # pragma: no cover - broker dispatch guards this
            raise ValueError(f"unknown group frame {kind!r}")

    def _on_join(
        self, channel: Channel, group_name: str, member_id: str, topic: str
    ) -> None:
        group = self.groups.setdefault(group_name, _Group(group_name))
        group.members[member_id] = _Member(member_id, channel, topic)
        self._arm_rebalance(group)

    def _on_leave(self, group_name: str, member_id: str) -> None:
        group = self.groups.get(group_name)
        if group is None or member_id not in group.members:
            return
        del group.members[member_id]
        self._arm_rebalance(group)

    def _on_commit(
        self,
        group_name: str,
        member_id: str,
        topic: str,
        offsets: dict,
        generation: int,
    ) -> None:
        group = self.groups.get(group_name)
        if group is None:
            return
        if generation != group.generation:
            # Zombie fencing: a member still acting on a pre-rebalance
            # assignment (paused, partitioned, or slow) must not clobber
            # the new owner's position.  Its commit is dropped whole — the
            # widened replay window is the at-least-once cost of fencing.
            self.fenced_commits += 1
            return
        # Only the current owner of a partition may move its offset.
        owned = set(group.assignment.get(member_id, ()))
        accepted: list[tuple[str, str, int, int]] = []
        for partition, offset in offsets.items():
            if partition in owned:
                key = (topic, partition)
                if offset > group.offsets.get(key, 0):
                    group.offsets[key] = offset
                    accepted.append((group_name, topic, partition, offset))
        if accepted and self.offsets_sink is not None:
            self.offsets_sink(accepted)

    def on_disconnect(self, channel: Channel) -> None:
        """A client channel died: evict any member it belonged to."""
        for group in self.groups.values():
            dead = [
                m.member_id
                for m in group.members.values()
                if m.channel is channel or m.channel is channel.peer
            ]
            for member_id in dead:
                del group.members[member_id]
            if dead:
                self._arm_rebalance(group)

    # ----------------------------------------------------------- rebalance
    def _arm_rebalance(self, group: _Group) -> None:
        if group.rebalance_armed:
            return  # coalesce: the pending timer will see the latest state
        group.rebalance_armed = True
        self.sim.call_at(
            self.sim.now + self.config.rebalance_delay,
            lambda: self._rebalance(group),
        )

    def _rebalance(self, group: _Group) -> None:
        group.rebalance_armed = False
        group.generation += 1
        self.rebalances += 1
        members = sorted(group.members.values(), key=lambda m: m.member_id)
        group.assignment = self._range_assign(members)
        for member in members:
            partitions = group.assignment[member.member_id]
            offsets = {
                p: group.offsets.get((member.topic, p), 0) for p in partitions
            }
            self.sim.process(
                self._push_assignment(member, group, partitions, offsets),
                name=f"{self.broker.name}.assign",
            )

    def _range_assign(
        self, members: list[_Member]
    ) -> dict[str, tuple[int, ...]]:
        """Contiguous partition ranges, remainder spread over the first
        members — the classic range assignor."""
        if not members:
            return {}
        n = len(members)
        base, extra = divmod(self.n_partitions, n)
        assignment: dict[str, tuple[int, ...]] = {}
        start = 0
        for i, member in enumerate(members):
            count = base + (1 if i < extra else 0)
            assignment[member.member_id] = tuple(range(start, start + count))
            start += count
        return assignment

    def _push_assignment(self, member, group, partitions, offsets):
        yield from self.broker.node.execute(self.config.group_request_cpu)
        try:
            yield from member.channel.send(
                ("assign", group.name, group.generation, partitions, offsets),
                self.config.control_bytes
                + self.config.control_bytes * max(1, len(partitions)) // 4,
            )
        except (MessageLost, ChannelClosed):
            pass

    # -------------------------------------------------------------- recovery
    def recover_from_log(self, offsets_log) -> None:
        """Rebuild committed offsets from a local ``__offsets`` replica.

        Called by the controller when this coordinator is elected after its
        predecessor's broker died.  The replica may trail the dead
        coordinator's in-memory state by the replication lag — consumers
        replay that window, which at-least-once delivery absorbs.
        Membership is *not* recovered: consumers rejoin (their coordinator
        channels died with the old broker) and the resulting rebalance
        hands out partitions with the recovered offsets.
        """
        for segment in offsets_log.segments:
            for record in segment.records:
                entry = record.value
                if not isinstance(entry, tuple) or len(entry) != 4:
                    continue  # pragma: no cover - foreign record shape
                group_name, topic, partition, offset = entry
                group = self.groups.setdefault(group_name, _Group(group_name))
                key = (topic, partition)
                if offset > group.offsets.get(key, 0):
                    group.offsets[key] = offset
                    self.offsets_recovered += 1

    # ------------------------------------------------------------ inspection
    def assignment_of(self, group_name: str, member_id: str) -> tuple[int, ...]:
        group = self.groups.get(group_name)
        if group is None:
            return ()
        return group.assignment.get(member_id, ())

    def member_count(self, group_name: str) -> int:
        group = self.groups.get(group_name)
        return 0 if group is None else len(group.members)
