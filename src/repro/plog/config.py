"""Calibration constants for the partitioned-log broker model.

The broker is modelled on the same reference node as the paper's testbed
(Pentium III 866 MHz), so costs are directly comparable with
:class:`repro.narada.NaradaConfig`.  Where Narada pays ~2.3 ms of broker
CPU per message (Java 1.4 object streams, per-subscriber selector scans),
a commit log pays a small per-*batch* request cost plus a byte-oriented
per-record cost: appends are sequential writes and fetches ship contiguous
offset ranges, which is exactly why this design scales fan-in where a
routing broker does not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faults.recovery import RetryPolicy

KiB = 1024
MiB = 1024 * 1024

#: ``acks`` value meaning "wait for every in-sync replica".
ACKS_ALL = -1

#: Internal topic holding consumer-group offset commits; replicated across
#: all brokers so a re-elected coordinator can recover committed positions.
OFFSETS_TOPIC = "__offsets"


@dataclass(frozen=True)
class PlogConfig:
    """All knobs of the partitioned-log model (frozen; derive variants with
    :meth:`with_`)."""

    # -- topic layout ------------------------------------------------------
    #: Partitions per topic; records hash to ``stable_hash(key) % partitions``.
    partitions: int = 32

    # -- producer ----------------------------------------------------------
    #: Batching delay: a batch is flushed ``linger`` seconds after its first
    #: record unless it fills up first.
    linger: float = 0.05
    #: Records per batch before an immediate flush.
    batch_max_records: int = 64
    #: Bytes per batch before an immediate flush.
    batch_max_bytes: int = 64 * KiB
    #: 0 = fire-and-forget, 1 = wait for the leader's append acknowledgement,
    #: -1 (``ACKS_ALL``) = wait until every in-sync replica has the batch
    #: (the ack fires when the high watermark passes the batch's last offset).
    acks: int = 1
    #: Per-partition cap on concurrently in-flight (unacknowledged) batches,
    #: à la Kafka ``max.in.flight.requests.per.connection``.  Batches beyond
    #: the window queue client-side instead of spawning more flushes, so one
    #: partition's retry storm cannot monopolise the broker and a backoff
    #: head-of-line-blocks at most ``max_in_flight`` batches, not the world.
    #: 0 disables the window (the pre-replication unbounded behaviour).
    max_in_flight: int = 5

    # -- consumer ----------------------------------------------------------
    #: Max records returned by one fetch (the pull-side batch).
    fetch_max_records: int = 512
    #: Long-poll: a fetch with no data parks at the broker for at most this
    #: long before returning empty.
    fetch_max_wait: float = 0.25
    #: Client-side CPU to deserialise + process one fetched record.
    consumer_record_cpu: float = 40e-6
    #: Interval between automatic offset commits to the coordinator.
    auto_commit_interval: float = 5.0

    # -- broker CPU (seconds on the reference node) ------------------------
    #: Fixed cost to decode + dispatch one request frame (produce or fetch).
    request_cpu: float = 0.0004
    #: Appending one record to a partition log (index update + copy).
    append_record_cpu: float = 60e-6
    #: Per-byte append cost (sequential write; far below Narada's 1 µs/B
    #: object-stream cost).
    append_byte_cpu: float = 0.3e-6
    #: Shipping one record in a fetch response (zero-copy-style read).
    fetch_record_cpu: float = 20e-6
    #: Per-byte fetch cost.
    fetch_byte_cpu: float = 0.1e-6
    #: Accepting a connection (no thread spawn, just registration).
    accept_cpu: float = 0.0008
    #: Coordinator work per group-membership request.
    group_request_cpu: float = 0.0005
    #: Fixed I/O thread pool serving the shared request queue.
    io_threads: int = 4

    # -- protocol bytes ----------------------------------------------------
    #: Framing per request/response on the wire.
    frame_overhead_bytes: int = 24
    #: Batch header (offsets, CRC, compression metadata).
    batch_overhead_bytes: int = 61
    #: Size of a control frame (join/assign/commit/ack).
    control_bytes: int = 48

    # -- broker JVM / memory ----------------------------------------------
    #: -Xmx, kept at the paper's 1 GiB so walls are comparable.
    heap_bytes: float = 1024 * MiB
    #: Native stack per I/O thread (same JVM-1.4-era default).
    thread_stack_bytes: float = 256 * KiB
    #: Address space for thread stacks (irrelevant at ``io_threads`` ≈ 4,
    #: which is the point).
    native_budget_bytes: float = 900 * MiB
    #: Long-lived heap per client connection (socket buffers + session);
    #: no thread stack, so the wall is heap-bound at ~20k connections
    #: instead of thread-bound at ~3.6k.
    per_connection_heap: float = 48 * KiB
    #: Retained heap per log record beyond its payload bytes.
    per_record_overhead_bytes: float = 64.0

    # -- log segments ------------------------------------------------------
    #: A segment rolls once it holds this many bytes.
    segment_max_bytes: float = 1 * MiB
    #: Per-partition retention: oldest whole segments are evicted once the
    #: partition exceeds this (bounds broker heap for long runs).
    retention_bytes: float = 8 * MiB

    # -- fault recovery ----------------------------------------------------
    #: Producer-side retry of a batch whose send or acknowledgement failed.
    #: The default (retries=0) keeps the pre-fault behaviour: one shot,
    #: failures count into ``send_failures``.
    producer_retry: RetryPolicy = RetryPolicy()
    #: With retries enabled, how long a producer waits for a produce_ack
    #: before treating the attempt as lost and backing off.
    produce_ack_timeout: float = 1.0
    #: Reroute records whose partition's broker is down to a partition on a
    #: surviving broker (sticky until the producer reconnects).
    failover: bool = False
    #: Idempotent producer: stamp every batch with (producer id, per-
    #: partition base sequence) so brokers absorb retried batches instead of
    #: appending them twice — exactly-once appends across retries and
    #: leader failover.  Forces one in-flight batch per partition (strict
    #: per-partition send order, à la Kafka's idempotence ordering rule).
    #: Not meaningful combined with ``failover`` rerouting: sequences are
    #: scoped to the partition the batch was first routed to.
    idempotent: bool = False
    #: Consumer-side recovery: re-issue timed-out fetches, reconnect dead
    #: sessions with capped backoff, keep committing through coordinator
    #: hiccups.  Off by default so the no-fault schedule is untouched.
    consumer_recovery: bool = False
    #: Consumer: extra wait beyond ``fetch_max_wait`` before a fetch with no
    #: response is re-issued (covers a lost response or a stalled broker).
    fetch_response_grace: float = 1.0
    #: Consumer reconnect/refetch backoff: first delay and its cap (the
    #: consumer never gives up while it holds an assignment — a monitoring
    #: pipeline's reader should outlive transient broker outages).
    consumer_retry_backoff: float = 0.2
    consumer_retry_max: float = 2.0

    # -- consumer groups ---------------------------------------------------
    #: Coordinator waits this long after a membership change before
    #: computing the new assignment (coalesces join storms).
    rebalance_delay: float = 0.5

    # -- replication -------------------------------------------------------
    #: Copies of each partition (1 = unreplicated, the pre-replication
    #: behaviour; N > 1 places replicas on the N round-robin-next brokers,
    #: first replica = preferred leader).
    replication_factor: int = 1
    #: ``acks=-1`` produce requests fail with ``not_enough_replicas`` when
    #: the ISR has shrunk below this (Kafka ``min.insync.replicas``).
    min_insync_replicas: int = 1
    #: Records per replica fetch (followers catch up in bigger bites than
    #: consumers).
    replica_fetch_max_records: int = 2048
    #: Long-poll ceiling for a replica fetch with no new data.
    replica_fetch_wait: float = 0.25
    #: Follower backoff after a failed replica fetch (leader unreachable,
    #: lost response) before reconnecting and retrying.
    replica_fetch_backoff: float = 0.1
    #: A follower that has not been caught up to the leader's end for this
    #: long is dropped from the ISR (Kafka ``replica.lag.time.max.ms``).
    replica_lag_max: float = 1.0
    #: Leader-side period of the ISR shrink scan.
    isr_check_interval: float = 0.25
    #: Controller liveness-scan period: bounds failure-detection latency for
    #: leader election and coordinator failover.
    failure_detect_interval: float = 0.25
    #: Run the cluster controller (and host the group coordinator's offsets
    #: on the replicated ``__offsets`` log) even at ``replication_factor=1``,
    #: so coordinator re-election can be exercised without data replication.
    coordinator_failover: bool = False

    def with_(self, **changes) -> "PlogConfig":
        """Convenience wrapper around :func:`dataclasses.replace`."""
        return replace(self, **changes)

    def append_cpu(self, records: int, nbytes: float) -> float:
        """Broker CPU to append one batch."""
        return (
            self.request_cpu
            + self.append_record_cpu * records
            + self.append_byte_cpu * nbytes
        )

    def fetch_cpu(self, records: int, nbytes: float) -> float:
        """Broker CPU to serve one fetch response."""
        return (
            self.request_cpu
            + self.fetch_record_cpu * records
            + self.fetch_byte_cpu * nbytes
        )
