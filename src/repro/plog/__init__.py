"""A partitioned commit-log broker — the third middleware candidate.

Neither system the paper tested meets the §I soft real-time SLA at the
"tens of thousands of generators" scale it motivates: a single Narada
broker runs out of memory before 4000 connections (thread-per-connection),
the tested DBN broadcasts all data, and R-GMA's mediator pipeline adds
seconds of process time.  This package implements the design that modern
broker studies show *does* scale fan-in pub/sub: a Kafka-style partitioned
commit log.

* topics are split into N partitions; records are hashed to a partition by
  generator id (:mod:`repro.plog.partitioner`);
* each partition is an append-only segmented log with offset-based reads
  (:mod:`repro.plog.log`);
* the broker serves all connections from a small fixed pool of I/O threads
  over a shared request queue — no per-connection thread, so no native
  thread wall (:mod:`repro.plog.broker`);
* producers batch records per partition with a linger timer and optional
  acknowledgements (:mod:`repro.plog.producer`);
* consumers *pull* batches with long-poll fetches — one in-flight fetch
  per partition is the backpressure (:mod:`repro.plog.consumer`);
* consumer groups get partitions range-assigned by a coordinator and are
  rebalanced when membership changes (:mod:`repro.plog.group`);
* a deployment spreads *partitions* (not full traffic, unlike the flawed
  Narada DBN) across Hydra nodes (:mod:`repro.plog.deployment`);
* with ``replication_factor > 1``, partitions get leader/follower replicas
  with ISR tracking and high-watermark semantics, a controller elects new
  leaders (and re-elects the group coordinator) on broker crash, and
  ``acks=all`` producers lose no acknowledged record to a single broker
  death (:mod:`repro.plog.replication`).

Everything runs on the existing deterministic substrate (``repro.sim``,
``repro.cluster``, ``repro.transport``), so runs are bit-reproducible.
"""

from repro.plog.config import ACKS_ALL, OFFSETS_TOPIC, PlogConfig
from repro.plog.partitioner import partition_for, stable_hash
from repro.plog.log import AppendResult, PartitionLog
from repro.plog.replication import (
    ClusterController,
    PartitionState,
    ReplicaFetcher,
    ReplicaProgress,
)
from repro.plog.broker import PlogBroker
from repro.plog.group import GroupCoordinator
from repro.plog.producer import PlogProducer
from repro.plog.consumer import PlogConsumer
from repro.plog.deployment import PlogDeployment

__all__ = [
    "ACKS_ALL",
    "AppendResult",
    "ClusterController",
    "GroupCoordinator",
    "OFFSETS_TOPIC",
    "PartitionLog",
    "PartitionState",
    "PlogBroker",
    "PlogConfig",
    "PlogConsumer",
    "PlogDeployment",
    "PlogProducer",
    "ReplicaFetcher",
    "ReplicaProgress",
    "partition_for",
    "stable_hash",
]
