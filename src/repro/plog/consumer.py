"""The fetching client: group membership, long-poll fetch loops, commits.

A consumer joins a group at the coordinator and waits to be *assigned*
partitions; it never picks them itself.  Per assigned partition it runs a
sequential fetch loop — one request in flight, the next issued only after
the previous response is fully processed — which is the pull-based
backpressure that distinguishes this design from Narada's push delivery:
a slow consumer lags in offsets instead of ballooning broker heap.

Responses multiplex over one channel per broker; a reader process
dispatches them to the waiting fetch loop by correlation id.  Rebalances
bump the assignment *generation*; fetch loops from stale generations
terminate at their next wakeup, and committed offsets let the new owner
resume where the old one stopped (at-least-once delivery — the record
stamping in :mod:`repro.powergrid.receiver` guards against counting
redelivered records twice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.plog.config import PlogConfig
from repro.transport.base import (
    Channel,
    ChannelClosed,
    MessageLost,
    TransportError,
    EOF,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.plog.deployment import PlogDeployment
    from repro.sim.kernel import Simulator

#: ``on_record`` callback signature: (value, t_arrived) -> None, invoked
#: after the per-record processing CPU has been charged.
RecordCallback = Callable[[Any, float], None]


@dataclass
class _BrokerSession:
    #: None while the owning fetch loop is still connecting.
    channel: Optional[Channel]
    #: Triggered once ``channel`` is usable (or failed on connect error).
    ready: Any
    #: corr id -> Event the fetch loop is parked on.
    pending: dict[int, Any] = field(default_factory=dict)


class PlogConsumer:
    """One consumer-group member."""

    def __init__(
        self,
        sim: "Simulator",
        deployment: "PlogDeployment",
        node: "Node",
        name: str,
        group: str,
        topic: str,
        on_record: Optional[RecordCallback] = None,
        config: Optional[PlogConfig] = None,
    ):
        self.sim = sim
        self.deployment = deployment
        self.node = node
        self.name = name
        self.group = group
        self.topic = topic
        self.on_record = on_record
        self.config = config or deployment.config
        self._coord: Optional[Channel] = None
        #: broker name -> session (shared by that broker's partitions).
        self._sessions: dict[str, _BrokerSession] = {}
        self._corr = 0
        self.generation = 0
        #: Currently-assigned partitions.
        self.assigned: tuple[int, ...] = ()
        #: partition -> next offset to fetch (the commit position).
        self.positions: dict[int, int] = {}
        self.records_consumed = 0
        self.fetches_issued = 0
        self.rebalances_seen = 0
        #: Recovery counters (only move with ``config.consumer_recovery``).
        self.fetch_retries = 0
        self.fetch_timeouts = 0
        self.reconnects = 0
        #: Times this member rejoined after losing its coordinator channel
        #: (coordinator broker crash → re-election → rejoin + rebalance).
        self.coordinator_rejoins = 0
        #: Scales per-record processing CPU; the slow-consumer fault raises
        #: it for a window, modelling a starved subscriber.
        self.record_cpu_multiplier = 1.0
        self.closed = False

    # --------------------------------------------------------------- startup
    def start(self) -> Generator[Any, Any, None]:
        """Connect to the coordinator, join the group, serve assignments.

        Run as a process: ``sim.process(consumer.start())``.  Raises the
        transport's refusal errors if the coordinator connection fails.

        With ``consumer_recovery`` the member outlives its coordinator:
        when the coordinator channel dies (broker crash), it reconnects via
        coordinator *discovery* — reaching the re-elected coordinator — and
        rejoins, which triggers the rebalance that resumes assignments and
        commits.  Without recovery the pre-failover behaviour is kept
        exactly: connect errors raise, EOF ends the membership.
        """
        recover = self.config.consumer_recovery
        backoff = self.config.consumer_retry_backoff
        joined_once = False
        while not self.closed:
            try:
                self._coord = yield from self.deployment.connect_coordinator(
                    self.node
                )
                yield from self._coord.send(
                    ("join", self.group, self.name, self.topic),
                    self.config.control_bytes,
                )
            except (TransportError, ChannelClosed, MessageLost):
                if not recover:
                    raise
                self._coord = None
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2.0, self.config.consumer_retry_max)
                continue
            if not joined_once:
                joined_once = True
                self.sim.process(self._commit_loop(), name=f"{self.name}.commit")
            backoff = self.config.consumer_retry_backoff
            while not self.closed:
                delivery = yield self._coord.receive()
                if delivery.payload is EOF:
                    break
                frame = delivery.payload
                if frame[0] == "assign":
                    _, _, generation, partitions, offsets = frame
                    self._on_assignment(generation, partitions, offsets)
            if self.closed or not recover:
                return
            self.coordinator_rejoins += 1
            yield self.sim.timeout(backoff)

    def _on_assignment(
        self, generation: int, partitions: tuple, offsets: dict
    ) -> None:
        previous = set(self.assigned)
        self.generation = generation
        self.assigned = tuple(partitions)
        self.rebalances_seen += 1
        for partition in partitions:
            self.positions.setdefault(partition, offsets.get(partition, 0))
            # Spawn a fresh loop for *every* assigned partition: loops from
            # the previous generation terminate at their next wakeup (stale
            # generation check), including for partitions we retained.
            self.sim.process(
                self._fetch_loop(partition, generation),
                name=f"{self.name}.fetch.p{partition}",
            )
        for partition in previous - set(partitions):
            self.positions.pop(partition, None)

    # ---------------------------------------------------------------- fetching
    def _fetch_loop(
        self, partition: int, generation: int
    ) -> Generator[Any, Any, None]:
        cfg = self.config
        recover = cfg.consumer_recovery
        backoff = cfg.consumer_retry_backoff
        while not self.closed and self.generation == generation:
            offset = self.positions.get(partition)
            if offset is None:
                return  # partition was reassigned away
            try:
                session = yield from self._session_for(partition)
            except (TransportError, MessageLost):
                if not recover:
                    return
                # Broker down: keep knocking — the log is durable, so the
                # loop resumes at its committed offset once it is back.
                self.reconnects += 1
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2.0, cfg.consumer_retry_max)
                continue
            self._corr += 1
            corr = self._corr
            response = self.sim.event()
            session.pending[corr] = response
            try:
                yield from session.channel.send(
                    (
                        "fetch",
                        corr,
                        self.topic,
                        partition,
                        offset,
                        cfg.fetch_max_records,
                        cfg.fetch_max_wait,
                    ),
                    cfg.frame_overhead_bytes,
                )
            except (MessageLost, ChannelClosed) as exc:
                session.pending.pop(corr, None)
                if not recover:
                    return
                if isinstance(exc, ChannelClosed):
                    self._drop_session(session)
                self.fetch_retries += 1
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2.0, cfg.consumer_retry_max)
                continue
            self.fetches_issued += 1
            if recover:
                deadline = self.sim.timeout(
                    cfg.fetch_max_wait + cfg.fetch_response_grace
                )
                yield self.sim.any_of([response, deadline])
                if not response.triggered:
                    # Response lost or broker stalled: re-issue from the
                    # same offset (a late response is dropped harmlessly).
                    session.pending.pop(corr, None)
                    self.fetch_timeouts += 1
                    continue
                result = response.value
            else:
                result = yield response
            if result is None:
                # Session died while we were parked (reader saw EOF).
                if not recover:
                    return
                self._drop_session(session)
                self.reconnects += 1
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2.0, cfg.consumer_retry_max)
                continue
            backoff = cfg.consumer_retry_backoff
            records, next_offset, _hwm = result
            t_arrived = self.sim.now
            if self.closed or self.generation != generation:
                return  # stale: do not advance offsets past a rebalance
            for _offset, value in records:
                yield from self.node.execute(
                    cfg.consumer_record_cpu * self.record_cpu_multiplier
                )
                self.records_consumed += 1
                if self.on_record is not None:
                    self.on_record(value, t_arrived)
            if partition in self.positions:
                self.positions[partition] = next_offset

    def _session_for(
        self, partition: int
    ) -> Generator[Any, Any, _BrokerSession]:
        broker_name = self.deployment.owner_name(partition)
        session = self._sessions.get(broker_name)
        if (
            session is not None
            and self.config.consumer_recovery
            and session.channel is not None
            and session.channel.closed
        ):
            # Stale session from before a broker crash: rebuild it.
            self._drop_session(session)
            session = None
        if session is not None:
            # Another fetch loop owns the connect; wait until it is usable.
            if session.channel is None:
                yield session.ready
            if session.channel is None:
                raise ChannelClosed(f"connect to {broker_name} failed")
            return session
        # Reserve the slot *before* yielding so concurrent fetch loops for
        # partitions on the same broker share one connection.
        session = _BrokerSession(None, self.sim.event())
        self._sessions[broker_name] = session
        try:
            channel = yield from self.deployment.connect(self.node, partition)
        except (TransportError, MessageLost):
            del self._sessions[broker_name]
            session.ready.succeed()
            raise
        session.channel = channel
        session.ready.succeed()
        self.sim.process(
            self._response_reader(session), name=f"{self.name}.responses"
        )
        return session

    def _drop_session(self, session: _BrokerSession) -> None:
        """Forget a dead broker session so the next fetch reconnects."""
        for name, existing in list(self._sessions.items()):
            if existing is session:
                del self._sessions[name]
        if session.channel is not None and not session.channel.closed:
            session.channel.close()

    def _response_reader(
        self, session: _BrokerSession
    ) -> Generator[Any, Any, None]:
        while not self.closed:
            delivery = yield session.channel.receive()
            if delivery.payload is EOF:
                # ``None`` tells parked fetch loops the session is gone —
                # they reconnect (recovery) or terminate (legacy).
                for event in session.pending.values():
                    if not event.triggered:
                        event.succeed(None)
                session.pending.clear()
                return
            frame = delivery.payload
            if frame[0] != "fetch_resp":  # pragma: no cover - protocol guard
                continue
            yield from self.node.execute(
                session.channel.cost_model.recv_cost(delivery.nbytes)
            )
            event = session.pending.pop(frame[1], None)
            if event is not None:
                event.succeed((frame[2], frame[3], frame[4]))

    # ---------------------------------------------------------------- commits
    def _commit_loop(self) -> Generator[Any, Any, None]:
        while not self.closed:
            yield self.sim.timeout(self.config.auto_commit_interval)
            if self.closed or self._coord is None or not self.positions:
                continue
            try:
                yield from self._coord.send(
                    ("commit", self.group, self.name, self.topic,
                     dict(self.positions), self.generation),
                    self.config.control_bytes,
                )
            except (MessageLost, ChannelClosed):
                if not self.config.consumer_recovery:
                    return
                # Keep the loop alive: commits resume once the coordinator
                # is reachable again (missed commits just widen replay).

    # ------------------------------------------------------------------ admin
    def close(self) -> None:
        self.closed = True
        if self._coord is not None and not self._coord.closed:
            self._coord.close()
        for session in self._sessions.values():
            if session.channel is not None and not session.channel.closed:
                session.channel.close()
