"""Wiring a plog cluster onto Hydra nodes.

A deployment owns one topic's layout: ``partitions`` partition logs spread
round-robin over one or more brokers (partition ``p``'s *preferred leader*
is broker ``p % n_brokers``), the group coordinator, and factory methods
for clients.  With one broker this is the exact analogue of the paper's
single-Narada-broker setup; with several, *partitions* (and therefore
connections and traffic) spread across nodes — contrast
:class:`repro.narada.BrokerNetwork`, where every broker still sees every
message because the DBN floods.

With ``replication_factor > 1`` each partition also gets follower replicas
on the next brokers in the ring, a :class:`ReplicaFetcher` per follower,
and a :class:`ClusterController` that re-elects leaders (and the group
coordinator) on broker death.  ``owner()`` then answers from a *dynamic*
leader map kept current by the controller — clients always route to the
leader the control plane most recently installed.  The coordinator mirrors
accepted offset commits into the internal replicated ``__offsets``
partition so its successor can recover them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from repro.plog.broker import PlogBroker
from repro.plog.config import OFFSETS_TOPIC, PlogConfig
from repro.plog.consumer import PlogConsumer, RecordCallback
from repro.plog.group import GroupCoordinator
from repro.plog.producer import PlogProducer
from repro.plog.replication import ClusterController, ReplicaFetcher
from repro.transport.base import Channel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

#: Default base port for plog brokers (one port per broker).
PLOG_PORT = 5060


class PlogDeployment:
    """One topic served by one or more partitioned-log brokers."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        transport: Any,
        broker_hosts: Sequence[str] = ("hydra1",),
        topic: str = "grid.monitoring",
        config: Optional[PlogConfig] = None,
        base_port: int = PLOG_PORT,
    ):
        if not broker_hosts:
            raise ValueError("need at least one broker host")
        self.sim = sim
        self.cluster = cluster
        self.transport = transport
        self.topic = topic
        self.config = config or PlogConfig()
        self.base_port = base_port
        replication = self.config.replication_factor
        if replication < 1:
            raise ValueError("replication_factor must be >= 1")
        if replication > len(broker_hosts):
            raise ValueError(
                f"replication_factor={replication} needs at least that many "
                f"brokers, got {len(broker_hosts)}"
            )
        self.brokers: list[PlogBroker] = []
        self._ports: dict[str, int] = {}
        self._by_name: dict[str, PlogBroker] = {}
        for i, host in enumerate(broker_hosts):
            node = cluster.node(host)
            broker = PlogBroker(sim, node, f"plog-{host}", self.config)
            self.brokers.append(broker)
            self._by_name[broker.name] = broker
            self._ports[broker.name] = base_port + i
        #: partition -> replica broker names (first = preferred leader).
        self.replica_map: dict[int, tuple[str, ...]] = {}
        #: Dynamic leader map, updated by the controller on elections.
        self._leaders: dict[tuple[str, int], PlogBroker] = {}
        #: Partitions with no live in-sync replica (election failed).
        self._offline: dict[tuple[str, int], bool] = {}
        self.replica_fetchers: list[ReplicaFetcher] = []
        n = len(self.brokers)
        for partition in range(self.config.partitions):
            names = tuple(
                self.brokers[(partition + k) % n].name for k in range(replication)
            )
            self.replica_map[partition] = names
            for name in names:
                self._by_name[name].create_partition(
                    self.topic, partition, replicas=names, leader=names[0]
                )
            self._leaders[(self.topic, partition)] = self._by_name[names[0]]
            for name in names[1:]:
                self.replica_fetchers.append(
                    ReplicaFetcher(self, self._by_name[name], self.topic, partition)
                )
        self._controller_enabled = (
            replication > 1 or self.config.coordinator_failover
        ) and n > 1
        self._coordinator_broker = self.brokers[0]
        if self._controller_enabled:
            # The internal __offsets partition is replicated to *every*
            # broker so any successor coordinator can recover commits from
            # its local replica.
            all_names = tuple(b.name for b in self.brokers)
            for broker in self.brokers:
                broker.create_partition(
                    OFFSETS_TOPIC, 0, replicas=all_names, leader=all_names[0]
                )
            self._leaders[(OFFSETS_TOPIC, 0)] = self.brokers[0]
            for broker in self.brokers[1:]:
                self.replica_fetchers.append(
                    ReplicaFetcher(self, broker, OFFSETS_TOPIC, 0)
                )
        self.coordinator = GroupCoordinator(
            self.brokers[0], self.config.partitions
        )
        if self._controller_enabled:
            self._wire_offsets_sink(self.coordinator)
        self.controller: Optional[ClusterController] = (
            ClusterController(sim, self) if self._controller_enabled else None
        )

    # --------------------------------------------------------------- layout
    @property
    def n_partitions(self) -> int:
        return self.config.partitions

    def owner(self, partition: int) -> PlogBroker:
        """The broker currently *leading* ``partition``.

        Unreplicated this is the static round-robin owner; replicated it is
        whatever leader the controller last installed.  While a partition
        is offline (no live in-sync replica) the last leader is returned —
        clients' connects fail and retry until an election succeeds.
        """
        return self._leaders[(self.topic, partition)]

    def owner_name(self, partition: int) -> str:
        return self.owner(partition).name

    def leader_name(self, topic: str, partition: int) -> Optional[str]:
        broker = self._leaders.get((topic, partition))
        if broker is None:
            return None
        return broker.name if self._offline.get((topic, partition)) is not True else None

    def set_leader(
        self, topic: str, partition: int, broker: Optional[PlogBroker]
    ) -> None:
        """Controller hook: install an election result.  ``None`` marks the
        partition offline (the stale map entry is kept for ``owner()``)."""
        if broker is None:
            self._offline[(topic, partition)] = True
            return
        self._offline.pop((topic, partition), None)
        self._leaders[(topic, partition)] = broker

    def live_partition(self, partition: int) -> int:
        """``partition`` itself if its broker is up, else a partition owned
        by the nearest surviving broker (producer failover).

        Stepping the partition index steps the owning broker (round-robin
        layout), so ``partition + k`` probes broker ``(p + k) % n``.  With
        every broker down the original partition is returned — the caller's
        connect will fail and count as a refusal/retry.
        """
        def up(broker: PlogBroker) -> bool:
            return broker.alive and not broker.jvm.dead

        if up(self.owner(partition)):
            return partition
        for k in range(1, len(self.brokers)):
            candidate = (partition + k) % self.config.partitions
            if up(self.owner(candidate)):
                return candidate
        return partition

    def serve(self) -> None:
        """Start every broker listening on its port, the replica fetchers,
        and the cluster controller."""
        for broker in self.brokers:
            broker.serve(self.transport, self._ports[broker.name])
        for fetcher in self.replica_fetchers:
            fetcher.start()
        if self.controller is not None:
            self.controller.start()

    # ------------------------------------------------------------- connecting
    def connect(
        self, client_node: "Node", partition: int
    ) -> Generator[Any, Any, Channel]:
        """Open a channel from ``client_node`` to ``partition``'s broker."""
        broker = self.owner(partition)
        channel = yield from self.transport.connect(
            client_node, broker.node.name, self._ports[broker.name]
        )
        return channel

    def connect_coordinator(
        self, client_node: "Node"
    ) -> Generator[Any, Any, Channel]:
        """Open a channel from ``client_node`` to the coordinator broker.

        Routes through coordinator *discovery* — after a failover, clients
        reach the re-elected coordinator, not the corpse of broker 0.
        """
        broker = self.coordinator_broker()
        channel = yield from self.transport.connect(
            client_node, broker.node.name, self._ports[broker.name]
        )
        return channel

    def connect_to_broker(
        self, client_node: "Node", broker_name: str
    ) -> Generator[Any, Any, Channel]:
        """Open a channel to a broker by name (replica fetchers)."""
        broker = self._by_name[broker_name]
        channel = yield from self.transport.connect(
            client_node, broker.node.name, self._ports[broker.name]
        )
        return channel

    # ----------------------------------------------------------- coordinator
    def coordinator_broker(self) -> PlogBroker:
        """Coordinator discovery: the broker currently hosting the group
        coordinator (re-elected by the controller on crash)."""
        return self._coordinator_broker

    def install_coordinator(
        self, broker: PlogBroker, coordinator: GroupCoordinator
    ) -> None:
        """Controller hook: a coordinator election completed."""
        self._coordinator_broker = broker
        self.coordinator = coordinator
        if self._controller_enabled:
            self._wire_offsets_sink(coordinator)

    def _wire_offsets_sink(self, coordinator: GroupCoordinator) -> None:
        """Mirror accepted commits into the replicated ``__offsets`` log on
        the coordinator's broker, so a successor can replay them."""
        broker = coordinator.broker
        coordinator.offsets_sink = (
            lambda entries: broker.append_internal(OFFSETS_TOPIC, 0, entries)
        )

    # -------------------------------------------------------------- clients
    def producer(self, node: "Node", name: str) -> PlogProducer:
        return PlogProducer(self.sim, self, node, name, self.config)

    def consumer(
        self,
        node: "Node",
        name: str,
        group: str,
        on_record: Optional[RecordCallback] = None,
    ) -> PlogConsumer:
        return PlogConsumer(
            self.sim, self, node, name, group, self.topic, on_record,
            self.config,
        )

    # ----------------------------------------------------------------- stats
    def total_connections_refused(self) -> int:
        return sum(b.stats.connections_refused for b in self.brokers)

    def total_records_appended(self) -> int:
        return sum(b.stats.records_appended for b in self.brokers)

    def total_records_fetched(self) -> int:
        return sum(b.stats.records_fetched for b in self.brokers)

    def total_records_replicated(self) -> int:
        return sum(b.stats.records_replicated for b in self.brokers)

    def total_isr_shrinks(self) -> int:
        return sum(b.stats.isr_shrinks for b in self.brokers)

    def total_isr_expands(self) -> int:
        return sum(b.stats.isr_expands for b in self.brokers)
