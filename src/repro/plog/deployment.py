"""Wiring a plog cluster onto Hydra nodes.

A deployment owns one topic's layout: ``partitions`` partition logs spread
round-robin over one or more brokers (partition ``p`` lives on broker
``p % n_brokers``), the group coordinator on broker 0, and factory methods
for clients.  With one broker this is the exact analogue of the paper's
single-Narada-broker setup; with several, *partitions* (and therefore
connections and traffic) spread across nodes — contrast
:class:`repro.narada.BrokerNetwork`, where every broker still sees every
message because the DBN floods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from repro.plog.broker import PlogBroker
from repro.plog.config import PlogConfig
from repro.plog.consumer import PlogConsumer, RecordCallback
from repro.plog.group import GroupCoordinator
from repro.plog.producer import PlogProducer
from repro.transport.base import Channel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

#: Default base port for plog brokers (one port per broker).
PLOG_PORT = 5060


class PlogDeployment:
    """One topic served by one or more partitioned-log brokers."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        transport: Any,
        broker_hosts: Sequence[str] = ("hydra1",),
        topic: str = "grid.monitoring",
        config: Optional[PlogConfig] = None,
        base_port: int = PLOG_PORT,
    ):
        if not broker_hosts:
            raise ValueError("need at least one broker host")
        self.sim = sim
        self.cluster = cluster
        self.transport = transport
        self.topic = topic
        self.config = config or PlogConfig()
        self.base_port = base_port
        self.brokers: list[PlogBroker] = []
        self._ports: dict[str, int] = {}
        for i, host in enumerate(broker_hosts):
            node = cluster.node(host)
            broker = PlogBroker(sim, node, f"plog-{host}", self.config)
            self.brokers.append(broker)
            self._ports[broker.name] = base_port + i
        for partition in range(self.config.partitions):
            self.owner(partition).create_partition(self.topic, partition)
        self.coordinator = GroupCoordinator(
            self.brokers[0], self.config.partitions
        )

    # --------------------------------------------------------------- layout
    @property
    def n_partitions(self) -> int:
        return self.config.partitions

    def owner(self, partition: int) -> PlogBroker:
        """The broker hosting ``partition``."""
        return self.brokers[partition % len(self.brokers)]

    def owner_name(self, partition: int) -> str:
        return self.owner(partition).name

    def live_partition(self, partition: int) -> int:
        """``partition`` itself if its broker is up, else a partition owned
        by the nearest surviving broker (producer failover).

        Stepping the partition index steps the owning broker (round-robin
        layout), so ``partition + k`` probes broker ``(p + k) % n``.  With
        every broker down the original partition is returned — the caller's
        connect will fail and count as a refusal/retry.
        """
        def up(broker: PlogBroker) -> bool:
            return broker.alive and not broker.jvm.dead

        if up(self.owner(partition)):
            return partition
        for k in range(1, len(self.brokers)):
            candidate = (partition + k) % self.config.partitions
            if up(self.owner(candidate)):
                return candidate
        return partition

    def serve(self) -> None:
        """Start every broker listening on its port."""
        for broker in self.brokers:
            broker.serve(self.transport, self._ports[broker.name])

    # ------------------------------------------------------------- connecting
    def connect(
        self, client_node: "Node", partition: int
    ) -> Generator[Any, Any, Channel]:
        """Open a channel from ``client_node`` to ``partition``'s broker."""
        broker = self.owner(partition)
        channel = yield from self.transport.connect(
            client_node, broker.node.name, self._ports[broker.name]
        )
        return channel

    def connect_coordinator(
        self, client_node: "Node"
    ) -> Generator[Any, Any, Channel]:
        """Open a channel from ``client_node`` to the coordinator broker."""
        broker = self.brokers[0]
        channel = yield from self.transport.connect(
            client_node, broker.node.name, self._ports[broker.name]
        )
        return channel

    # -------------------------------------------------------------- clients
    def producer(self, node: "Node", name: str) -> PlogProducer:
        return PlogProducer(self.sim, self, node, name, self.config)

    def consumer(
        self,
        node: "Node",
        name: str,
        group: str,
        on_record: Optional[RecordCallback] = None,
    ) -> PlogConsumer:
        return PlogConsumer(
            self.sim, self, node, name, group, self.topic, on_record,
            self.config,
        )

    # ----------------------------------------------------------------- stats
    def total_connections_refused(self) -> int:
        return sum(b.stats.connections_refused for b in self.brokers)

    def total_records_appended(self) -> int:
        return sum(b.stats.records_appended for b in self.brokers)

    def total_records_fetched(self) -> int:
        return sum(b.stats.records_fetched for b in self.brokers)
