"""Broker-side idempotent-producer state.

Kafka's idempotent producer stamps every batch with a producer id and a
per-partition base sequence number; the broker remembers, per partition,
which sequences each producer has already appended and answers a retried
batch with the original acknowledgement instead of appending it again.
That turns the producer's at-least-once retry loop into exactly-once
*appends* — the retry that races a lost acknowledgement is absorbed here.

The sequence bookkeeping is the shared :class:`repro.core.DedupIndex`; one
:class:`PartitionProducerState` instance lives per hosted partition on
every replica.  The leader updates it at append time; followers receive a
compact snapshot piggybacked on replica-fetch responses and merge it in
lockstep with their log (entries are only applied once the batch they
describe is locally replicated), so a promoted follower starts with dedup
state consistent with its own log — a producer retry across a leader
failover is still recognised.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.core.dedup import DedupIndex

#: Snapshot entry: (contiguous floor, last seq_base, last count, last
#: base_offset) for one producer id.
SnapshotEntry = Tuple[int, int, int, int]


class PartitionProducerState:
    """Per-partition dedup state over ``(producer id, sequence)``."""

    def __init__(self) -> None:
        self.index = DedupIndex()
        #: pid -> (seq_base, count, base_offset) of the last appended batch,
        #: kept for re-acknowledging duplicate retries (including the
        #: ``acks=all`` re-park, which needs the batch's offset range).
        self.last_batch: Dict[Hashable, Tuple[int, int, int]] = {}
        #: Batches recognised as retries and absorbed without appending.
        self.duplicates = 0

    # -------------------------------------------------------------- dedup
    def duplicate(
        self, pid: Hashable, seq_base: int, count: int
    ) -> Optional[Tuple[int, int]]:
        """If the whole batch was already appended, return
        ``(required_hwm, base_offset)`` for the re-acknowledgement.

        Batches append atomically and retries re-send the identical batch,
        so seeing the batch's *last* sequence proves the whole run landed.
        The returned offsets come from the last recorded batch for ``pid``
        — exact for the common retry-of-latest case, conservatively high
        (parks an ``acks=all`` response a little longer) for older ghosts.
        """
        if count <= 0:
            return None
        if not self.index.seen(pid, seq_base + count - 1):
            return None
        self.duplicates += 1
        last = self.last_batch.get(pid)
        if last is None:  # floor known but batch offsets lost: ack at hwm 0
            return (0, -1)
        last_base, last_count, last_offset = last
        return (last_offset + last_count, last_offset)

    def record(
        self, pid: Hashable, seq_base: int, count: int, base_offset: int
    ) -> None:
        """Register a freshly appended batch."""
        self.index.mark_run(pid, seq_base, count)
        current = self.last_batch.get(pid)
        if current is None or seq_base >= current[0]:
            self.last_batch[pid] = (seq_base, count, base_offset)

    # -------------------------------------------------------- replication
    def snapshot(self) -> Dict[Hashable, SnapshotEntry]:
        """Compact state for piggybacking on a replica-fetch response."""
        floors = self.index.snapshot()
        out: Dict[Hashable, SnapshotEntry] = {}
        for pid, (seq_base, count, base_offset) in self.last_batch.items():
            out[pid] = (floors.get(pid, -1), seq_base, count, base_offset)
        return out

    def merge_snapshot(
        self, snapshot: Dict[Hashable, SnapshotEntry], log_end: int
    ) -> None:
        """Follower-side merge, gated by the local log.

        An entry is only applied once the batch it describes is fully
        replicated locally (``base_offset + count <= log_end``); otherwise
        a promotion in mid-catch-up would dedup retries of records this
        replica does not actually hold — acknowledged loss, the one thing
        replication exists to prevent.  Skipped entries arrive again with
        the next fetch round.
        """
        for pid, (floor, seq_base, count, base_offset) in snapshot.items():
            if base_offset + count > log_end:
                continue
            if floor >= 0:
                self.index.restore({pid: floor})
            current = self.last_batch.get(pid)
            if current is None or seq_base >= current[0]:
                self.last_batch[pid] = (seq_base, count, base_offset)
