"""The partitioned-log broker.

The architectural contrast with :class:`repro.narada.Broker` is the whole
point of this subsystem:

* **no thread per connection** — every channel delivers into one shared
  request queue served by a fixed pool of I/O threads, so connection count
  costs heap (socket/session state) but not native thread stacks.  The
  Narada wall at ~3600 threads simply does not exist here; the analogous
  wall is heap-bound at ~20k connections;
* **no per-subscriber routing work** — a produce request appends a batch to
  one partition log (sequential write, byte-oriented cost) and a fetch
  ships a contiguous offset range.  Per-message broker CPU is amortised by
  batching on both sides;
* **pull, not push** — consumers long-poll: a fetch with no available data
  parks (without holding an I/O thread) until an append to that partition
  wakes it or ``fetch_max_wait`` expires.

Wire protocol (tuples over a transport channel):

==========================================================  ==============
``("produce", corr, topic, part, batch, acks)``             client → broker
``("produce_ack", corr, base_offset)``                      broker → client
``("fetch", corr, topic, part, offset, max_n, max_wait)``   client → broker
``("fetch_resp", corr, records, next_offset, hwm)``         broker → client
``("join", group, member, topic)``                          client → coord
``("leave", group, member)``                                client → coord
``("commit", group, member, topic, {part: offset})``        client → coord
``("assign", group, generation, parts, offsets)``           coord → client
==========================================================  ==============

``batch`` is ``[(key, value, nbytes), ...]``; fetch-response ``records``
is ``[(offset, value), ...]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.plog.config import PlogConfig
from repro.plog.log import PartitionLog
from repro.sim import Store
from repro.telemetry.context import current as _telemetry
from repro.transport.base import EOF, Channel, ChannelClosed, MessageLost

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.plog.group import GroupCoordinator
    from repro.sim.kernel import Simulator


@dataclass
class PlogBrokerStats:
    """Counters the experiments read off."""

    connections_accepted: int = 0
    connections_refused: int = 0
    produce_batches: int = 0
    records_appended: int = 0
    records_dropped: int = 0
    fetches: int = 0
    empty_fetches: int = 0
    records_fetched: int = 0
    long_polls_parked: int = 0


@dataclass
class _FetchWaiter:
    """A parked long-poll fetch."""

    channel: Channel
    corr: int
    topic: str
    partition: int
    offset: int
    max_records: int
    active: bool = True


class PlogBroker:
    """One broker instance owning a subset of a topic's partitions."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        config: Optional[PlogConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.config = config or PlogConfig()
        self.jvm = Jvm(
            sim,
            node,
            f"{name}.jvm",
            heap_bytes=self.config.heap_bytes,
            thread_stack_bytes=self.config.thread_stack_bytes,
            native_budget_bytes=self.config.native_budget_bytes,
        )
        self.stats = PlogBrokerStats()
        self.logs: dict[tuple[str, int], PartitionLog] = {}
        self._waiters: dict[tuple[str, int], list[_FetchWaiter]] = {}
        self._requests: Store = Store(sim)
        self._io_started = False
        self.coordinator: Optional["GroupCoordinator"] = None
        self.alive = True
        self.open_connections = 0
        #: Open client channels, tracked so a crash can sever them.
        self._client_channels: list[Channel] = []
        self.crashes = 0
        self.restarts = 0

    # ------------------------------------------------------------ partitions
    def create_partition(self, topic: str, partition: int) -> PartitionLog:
        key = (topic, partition)
        if key in self.logs:
            raise ValueError(f"partition {key} already exists on {self.name}")
        log = PartitionLog(
            segment_max_bytes=self.config.segment_max_bytes,
            retention_bytes=self.config.retention_bytes,
            record_overhead_bytes=self.config.per_record_overhead_bytes,
        )
        self.logs[key] = log
        return log

    # --------------------------------------------------------------- serving
    def serve(self, transport: Any, port: int) -> None:
        """Accept client connections on ``transport``/``port``."""
        if not self._io_started:
            self._io_started = True
            for i in range(self.config.io_threads):
                self.jvm.spawn_thread(self._io_loop(), name=f"{self.name}.io{i}")
        transport.listen(self.node, port, self._accept)

    def _accept(self, channel: Channel) -> None:
        """Transport acceptor; raising refuses the connection."""
        if not self.alive:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} is down")
        try:
            self.jvm.alloc(self.config.per_connection_heap, "connection state")
        except OutOfMemoryError as exc:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} out of memory: {exc}") from exc
        self.stats.connections_accepted += 1
        self.open_connections += 1
        self._client_channels.append(channel)
        channel.on_deliver = lambda d: self._requests.put_nowait((channel, d))
        self.node.execute_process(self.config.accept_cpu)

    def _io_loop(self) -> Generator[Any, Any, None]:
        """One worker of the shared I/O pool."""
        while self.alive:
            channel, delivery = yield self._requests.get()
            if delivery.payload is EOF:
                self.jvm.free(self.config.per_connection_heap)
                self.open_connections -= 1
                self._on_channel_closed(channel)
                continue
            yield from self.node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            yield from self._handle(channel, delivery.payload)

    def _on_channel_closed(self, channel: Channel) -> None:
        try:
            self._client_channels.remove(channel)
        except ValueError:
            pass  # already severed by a crash
        for waiters in self._waiters.values():
            for waiter in waiters:
                if waiter.channel is channel or waiter.channel is channel.peer:
                    waiter.active = False
        if self.coordinator is not None:
            self.coordinator.on_disconnect(channel)

    # -------------------------------------------------------------- protocol
    def _handle(self, channel: Channel, frame: tuple) -> Generator[Any, Any, None]:
        kind = frame[0]
        if kind == "produce":
            _, corr, topic, partition, batch, acks = frame
            yield from self._on_produce(channel, corr, topic, partition, batch, acks)
        elif kind == "fetch":
            _, corr, topic, partition, offset, max_records, max_wait = frame
            yield from self._on_fetch(
                channel, corr, topic, partition, offset, max_records, max_wait
            )
        elif kind in ("join", "leave", "commit"):
            if self.coordinator is None:
                raise ValueError(f"broker {self.name} is not the coordinator")
            yield from self.node.execute(self.config.group_request_cpu)
            self.coordinator.handle(channel, frame)
        else:
            raise ValueError(f"unknown frame kind {frame[0]!r}")

    # --------------------------------------------------------------- produce
    def _on_produce(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        batch: list,
        acks: int,
    ) -> Generator[Any, Any, None]:
        log = self.logs[(topic, partition)]
        payload_bytes = sum(nbytes for _, _, nbytes in batch)
        stored_bytes = payload_bytes + self.config.per_record_overhead_bytes * len(batch)
        yield from self.node.execute(self.config.append_cpu(len(batch), payload_bytes))
        try:
            self.jvm.alloc(stored_bytes, "log append")
        except OutOfMemoryError:
            self.stats.records_dropped += len(batch)
            return
        result = log.append(batch)
        if result.evicted_bytes:
            self.jvm.free(result.evicted_bytes)
        self.stats.produce_batches += 1
        self.stats.records_appended += len(batch)
        tel = _telemetry()
        if tel is not None:
            for _, value, _ in batch:
                record = getattr(value, "_record", None)
                if record is not None:
                    tel.mark(record, "broker_in", self.sim.now, "plog", self.name)
        self._wake_fetchers(topic, partition)
        if acks:
            try:
                yield from channel.send(
                    ("produce_ack", corr, result.base_offset),
                    self.config.control_bytes,
                )
            except (MessageLost, ChannelClosed):
                pass

    # ----------------------------------------------------------------- fetch
    def _on_fetch(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        offset: int,
        max_records: int,
        max_wait: float,
    ) -> Generator[Any, Any, None]:
        log = self.logs[(topic, partition)]
        if log.end_offset > offset or max_wait <= 0:
            yield from self._respond_fetch(
                channel, corr, topic, partition, offset, max_records
            )
            return
        # Long poll: park without holding an I/O thread.
        waiter = _FetchWaiter(channel, corr, topic, partition, offset, max_records)
        self._waiters.setdefault((topic, partition), []).append(waiter)
        self.stats.long_polls_parked += 1
        self.sim.call_at(self.sim.now + max_wait, lambda: self._expire_waiter(waiter))

    def _wake_fetchers(self, topic: str, partition: int) -> None:
        waiters = self._waiters.pop((topic, partition), None)
        if not waiters:
            return
        for waiter in waiters:
            if not waiter.active:
                continue
            waiter.active = False
            self.sim.process(
                self._respond_fetch(
                    waiter.channel,
                    waiter.corr,
                    waiter.topic,
                    waiter.partition,
                    waiter.offset,
                    waiter.max_records,
                ),
                name=f"{self.name}.fetch-wake",
            )

    def _expire_waiter(self, waiter: _FetchWaiter) -> None:
        if not waiter.active:
            return
        waiter.active = False
        self.sim.process(
            self._respond_fetch(
                waiter.channel,
                waiter.corr,
                waiter.topic,
                waiter.partition,
                waiter.offset,
                waiter.max_records,
            ),
            name=f"{self.name}.fetch-expire",
        )

    def _respond_fetch(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        offset: int,
        max_records: int,
    ) -> Generator[Any, Any, None]:
        log = self.logs[(topic, partition)]
        stored = log.read(offset, max_records)
        records = [(r.offset, r.value) for r in stored]
        nbytes = (
            sum(r.nbytes for r in stored)
            + self.config.frame_overhead_bytes
            + self.config.batch_overhead_bytes
        )
        next_offset = stored[-1].offset + 1 if stored else max(offset, log.start_offset)
        self.stats.fetches += 1
        if stored:
            self.stats.records_fetched += len(stored)
        else:
            self.stats.empty_fetches += 1
        yield from self.node.execute(
            self.config.fetch_cpu(len(stored), nbytes)
        )
        try:
            yield from channel.send(
                ("fetch_resp", corr, records, next_offset, log.end_offset), nbytes
            )
            tel = _telemetry()
            if tel is not None:
                for r in stored:
                    record = getattr(r.value, "_record", None)
                    if record is not None:
                        tel.mark(
                            record, "broker_out", self.sim.now, "plog", self.name
                        )
        except (MessageLost, ChannelClosed):
            pass

    # ----------------------------------------------------------------- admin
    def partition_count(self) -> int:
        return len(self.logs)

    def shutdown(self) -> None:
        self.alive = False

    def crash(self) -> None:
        """Kill the broker process: refuse new connections, sever open ones.

        Closing each channel queues an EOF through the normal request path,
        so per-connection heap is freed (by the dying I/O threads, or by
        the restarted pool draining stale EOFs) exactly as on a clean
        disconnect.  Partition logs survive — the commit log is durable
        storage, so a restarted broker resumes serving existing offsets.
        """
        if not self.alive:
            return
        self.alive = False
        self._io_started = False
        self.crashes += 1
        for channel in list(self._client_channels):
            if not channel.closed:
                channel.close()
        self._client_channels.clear()
        self._waiters.clear()

    def restart(self) -> None:
        """Bring a crashed broker back up with a fresh I/O thread pool."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        if not self._io_started:
            self._io_started = True
            for i in range(self.config.io_threads):
                self.jvm.spawn_thread(
                    self._io_loop(), name=f"{self.name}.io{i}"
                )
