"""The partitioned-log broker.

The architectural contrast with :class:`repro.narada.Broker` is the whole
point of this subsystem:

* **no thread per connection** — every channel delivers into one shared
  request queue served by a fixed pool of I/O threads, so connection count
  costs heap (socket/session state) but not native thread stacks.  The
  Narada wall at ~3600 threads simply does not exist here; the analogous
  wall is heap-bound at ~20k connections;
* **no per-subscriber routing work** — a produce request appends a batch to
  one partition log (sequential write, byte-oriented cost) and a fetch
  ships a contiguous offset range.  Per-message broker CPU is amortised by
  batching on both sides;
* **pull, not push** — consumers long-poll: a fetch with no available data
  parks (without holding an I/O thread) until an append to that partition
  wakes it or ``fetch_max_wait`` expires.

Wire protocol (tuples over a transport channel):

==========================================================  ==============
``("produce", corr, topic, part, batch, acks)``             client → broker
``("produce", corr, topic, part, batch, acks,``
``  pid, seq_base)``                                        idempotent form
``("produce_ack", corr, base_offset)``                      broker → client
``("fetch", corr, topic, part, offset, max_n, max_wait)``   client → broker
``("fetch_resp", corr, records, next_offset, hwm)``         broker → client
``("join", group, member, topic)``                          client → coord
``("leave", group, member)``                                client → coord
``("commit", group, member, topic, {part: offset},``
``  generation)``                                           client → coord
``("assign", group, generation, parts, offsets)``           coord → client
==========================================================  ==============

``batch`` is ``[(key, value, nbytes), ...]``; fetch-response ``records``
is ``[(offset, value), ...]``.

Replication (``replication_factor > 1``) adds three frames:

==========================================================  ==============
``("rfetch", corr, topic, part, offset, max_n,``
``  max_wait, follower)``                                   follower → leader
``("rfetch_resp", corr, records4, leader_end, hwm,``
``  epoch, producer_snapshot)``                             leader → follower
``("produce_err", corr, reason)``                           broker → client
==========================================================  ==============

``records4`` is ``[(offset, key, value, nbytes), ...]`` — a replica fetch
ships full records so the follower's log is byte-identical.  A replica
fetch at offset ``N`` acknowledges everything below ``N``; the leader's
high watermark is the ``min`` over the ISR's acknowledged ends, consumers
only read below it, and ``acks=-1`` produce responses park until it passes
the batch.  ``produce_err`` reasons: ``not_leader`` (an election moved the
partition — reconnect via the deployment's leader map) and
``not_enough_replicas`` (ISR below ``min_insync_replicas``).

Every response is handed to a transient sender process instead of being
sent inline from the I/O thread (``_send_async``).  This mirrors Kafka's
network/request-handler thread split and matters under loss: with an
acked datagram transport, an inline response send head-of-line-blocks an
I/O thread for up to the full retransmission budget, and four blocked
threads are a collapsed broker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.plog.config import ACKS_ALL, PlogConfig
from repro.plog.idempotence import PartitionProducerState
from repro.plog.log import PartitionLog
from repro.plog.replication import PartitionState, ReplicaProgress
from repro.sim import Store
from repro.telemetry.context import current as _telemetry
from repro.transport.base import EOF, Channel, ChannelClosed, MessageLost

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.plog.group import GroupCoordinator
    from repro.sim.kernel import Simulator


@dataclass
class PlogBrokerStats:
    """Counters the experiments read off."""

    connections_accepted: int = 0
    connections_refused: int = 0
    produce_batches: int = 0
    records_appended: int = 0
    records_dropped: int = 0
    fetches: int = 0
    empty_fetches: int = 0
    records_fetched: int = 0
    long_polls_parked: int = 0
    #: Produce requests bounced with ``produce_err`` (not the leader, or
    #: ISR below ``min_insync_replicas``).
    produce_rejects: int = 0
    #: Replica-fetch requests served as leader.
    replica_fetches: int = 0
    #: Records appended via replica fetch (this broker as follower).
    records_replicated: int = 0
    isr_shrinks: int = 0
    isr_expands: int = 0
    #: Idempotent-producer retries recognised and absorbed (re-acked
    #: without a second append).
    duplicate_batches: int = 0
    duplicate_records: int = 0


@dataclass
class _FetchWaiter:
    """A parked long-poll fetch."""

    channel: Channel
    corr: int
    topic: str
    partition: int
    offset: int
    max_records: int
    active: bool = True
    #: Follower name when this is a parked replica fetch (woken by appends,
    #: not by high-watermark advances).
    replica: Optional[str] = None


class PlogBroker:
    """One broker instance owning a subset of a topic's partitions."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        config: Optional[PlogConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.config = config or PlogConfig()
        self.jvm = Jvm(
            sim,
            node,
            f"{name}.jvm",
            heap_bytes=self.config.heap_bytes,
            thread_stack_bytes=self.config.thread_stack_bytes,
            native_budget_bytes=self.config.native_budget_bytes,
        )
        self.stats = PlogBrokerStats()
        self.logs: dict[tuple[str, int], PartitionLog] = {}
        #: Replication state per hosted partition (leader or follower).
        self.states: dict[tuple[str, int], PartitionState] = {}
        #: Idempotent-producer dedup state per hosted partition.  Updated
        #: at append time on the leader, merged from replica-fetch
        #: snapshots on followers, and — like the logs — durable across
        #: ``crash()``/``restart()``.
        self.producer_states: dict[tuple[str, int], PartitionProducerState] = {}
        self._waiters: dict[tuple[str, int], list[_FetchWaiter]] = {}
        self._requests: Store = Store(sim)
        self._io_started = False
        self._isr_scan_started = False
        self.coordinator: Optional["GroupCoordinator"] = None
        #: Controller callback fired on every ISR change of a led partition
        #: (the stand-in for a metadata-store write).
        self.isr_listener: Optional[Any] = None
        self.alive = True
        self.open_connections = 0
        #: Open client channels, tracked so a crash can sever them.
        self._client_channels: list[Channel] = []
        self.crashes = 0
        self.restarts = 0
        self.crashed_at: Optional[float] = None

    # ------------------------------------------------------------ partitions
    def create_partition(
        self,
        topic: str,
        partition: int,
        replicas: Optional[tuple[str, ...]] = None,
        leader: Optional[str] = None,
    ) -> PartitionLog:
        key = (topic, partition)
        if key in self.logs:
            raise ValueError(f"partition {key} already exists on {self.name}")
        log = PartitionLog(
            segment_max_bytes=self.config.segment_max_bytes,
            retention_bytes=self.config.retention_bytes,
            record_overhead_bytes=self.config.per_record_overhead_bytes,
        )
        self.logs[key] = log
        replicas = replicas if replicas is not None else (self.name,)
        leader = leader if leader is not None else replicas[0]
        state = PartitionState(topic, partition, replicas, leader)
        if leader == self.name:
            # Kafka starts with the full replica set in sync (everything is
            # empty), so acks=all is meaningful from the first append.
            for follower in replicas:
                if follower != self.name:
                    state.progress[follower] = ReplicaProgress(in_isr=True)
        self.states[key] = state
        return log

    # --------------------------------------------------------------- serving
    def serve(self, transport: Any, port: int) -> None:
        """Accept client connections on ``transport``/``port``."""
        if not self._io_started:
            self._io_started = True
            for i in range(self.config.io_threads):
                self.jvm.spawn_thread(self._io_loop(), name=f"{self.name}.io{i}")
        if not self._isr_scan_started and any(
            state.replicated for state in self.states.values()
        ):
            self._isr_scan_started = True
            self.sim.process(self._isr_scan(), name=f"{self.name}.isr-scan")
        transport.listen(self.node, port, self._accept)

    def _accept(self, channel: Channel) -> None:
        """Transport acceptor; raising refuses the connection."""
        if not self.alive:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} is down")
        try:
            self.jvm.alloc(self.config.per_connection_heap, "connection state")
        except OutOfMemoryError as exc:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} out of memory: {exc}") from exc
        self.stats.connections_accepted += 1
        self.open_connections += 1
        self._client_channels.append(channel)
        channel.on_deliver = lambda d: self._requests.put_nowait((channel, d))
        self.node.execute_process(self.config.accept_cpu)

    def _io_loop(self) -> Generator[Any, Any, None]:
        """One worker of the shared I/O pool."""
        while self.alive:
            channel, delivery = yield self._requests.get()
            if delivery.payload is EOF:
                self.jvm.free(self.config.per_connection_heap)
                self.open_connections -= 1
                self._on_channel_closed(channel)
                continue
            yield from self.node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            yield from self._handle(channel, delivery.payload)

    def _on_channel_closed(self, channel: Channel) -> None:
        try:
            self._client_channels.remove(channel)
        except ValueError:
            pass  # already severed by a crash
        for waiters in self._waiters.values():
            for waiter in waiters:
                if waiter.channel is channel or waiter.channel is channel.peer:
                    waiter.active = False
        if self.coordinator is not None:
            self.coordinator.on_disconnect(channel)

    # -------------------------------------------------------------- protocol
    def _handle(self, channel: Channel, frame: tuple) -> Generator[Any, Any, None]:
        kind = frame[0]
        if kind == "produce":
            # Idempotent producers append (pid, base sequence) to the frame.
            if len(frame) == 6:
                _, corr, topic, partition, batch, acks = frame
                pid = seq_base = None
            else:
                _, corr, topic, partition, batch, acks, pid, seq_base = frame
            yield from self._on_produce(
                channel, corr, topic, partition, batch, acks, pid, seq_base
            )
        elif kind == "fetch":
            _, corr, topic, partition, offset, max_records, max_wait = frame
            yield from self._on_fetch(
                channel, corr, topic, partition, offset, max_records, max_wait
            )
        elif kind == "rfetch":
            _, corr, topic, partition, offset, max_records, max_wait, follower = frame
            yield from self._on_replica_fetch(
                channel, corr, topic, partition, offset, max_records, max_wait,
                follower,
            )
        elif kind in ("join", "leave", "commit"):
            if self.coordinator is None:
                raise ValueError(f"broker {self.name} is not the coordinator")
            yield from self.node.execute(self.config.group_request_cpu)
            self.coordinator.handle(channel, frame)
        else:
            raise ValueError(f"unknown frame kind {frame[0]!r}")

    # --------------------------------------------------------------- produce
    def _on_produce(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        batch: list,
        acks: int,
        pid: Optional[str] = None,
        seq_base: Optional[int] = None,
    ) -> Generator[Any, Any, None]:
        key = (topic, partition)
        log = self.logs[key]
        state = self.states.get(key)
        if state is not None and state.leader != self.name:
            # An election moved leadership: bounce the request so the
            # producer reconnects via the deployment's refreshed leader map.
            self.stats.produce_rejects += 1
            yield from self.node.execute(self.config.request_cpu)
            if acks:
                self._send_async(
                    channel, ("produce_err", corr, "not_leader"),
                    self.config.control_bytes,
                )
            return
        if (
            acks == ACKS_ALL
            and state is not None
            and state.replicated
            and state.isr_size < self.config.min_insync_replicas
        ):
            self.stats.produce_rejects += 1
            yield from self.node.execute(self.config.request_cpu)
            self._send_async(
                channel, ("produce_err", corr, "not_enough_replicas"),
                self.config.control_bytes,
            )
            return
        pstate: Optional[PartitionProducerState] = None
        if pid is not None and seq_base is not None:
            pstate = self.producer_states.setdefault(
                key, PartitionProducerState()
            )
            dup = pstate.duplicate(pid, seq_base, len(batch))
            if dup is not None:
                # A retry of a batch already in the log: absorb it and
                # re-acknowledge — the producer's retry loop cannot tell a
                # fresh ack from a replayed one, which is the point.
                self.stats.duplicate_batches += 1
                self.stats.duplicate_records += len(batch)
                yield from self.node.execute(self.config.request_cpu)
                tel = _telemetry()
                if tel is not None:
                    tel.metrics.counter(
                        "plog", self.name, "duplicate_batches"
                    ).inc()
                if not acks:
                    return
                required, dup_offset = dup
                if (
                    acks == ACKS_ALL
                    and state is not None
                    and state.replicated
                    and state.hwm < required
                ):
                    # The original append may still be awaiting replication:
                    # the re-ack parks on the same high-watermark condition,
                    # or an ack could claim durability the ISR doesn't have.
                    state.pending_acks.append((required, channel, corr, dup_offset))
                    return
                self._send_async(
                    channel, ("produce_ack", corr, dup_offset),
                    self.config.control_bytes,
                )
                return
        payload_bytes = sum(nbytes for _, _, nbytes in batch)
        stored_bytes = payload_bytes + self.config.per_record_overhead_bytes * len(batch)
        yield from self.node.execute(self.config.append_cpu(len(batch), payload_bytes))
        try:
            self.jvm.alloc(stored_bytes, "log append")
        except OutOfMemoryError:
            self.stats.records_dropped += len(batch)
            return
        result = log.append(batch)
        if result.evicted_bytes:
            self.jvm.free(result.evicted_bytes)
        if pstate is not None:
            pstate.record(pid, seq_base, len(batch), result.base_offset)
        self.stats.produce_batches += 1
        self.stats.records_appended += len(batch)
        tel = _telemetry()
        if tel is not None:
            for _, value, _ in batch:
                record = getattr(value, "_record", None)
                if record is not None:
                    tel.mark(record, "broker_in", self.sim.now, "plog", self.name)
        if state is not None and state.replicated:
            # New data for parked replica fetches (they wake on the end
            # offset, consumers only on the high watermark).
            self._wake_fetchers(topic, partition, replica=True)
        self._advance_hwm(key)
        if not acks:
            return
        required = result.base_offset + len(batch)
        if (
            acks == ACKS_ALL
            and state is not None
            and state.replicated
            and state.hwm < required
        ):
            # acks=all: the response parks until every in-sync replica has
            # the batch (the high watermark passes its last offset).
            state.pending_acks.append((required, channel, corr, result.base_offset))
            return
        self._send_async(
            channel, ("produce_ack", corr, result.base_offset),
            self.config.control_bytes,
        )

    # ----------------------------------------------------------------- fetch
    def _on_fetch(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        offset: int,
        max_records: int,
        max_wait: float,
    ) -> Generator[Any, Any, None]:
        key = (topic, partition)
        if self._readable_end(key) > offset or max_wait <= 0:
            yield from self._respond_fetch(
                channel, corr, topic, partition, offset, max_records
            )
            return
        # Long poll: park without holding an I/O thread.
        waiter = _FetchWaiter(channel, corr, topic, partition, offset, max_records)
        self._waiters.setdefault(key, []).append(waiter)
        self.stats.long_polls_parked += 1
        self._note_parked()
        self.sim.call_at(self.sim.now + max_wait, lambda: self._expire_waiter(waiter))

    def _note_parked(self) -> None:
        """Mirror parked-fetch pressure into telemetry (current + total)."""
        tel = _telemetry()
        if tel is None:
            return
        tel.metrics.gauge("plog", self.name, "long_polls_parked").set(
            sum(1 for ws in self._waiters.values() for w in ws if w.active)
        )

    def _readable_end(self, key: tuple[str, int]) -> int:
        """First offset consumers may *not* read: the high watermark on a
        replicated partition, the log end otherwise."""
        state = self.states.get(key)
        if state is None or not state.replicated:
            return self.logs[key].end_offset
        return min(state.hwm, self.logs[key].end_offset)

    def _wake_fetchers(
        self, topic: str, partition: int, replica: bool = False
    ) -> None:
        key = (topic, partition)
        waiters = self._waiters.get(key)
        if not waiters:
            return
        remaining: list[_FetchWaiter] = []
        for waiter in waiters:
            if not waiter.active:
                continue
            if (waiter.replica is not None) != replica:
                remaining.append(waiter)
                continue
            waiter.active = False
            self.sim.process(
                self._respond_waiter(waiter), name=f"{self.name}.fetch-wake"
            )
        if remaining:
            self._waiters[key] = remaining
        else:
            self._waiters.pop(key, None)
        self._note_parked()

    def _expire_waiter(self, waiter: _FetchWaiter) -> None:
        if not waiter.active:
            return
        waiter.active = False
        self.sim.process(
            self._respond_waiter(waiter), name=f"{self.name}.fetch-expire"
        )
        self._note_parked()

    def _respond_waiter(self, waiter: _FetchWaiter) -> Generator[Any, Any, None]:
        if waiter.replica is not None:
            yield from self._respond_replica_fetch(
                waiter.channel, waiter.corr,
                (waiter.topic, waiter.partition),
                waiter.offset, waiter.max_records,
            )
        else:
            yield from self._respond_fetch(
                waiter.channel, waiter.corr, waiter.topic, waiter.partition,
                waiter.offset, waiter.max_records,
            )

    def _respond_fetch(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        offset: int,
        max_records: int,
    ) -> Generator[Any, Any, None]:
        key = (topic, partition)
        log = self.logs[key]
        readable = self._readable_end(key)
        stored = [r for r in log.read(offset, max_records) if r.offset < readable]
        records = [(r.offset, r.value) for r in stored]
        nbytes = (
            sum(r.nbytes for r in stored)
            + self.config.frame_overhead_bytes
            + self.config.batch_overhead_bytes
        )
        next_offset = stored[-1].offset + 1 if stored else max(offset, log.start_offset)
        self.stats.fetches += 1
        if stored:
            self.stats.records_fetched += len(stored)
        else:
            self.stats.empty_fetches += 1
        yield from self.node.execute(
            self.config.fetch_cpu(len(stored), nbytes)
        )
        marks = [
            record
            for r in stored
            if (record := getattr(r.value, "_record", None)) is not None
        ]
        self._send_async(
            channel,
            ("fetch_resp", corr, records, next_offset, readable),
            nbytes,
            marks=marks,
        )

    # ----------------------------------------------------------- replication
    def _on_replica_fetch(
        self,
        channel: Channel,
        corr: int,
        topic: str,
        partition: int,
        offset: int,
        max_records: int,
        max_wait: float,
        follower: str,
    ) -> Generator[Any, Any, None]:
        key = (topic, partition)
        state = self.states.get(key)
        log = self.logs.get(key)
        if state is None or log is None or state.leader != self.name:
            # Not the leader (any more): stay silent — the follower's
            # response timeout makes it re-resolve leadership and reconnect.
            yield from self.node.execute(self.config.request_cpu)
            return
        self.stats.replica_fetches += 1
        self._record_follower_progress(state, log, follower, offset)
        if log.end_offset > offset or max_wait <= 0:
            yield from self._respond_replica_fetch(
                channel, corr, key, offset, max_records
            )
            return
        waiter = _FetchWaiter(
            channel, corr, topic, partition, offset, max_records,
            replica=follower,
        )
        self._waiters.setdefault(key, []).append(waiter)
        self.stats.long_polls_parked += 1
        self._note_parked()
        self.sim.call_at(self.sim.now + max_wait, lambda: self._expire_waiter(waiter))

    def _respond_replica_fetch(
        self,
        channel: Channel,
        corr: int,
        key: tuple[str, int],
        offset: int,
        max_records: int,
    ) -> Generator[Any, Any, None]:
        log = self.logs[key]
        state = self.states[key]
        stored = log.read(offset, max_records)
        records = [(r.offset, r.key, r.value, r.nbytes) for r in stored]
        nbytes = (
            sum(r.nbytes for r in stored)
            + self.config.frame_overhead_bytes
            + self.config.batch_overhead_bytes
        )
        yield from self.node.execute(self.config.fetch_cpu(len(stored), nbytes))
        # Piggyback the idempotence state so a promoted follower still
        # recognises producer retries (the follower merges entries only as
        # the described batches become locally replicated).
        pstate = self.producer_states.get(key)
        producer_snapshot = pstate.snapshot() if pstate is not None else None
        self._send_async(
            channel,
            (
                "rfetch_resp", corr, records, log.end_offset, state.hwm,
                state.epoch, producer_snapshot,
            ),
            nbytes,
        )

    def _record_follower_progress(
        self, state: PartitionState, log: PartitionLog, follower: str, offset: int
    ) -> None:
        """A replica fetch at ``offset`` proves the follower holds
        everything below ``offset`` (its log end at request time)."""
        prog = state.progress.get(follower)
        if prog is None:
            prog = state.progress[follower] = ReplicaProgress()
        # Replica fetches are single-in-flight per follower, so ``offset``
        # is the follower's true end — including after a truncation, which
        # is why this is an assignment and not a max().
        prog.next_offset = offset
        if offset >= log.end_offset:
            prog.caught_up_at = self.sim.now
            if not prog.in_isr:
                prog.in_isr = True
                self.stats.isr_expands += 1
                self._notify_isr(state)
        self._advance_hwm((state.topic, state.partition))

    def _advance_hwm(self, key: tuple[str, int]) -> None:
        state = self.states.get(key)
        log = self.logs[key]
        if state is None or not state.replicated:
            new = log.end_offset
        elif state.leader != self.name:
            return  # follower HWMs move via replica-fetch responses
        else:
            new = log.end_offset
            for prog in state.progress.values():
                if prog.in_isr and prog.next_offset < new:
                    new = prog.next_offset
        if state is not None and new > state.hwm:
            state.hwm = new
            self._wake_fetchers(key[0], key[1])
            if state.pending_acks:
                self._fire_pending_acks(state)

    def _fire_pending_acks(self, state: PartitionState) -> None:
        ready = [entry for entry in state.pending_acks if entry[0] <= state.hwm]
        if not ready:
            return
        state.pending_acks = [
            entry for entry in state.pending_acks if entry[0] > state.hwm
        ]
        for _required, channel, corr, base_offset in ready:
            self._send_async(
                channel, ("produce_ack", corr, base_offset),
                self.config.control_bytes,
            )

    def _isr_scan(self) -> Generator[Any, Any, None]:
        """Leader-side lag rule: a follower that has not been caught up to
        the log end for ``replica_lag_max`` leaves the ISR."""
        cfg = self.config
        while True:
            yield self.sim.timeout(cfg.isr_check_interval)
            if not self.alive or self.jvm.dead:
                continue
            for key, state in self.states.items():
                if state.leader != self.name or not state.replicated:
                    continue
                end = self.logs[key].end_offset
                changed = False
                for prog in state.progress.values():
                    if not prog.in_isr:
                        continue
                    if prog.next_offset >= end:
                        prog.caught_up_at = self.sim.now
                        continue
                    if self.sim.now - prog.caught_up_at > cfg.replica_lag_max:
                        prog.in_isr = False
                        self.stats.isr_shrinks += 1
                        changed = True
                if changed:
                    self._notify_isr(state)
                    self._advance_hwm(key)

    def drop_follower(self, topic: str, partition: int, follower: str) -> None:
        """Controller fast path: remove a crashed follower from the ISR
        immediately instead of waiting out the lag window."""
        state = self.states.get((topic, partition))
        if state is None or state.leader != self.name:
            return
        prog = state.progress.get(follower)
        if prog is None or not prog.in_isr:
            return
        prog.in_isr = False
        self.stats.isr_shrinks += 1
        self._notify_isr(state)
        self._advance_hwm((topic, partition))

    def become_leader(
        self, topic: str, partition: int, epoch: int, isr: frozenset
    ) -> None:
        """Controller promotion after winning an election.

        The carried-over ISR members' progress floors at our HWM — every
        ISR member is guaranteed to hold at least that much — and their
        true ends arrive with their first replica fetch, so the HWM never
        advances past data a surviving replica might not hold.
        """
        key = (topic, partition)
        state = self.states[key]
        state.leader = self.name
        state.epoch = epoch
        state.pending_acks.clear()
        state.progress = {}
        for name in isr:
            if name != self.name:
                state.progress[name] = ReplicaProgress(
                    next_offset=state.hwm,
                    caught_up_at=self.sim.now,
                    in_isr=True,
                )
        self._notify_isr(state)
        self._advance_hwm(key)

    def become_follower(
        self, topic: str, partition: int, leader: str, epoch: int
    ) -> None:
        state = self.states.get((topic, partition))
        if state is None:
            return
        state.leader = leader
        if epoch > state.epoch:
            state.epoch = epoch
        state.progress = {}
        state.pending_acks.clear()

    def wake_consumer_fetchers(self, topic: str, partition: int) -> None:
        """Follower-side hook: its HWM advanced, parked long-polls may now
        have readable data (read-from-follower is HWM-bounded too)."""
        self._wake_fetchers(topic, partition)

    def append_internal(self, topic: str, partition: int, entries: list) -> None:
        """Append control entries (e.g. ``__offsets`` commits) to a local
        partition through the replication bookkeeping, without the produce
        protocol.  CPU for the triggering request was already charged."""
        key = (topic, partition)
        log = self.logs.get(key)
        if log is None:
            return
        batch = [(None, entry, float(self.config.control_bytes)) for entry in entries]
        stored_bytes = sum(b[2] for b in batch) + (
            self.config.per_record_overhead_bytes * len(batch)
        )
        try:
            self.jvm.alloc(stored_bytes, "internal append")
        except OutOfMemoryError:
            self.stats.records_dropped += len(batch)
            return
        result = log.append(batch)
        if result.evicted_bytes:
            self.jvm.free(result.evicted_bytes)
        state = self.states.get(key)
        if state is not None and state.replicated:
            self._wake_fetchers(topic, partition, replica=True)
        self._advance_hwm(key)

    def _notify_isr(self, state: PartitionState) -> None:
        if self.isr_listener is not None:
            self.isr_listener(state.topic, state.partition, state.isr_names())
        tel = _telemetry()
        if tel is not None:
            tel.metrics.gauge("plog", "replication", "isr_size").set(state.isr_size)

    def _send_async(
        self,
        channel: Channel,
        frame: tuple,
        nbytes: float,
        marks: Optional[list] = None,
    ) -> None:
        """Hand a response to a transient sender process.

        The I/O thread moves on immediately; the sender pays the wire cost
        (and, on acked transports, the stop-and-wait retransmission stalls)
        off the request path — Kafka's network-thread/request-handler
        split.  Under a loss burst this is the difference between a broker
        that keeps serving and four I/O threads wedged in retransmits.
        """
        def _send() -> Generator[Any, Any, None]:
            try:
                yield from channel.send(frame, nbytes)
            except (MessageLost, ChannelClosed):
                return
            if marks:
                tel = _telemetry()
                if tel is not None:
                    for record in marks:
                        tel.mark(record, "broker_out", self.sim.now, "plog", self.name)

        self.sim.process(_send(), name=f"{self.name}.respond")

    # ----------------------------------------------------------------- admin
    def partition_count(self) -> int:
        return len(self.logs)

    def shutdown(self) -> None:
        self.alive = False

    def crash(self) -> None:
        """Kill the broker process: refuse new connections, sever open ones.

        Closing each channel queues an EOF through the normal request path,
        so per-connection heap is freed (by the dying I/O threads, or by
        the restarted pool draining stale EOFs) exactly as on a clean
        disconnect.  Partition logs survive — the commit log is durable
        storage, so a restarted broker resumes serving existing offsets.
        """
        if not self.alive:
            return
        self.alive = False
        self._io_started = False
        self.crashes += 1
        self.crashed_at = self.sim.now
        for channel in list(self._client_channels):
            if not channel.closed:
                channel.close()
        self._client_channels.clear()
        self._waiters.clear()
        self._note_parked()
        for state in self.states.values():
            # Parked acks=all responses die with their channels; producers
            # that retry re-send the batch to the new leader.
            state.pending_acks.clear()

    def restart(self) -> None:
        """Bring a crashed broker back up with a fresh I/O thread pool."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        if not self._io_started:
            self._io_started = True
            for i in range(self.config.io_threads):
                self.jvm.spawn_thread(
                    self._io_loop(), name=f"{self.name}.io{i}"
                )
