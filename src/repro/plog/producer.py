"""The publishing client: per-partition batching, linger, acks.

A producer keys every record (the grid generator's id), hashes the key to
a partition, and appends the record to that partition's *batch*.  A batch
is flushed when it reaches ``batch_max_records``/``batch_max_bytes`` or
``linger`` seconds after its first record — so at the grid workload's one
message per 1.5 s per generator, a dedicated producer degenerates to
batches of one after a 50 ms linger, while shared producers (many
generators per process) amortise the request cost exactly the way the
paper's "quantity of messages is the dominant overhead" observation
predicts.

With ``acks=1`` the producer stamps a record's ``t_after_send`` when the
broker's append acknowledgement arrives — the plog analogue of Narada's
publish round-trip (PRT).  With ``acks=0`` the stamp lands as soon as the
bytes are in the socket buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.plog.config import PlogConfig
from repro.plog.partitioner import partition_for
from repro.transport.base import Channel, ChannelClosed, MessageLost, EOF

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.plog.deployment import PlogDeployment
    from repro.sim.kernel import Simulator


@dataclass
class _PendingRecord:
    key: Any
    value: Any
    nbytes: float
    #: Optional :class:`repro.core.records.MessageRecord` to stamp.
    record: Any = None


@dataclass
class _Batch:
    records: list[_PendingRecord] = field(default_factory=list)
    nbytes: float = 0.0
    #: Epoch at the time of the first append; the linger timer only fires
    #: for the epoch it was armed with (a size-triggered flush bumps it).
    epoch: int = 0


class PlogProducer:
    """One publishing client bound to a deployment."""

    def __init__(
        self,
        sim: "Simulator",
        deployment: "PlogDeployment",
        node: "Node",
        name: str,
        config: Optional[PlogConfig] = None,
    ):
        self.sim = sim
        self.deployment = deployment
        self.node = node
        self.name = name
        self.config = config or deployment.config
        #: partition -> open channel to the owning broker.
        self._channels: dict[int, Channel] = {}
        self._batches: dict[tuple[str, int], _Batch] = {}
        self._epochs: dict[tuple[str, int], int] = {}
        self._corr = 0
        #: corr id -> records awaiting a produce_ack.
        self._pending_acks: dict[int, list[_PendingRecord]] = {}
        self.records_sent = 0
        self.batches_sent = 0
        self.acks_received = 0
        self.send_failures = 0
        self.closed = False

    # ------------------------------------------------------------ connecting
    def connect_for(self, topic: str, key: Any) -> Generator[Any, Any, int]:
        """Ensure a channel to the broker owning ``key``'s partition.

        Returns the partition.  Raises
        :class:`~repro.transport.base.TransportError` /
        :class:`~repro.transport.base.ChannelClosed` when the broker
        refuses the connection (e.g. out of memory) — callers count that
        as a refused client, exactly like the Narada fleet.
        """
        partition = partition_for(key, self.deployment.n_partitions)
        if partition not in self._channels:
            channel = yield from self.deployment.connect(self.node, partition)
            self._channels[partition] = channel
            if self.config.acks:
                self.sim.process(
                    self._ack_reader(channel), name=f"{self.name}.acks"
                )
        return partition

    # --------------------------------------------------------------- sending
    def send(
        self,
        topic: str,
        key: Any,
        value: Any,
        nbytes: float,
        record: Any = None,
    ) -> None:
        """Append one record to its partition batch (non-blocking).

        ``connect_for`` must have been called for ``key`` first.
        """
        if self.closed:
            raise ChannelClosed(f"producer {self.name} is closed")
        partition = partition_for(key, self.deployment.n_partitions)
        if partition not in self._channels:
            raise ChannelClosed(
                f"producer {self.name} has no channel for partition {partition}"
            )
        bkey = (topic, partition)
        batch = self._batches.get(bkey)
        if batch is None:
            batch = _Batch(epoch=self._epochs.get(bkey, 0))
            self._batches[bkey] = batch
            self.sim.call_at(
                self.sim.now + self.config.linger,
                lambda: self._linger_fired(bkey, batch.epoch),
            )
        batch.records.append(_PendingRecord(key, value, nbytes, record))
        batch.nbytes += nbytes
        if (
            len(batch.records) >= self.config.batch_max_records
            or batch.nbytes >= self.config.batch_max_bytes
        ):
            self._start_flush(bkey)

    def _linger_fired(self, bkey: tuple[str, int], epoch: int) -> None:
        if self._epochs.get(bkey, 0) != epoch:
            return  # that batch already flushed on size
        self._start_flush(bkey)

    def _start_flush(self, bkey: tuple[str, int]) -> None:
        batch = self._batches.pop(bkey, None)
        if batch is None or not batch.records:
            return
        self._epochs[bkey] = self._epochs.get(bkey, 0) + 1
        self.sim.process(self._flush(bkey, batch), name=f"{self.name}.flush")

    def _flush(
        self, bkey: tuple[str, int], batch: _Batch
    ) -> Generator[Any, Any, None]:
        topic, partition = bkey
        channel = self._channels[partition]
        self._corr += 1
        corr = self._corr
        wire_batch = [(r.key, r.value, r.nbytes) for r in batch.records]
        nbytes = (
            batch.nbytes
            + self.config.frame_overhead_bytes
            + self.config.batch_overhead_bytes
        )
        acks = self.config.acks
        if acks:
            self._pending_acks[corr] = batch.records
        try:
            yield from channel.send(
                ("produce", corr, topic, partition, wire_batch, acks), nbytes
            )
        except (MessageLost, ChannelClosed):
            self._pending_acks.pop(corr, None)
            self.send_failures += len(batch.records)
            return
        self.batches_sent += 1
        self.records_sent += len(batch.records)
        if not acks:
            # Fire-and-forget: the publish "round trip" ends at the socket.
            for pending in batch.records:
                if pending.record is not None:
                    pending.record.t_after_send = self.sim.now

    def _ack_reader(self, channel: Channel) -> Generator[Any, Any, None]:
        while not self.closed:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                return
            frame = delivery.payload
            if frame[0] != "produce_ack":  # pragma: no cover - protocol guard
                continue
            self.acks_received += 1
            records = self._pending_acks.pop(frame[1], None)
            if not records:
                continue
            for pending in records:
                if pending.record is not None:
                    pending.record.t_after_send = self.sim.now

    # ----------------------------------------------------------------- admin
    def close(self) -> None:
        self.closed = True
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()
