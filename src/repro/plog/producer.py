"""The publishing client: per-partition batching, linger, acks.

A producer keys every record (the grid generator's id), hashes the key to
a partition, and appends the record to that partition's *batch*.  A batch
is flushed when it reaches ``batch_max_records``/``batch_max_bytes`` or
``linger`` seconds after its first record — so at the grid workload's one
message per 1.5 s per generator, a dedicated producer degenerates to
batches of one after a 50 ms linger, while shared producers (many
generators per process) amortise the request cost exactly the way the
paper's "quantity of messages is the dominant overhead" observation
predicts.

With ``acks=1`` the producer stamps a record's ``t_after_send`` when the
broker's append acknowledgement arrives — the plog analogue of Narada's
publish round-trip (PRT).  With ``acks=0`` the stamp lands as soon as the
bytes are in the socket buffer.

Recovery (``config.producer_retry.enabled``): a batch whose send fails, or
whose acknowledgement does not arrive within ``produce_ack_timeout``, is
retried with exponential backoff; a dead channel is reconnected first, and
with ``config.failover`` the reconnect reroutes the batch to a partition on
a surviving broker.  Retries give at-least-once semantics — an ack lost
after a successful append yields a duplicate append, which the recording
receiver deduplicates — so loss under a fault window converges to zero
instead of accumulating in ``send_failures``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.faults.recovery import RttEstimator
from repro.plog.config import PlogConfig
from repro.plog.partitioner import partition_for
from repro.telemetry.context import current as _telemetry
from repro.transport.base import (
    Channel,
    ChannelClosed,
    MessageLost,
    TransportError,
    EOF,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.plog.deployment import PlogDeployment
    from repro.sim.kernel import Simulator


@dataclass
class _PendingRecord:
    key: Any
    value: Any
    nbytes: float
    #: Optional :class:`repro.core.records.MessageRecord` to stamp.
    record: Any = None


@dataclass
class _PendingAck:
    """Records awaiting a produce_ack, plus (retry mode only) the event the
    flusher parks on.  ``event`` stays ``None`` in legacy one-shot mode so
    the no-fault schedule is untouched."""

    records: list[_PendingRecord]
    event: Any = None
    channel: Optional[Channel] = None


@dataclass
class _Batch:
    records: list[_PendingRecord] = field(default_factory=list)
    nbytes: float = 0.0
    #: Epoch at the time of the first append; the linger timer only fires
    #: for the epoch it was armed with (a size-triggered flush bumps it).
    epoch: int = 0


class PlogProducer:
    """One publishing client bound to a deployment."""

    def __init__(
        self,
        sim: "Simulator",
        deployment: "PlogDeployment",
        node: "Node",
        name: str,
        config: Optional[PlogConfig] = None,
    ):
        self.sim = sim
        self.deployment = deployment
        self.node = node
        self.name = name
        self.config = config or deployment.config
        #: partition -> open channel to the owning broker.
        self._channels: dict[int, Channel] = {}
        self._batches: dict[tuple[str, int], _Batch] = {}
        self._epochs: dict[tuple[str, int], int] = {}
        self._corr = 0
        #: corr id -> records awaiting a produce_ack.
        self._pending_acks: dict[int, _PendingAck] = {}
        #: logical partition -> partition actually routed to (failover).
        self._routes: dict[int, int] = {}
        #: Per-partition count of in-flight (spawned, unfinished) flushes,
        #: bounded by ``config.max_in_flight``.
        self._inflight: dict[tuple[str, int], int] = {}
        #: Batches waiting for a window slot, FIFO per partition.
        self._flush_queue: dict[tuple[str, int], deque] = {}
        #: Idempotence: next base sequence per (topic, partition).  The
        #: producer id is the producer's name; together with these the
        #: broker recognises a retried batch and re-acks instead of
        #: re-appending.
        self._seqs: dict[tuple[str, int], int] = {}
        #: Ack-RTT estimator driving adaptive retry timing (Karn-sampled:
        #: only first-attempt round trips are observed).
        self._rtt: Optional[RttEstimator] = (
            RttEstimator(initial_rto=self.config.produce_ack_timeout)
            if self.config.producer_retry.adaptive
            else None
        )
        self.records_sent = 0
        self.batches_sent = 0
        self.acks_received = 0
        self.send_failures = 0
        self.retries = 0
        self.reconnects = 0
        #: Batches that waited client-side for an in-flight window slot.
        self.batches_windowed = 0
        #: ``produce_err`` responses (leadership moved / ISR too small).
        self.produce_errors = 0
        self.closed = False

    # ------------------------------------------------------------ connecting
    def connect_for(self, topic: str, key: Any) -> Generator[Any, Any, int]:
        """Ensure a channel to the broker owning ``key``'s partition.

        Returns the partition.  Raises
        :class:`~repro.transport.base.TransportError` /
        :class:`~repro.transport.base.ChannelClosed` when the broker
        refuses the connection (e.g. out of memory) — callers count that
        as a refused client, exactly like the Narada fleet.
        """
        partition = partition_for(key, self.deployment.n_partitions)
        if partition not in self._channels:
            yield from self._open_channel(partition)
        return partition

    def _open_channel(
        self, partition: int
    ) -> Generator[Any, Any, Channel]:
        """(Re)connect ``partition``'s channel; with failover, reroute to a
        partition owned by a surviving broker first."""
        actual = partition
        if self.config.failover:
            actual = self.deployment.live_partition(partition)
        self._routes[partition] = actual
        channel = yield from self.deployment.connect(self.node, actual)
        self._channels[partition] = channel
        if self.config.acks:
            self.sim.process(
                self._ack_reader(channel), name=f"{self.name}.acks"
            )
        return channel

    # --------------------------------------------------------------- sending
    def send(
        self,
        topic: str,
        key: Any,
        value: Any,
        nbytes: float,
        record: Any = None,
    ) -> None:
        """Append one record to its partition batch (non-blocking).

        ``connect_for`` must have been called for ``key`` first.
        """
        if self.closed:
            raise ChannelClosed(f"producer {self.name} is closed")
        partition = partition_for(key, self.deployment.n_partitions)
        if partition not in self._channels:
            raise ChannelClosed(
                f"producer {self.name} has no channel for partition {partition}"
            )
        bkey = (topic, partition)
        batch = self._batches.get(bkey)
        if batch is None:
            batch = _Batch(epoch=self._epochs.get(bkey, 0))
            self._batches[bkey] = batch
            self.sim.call_at(
                self.sim.now + self.config.linger,
                lambda: self._linger_fired(bkey, batch.epoch),
            )
        batch.records.append(_PendingRecord(key, value, nbytes, record))
        batch.nbytes += nbytes
        if (
            len(batch.records) >= self.config.batch_max_records
            or batch.nbytes >= self.config.batch_max_bytes
        ):
            self._start_flush(bkey)

    def _linger_fired(self, bkey: tuple[str, int], epoch: int) -> None:
        if self._epochs.get(bkey, 0) != epoch:
            return  # that batch already flushed on size
        self._start_flush(bkey)

    def _start_flush(self, bkey: tuple[str, int]) -> None:
        batch = self._batches.pop(bkey, None)
        if batch is None or not batch.records:
            return
        self._epochs[bkey] = self._epochs.get(bkey, 0) + 1
        # Idempotence requires strict per-partition send order (the broker
        # tracks contiguous sequence runs), so the window clamps to one.
        window = 1 if self.config.idempotent else self.config.max_in_flight
        if window and self._inflight.get(bkey, 0) >= window:
            # Window full (some in-flight batch is slow or retrying): queue
            # client-side.  The batch keeps its slot in FIFO order, so a
            # single stuck batch head-of-line-blocks at most this
            # partition's window — not the producer's whole send path.
            self._flush_queue.setdefault(bkey, deque()).append(batch)
            self.batches_windowed += 1
            return
        self._launch_flush(bkey, batch)

    def _launch_flush(self, bkey: tuple[str, int], batch: "_Batch") -> None:
        self._inflight[bkey] = self._inflight.get(bkey, 0) + 1
        self.sim.process(
            self._flush_slot(bkey, batch), name=f"{self.name}.flush"
        )

    def _flush_slot(
        self, bkey: tuple[str, int], batch: "_Batch"
    ) -> Generator[Any, Any, None]:
        try:
            yield from self._flush(bkey, batch)
        finally:
            self._inflight[bkey] -= 1
            queue = self._flush_queue.get(bkey)
            if queue:
                self._launch_flush(bkey, queue.popleft())

    def _flush(
        self, bkey: tuple[str, int], batch: _Batch
    ) -> Generator[Any, Any, None]:
        topic, partition = bkey
        policy = self.config.producer_retry
        acks = self.config.acks
        wire_batch = [(r.key, r.value, r.nbytes) for r in batch.records]
        nbytes = (
            batch.nbytes
            + self.config.frame_overhead_bytes
            + self.config.batch_overhead_bytes
        )
        seq_base: Optional[int] = None
        if self.config.idempotent:
            # The base sequence is claimed once per batch and pinned across
            # retries — that is the whole point: the broker recognises the
            # retry as the same batch.
            seq_base = self._seqs.get(bkey, 0)
            self._seqs[bkey] = seq_base + len(batch.records)
        attempt = 0
        while True:
            attempt += 1
            channel = self._channels.get(partition)
            if policy.enabled and (channel is None or channel.closed):
                try:
                    channel = yield from self._open_channel(partition)
                    self.reconnects += 1
                except (TransportError, ChannelClosed):
                    channel = None
            corr = 0
            ack_event = None
            sent = False
            if channel is not None:
                self._corr += 1
                corr = self._corr
                if acks:
                    if policy.enabled:
                        ack_event = self.sim.event()
                    self._pending_acks[corr] = _PendingAck(
                        batch.records, ack_event, channel
                    )
                target = self._routes.get(partition, partition)
                attempt_started = self.sim.now
                if seq_base is None:
                    frame = ("produce", corr, topic, target, wire_batch, acks)
                else:
                    frame = (
                        "produce", corr, topic, target, wire_batch, acks,
                        self.name, seq_base,
                    )
                try:
                    yield from channel.send(frame, nbytes)
                    sent = True
                except (MessageLost, ChannelClosed):
                    self._pending_acks.pop(corr, None)
            if sent:
                if not acks:
                    # Fire-and-forget: the round trip ends at the socket.
                    self.batches_sent += 1
                    self.records_sent += len(batch.records)
                    tel = _telemetry()
                    for pending in batch.records:
                        if pending.record is not None:
                            pending.record.t_after_send = self.sim.now
                            if tel is not None:
                                tel.mark(
                                    pending.record, "published", self.sim.now,
                                    "plog", self.name,
                                )
                    return
                if not policy.enabled:
                    # Legacy one-shot: the ack reader stamps records later.
                    self.batches_sent += 1
                    self.records_sent += len(batch.records)
                    return
                ack_timeout = self.config.produce_ack_timeout
                if self._rtt is not None:
                    ack_timeout = self._rtt.rto
                # The timeout clock starts when the request is handed to
                # the transport: ``channel.send`` blocks for the one-way
                # transit, so the deadline covers what is *left* of the
                # round-trip budget, not a fresh window after delivery.
                elapsed = self.sim.now - attempt_started
                deadline = self.sim.timeout(max(ack_timeout - elapsed, 1e-3))
                yield self.sim.any_of([ack_event, deadline])
                if ack_event.triggered and ack_event.value:
                    if self._rtt is not None and attempt == 1:
                        # Karn's rule: only unambiguous (first-attempt)
                        # round trips feed the estimator.
                        self._rtt.observe(self.sim.now - attempt_started)
                    self.batches_sent += 1
                    self.records_sent += len(batch.records)
                    return
                # Timed out or the channel died: retry the whole batch.
                # If the append actually landed and only the ack was lost,
                # the retry makes a duplicate — at-least-once by design,
                # unless ``config.idempotent`` pinned a sequence on the
                # batch, in which case the broker absorbs the retry and
                # re-acks (exactly-once appends).
                if self._rtt is not None and not ack_event.triggered:
                    # Genuine timeout (not a channel death): back the RTO
                    # off — Karn's rule gives the estimator no sample while
                    # first attempts keep timing out, so this is the only
                    # way it climbs out of a latency step.
                    self._rtt.backoff()
                self._pending_acks.pop(corr, None)
            if not policy.enabled or attempt > policy.retries:
                self.send_failures += len(batch.records)
                return
            self.retries += 1
            yield self.sim.timeout(
                policy.delay(
                    attempt, self.sim, f"plog.retry.{self.name}",
                    rto=self._rtt.rto if self._rtt is not None else None,
                )
            )

    def _ack_reader(self, channel: Channel) -> Generator[Any, Any, None]:
        while not self.closed:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                # Channel died: fail this channel's in-flight batches so
                # their flushers stop waiting and retry over a new channel.
                for corr in [
                    c
                    for c, p in self._pending_acks.items()
                    if p.channel is channel
                ]:
                    pending = self._pending_acks.pop(corr)
                    if pending.event is not None and not pending.event.triggered:
                        pending.event.succeed(False)
                return
            frame = delivery.payload
            if frame[0] == "produce_err":
                self.produce_errors += 1
                pending = self._pending_acks.pop(frame[1], None)
                if pending is not None and pending.event is not None:
                    if not pending.event.triggered:
                        pending.event.succeed(False)
                if frame[2] == "not_leader" and not channel.closed:
                    # Leadership moved: drop the channel so retries
                    # reconnect via the deployment's refreshed leader map
                    # (the EOF also fails this channel's other in-flight
                    # batches, sending them down the same path).
                    channel.close()
                continue
            if frame[0] != "produce_ack":  # pragma: no cover - protocol guard
                continue
            self.acks_received += 1
            pending = self._pending_acks.pop(frame[1], None)
            if pending is None:
                continue
            tel = _telemetry()
            for record in pending.records:
                if record.record is not None:
                    record.record.t_after_send = self.sim.now
                    if tel is not None:
                        tel.mark(
                            record.record, "published", self.sim.now,
                            "plog", self.name,
                        )
            if pending.event is not None and not pending.event.triggered:
                pending.event.succeed(True)

    # ----------------------------------------------------------------- admin
    def flush(self) -> Generator[Any, Any, None]:
        """Drain lingering batches and in-flight requests (close barrier).

        Kafka's ``close()`` flushes before tearing channels down; without
        this a record sent within ``linger`` of the producer's shutdown is
        silently dropped.  Bounded by the retry policy: exhausted flushes
        count as ``send_failures`` and release their window slot.
        """
        for bkey in list(self._batches):
            self._start_flush(bkey)
        poll = max(self.config.linger, 0.001)
        while any(self._inflight.values()) or any(self._flush_queue.values()):
            yield self.sim.timeout(poll)

    def close(self) -> None:
        self.closed = True
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()
