"""The three GMA data-transfer modes.

"GMA proposes three data transfer modes between producer and consumer:
publish/subscribe, query/response, and notification.  In the
publish/subscribe mode, either a producer or consumer can initiate data
transfer.  The producer sends data continuously and either side can
terminate.  In the query/response mode, a consumer initiates communication
and the producer sends all the data to the consumer in one response.  In the
notification mode, the producer must be the initiator.  The producer sends
all the data to the consumer in one notification" (paper §II.A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.gma.interfaces import ConsumerInterface, ProducerInterface

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Lan
    from repro.sim.kernel import Simulator


class TransferMode:
    """Base: a producer-consumer transfer over the LAN."""

    def __init__(
        self,
        sim: "Simulator",
        lan: "Lan",
        producer: ProducerInterface,
        consumer: ConsumerInterface,
        event_bytes: int = 256,
    ):
        self.sim = sim
        self.lan = lan
        self.producer = producer
        self.consumer = consumer
        self.event_bytes = event_bytes
        self.events_transferred = 0

    def _transfer(self, events: list[Any]) -> Generator[Any, Any, None]:
        """Ship a batch over the wire and deliver it."""
        if not events:
            return
        ev = self.lan.transmit(
            self.producer.record.address,
            self.consumer.record.address,
            len(events) * self.event_bytes + 64,
        )
        assert ev is not None
        yield ev
        self.consumer.deliver(events)
        self.events_transferred += len(events)


class PublishSubscribeTransfer(TransferMode):
    """Continuous streaming; either side can terminate."""

    def __init__(self, *args: Any, period: float = 1.0, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.period = period
        self._running = False
        self._cursor = 0

    def start(self) -> None:
        """Either party calls start (per GMA, either side may initiate)."""
        if not self._running:
            self._running = True
            self.sim.process(self._stream(), name="gma.pubsub")

    def terminate(self) -> None:
        """Either side may terminate the stream."""
        self._running = False

    def _stream(self) -> Generator[Any, Any, None]:
        while self._running:
            yield self.sim.timeout(self.period)
            events = self.producer.events_since(self._cursor)
            if events:
                self._cursor += len(events)
                yield from self._transfer(events)


class QueryResponseTransfer(TransferMode):
    """Consumer-initiated: all data in one response."""

    def query(self) -> Generator[Any, Any, list[Any]]:
        # Consumer -> producer request.
        req = self.lan.transmit(
            self.consumer.record.address, self.producer.record.address, 128
        )
        assert req is not None
        yield req
        events = self.producer.all_events()
        yield from self._transfer(events)
        return events


class NotificationTransfer(TransferMode):
    """Producer-initiated: all data in one notification."""

    def notify(self) -> Generator[Any, Any, int]:
        events = self.producer.all_events()
        yield from self._transfer(events)
        return len(events)
