"""The Grid Monitoring Architecture (GMA, GGF GFD.7).

"GMA divides a pub/sub middleware into three basic components: producer,
consumer and directory service. ... By separating data discovery from data
transfer, GMA ensures scalability and performance" (paper §II.A).  This
package implements the architecture in the abstract: the component
interfaces, a directory service, and the three data transfer modes
(publish/subscribe, query/response, notification).  R-GMA is one concrete
realisation (:mod:`repro.rgma`); the GMA layer is also usable directly, as
the examples show.
"""

from repro.gma.interfaces import (
    ConsumerInterface,
    DirectoryServiceInterface,
    ProducerInterface,
    ProducerRecord,
)
from repro.gma.directory import DirectoryService
from repro.gma.modes import (
    NotificationTransfer,
    PublishSubscribeTransfer,
    QueryResponseTransfer,
    TransferMode,
)

__all__ = [
    "ConsumerInterface",
    "DirectoryService",
    "DirectoryServiceInterface",
    "NotificationTransfer",
    "ProducerInterface",
    "ProducerRecord",
    "PublishSubscribeTransfer",
    "QueryResponseTransfer",
    "TransferMode",
]
