"""GMA component interfaces (GGF Grid Monitoring Architecture, GFD.7).

A *producer* makes monitoring events available; a *consumer* receives them;
a *directory service* stores metadata so consumers can locate producers (and
vice versa) without coupling discovery to data transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Protocol, runtime_checkable


@dataclass(frozen=True)
class ProducerRecord:
    """Directory entry describing a producer (or consumer) endpoint."""

    name: str
    kind: str  # "producer" | "consumer"
    event_type: str  # what data it serves, e.g. a table or topic name
    address: str  # host the endpoint lives on
    metadata: tuple[tuple[str, Any], ...] = ()

    def metadata_dict(self) -> dict[str, Any]:
        return dict(self.metadata)


@runtime_checkable
class ProducerInterface(Protocol):
    """Serves events of one type; supports the three GMA transfer modes."""

    record: ProducerRecord

    def events_since(self, cursor: int) -> list[Any]:
        """Events newer than ``cursor`` (for streaming transfers)."""
        ...  # pragma: no cover

    def all_events(self) -> list[Any]:
        """Everything currently held (for query/response)."""
        ...  # pragma: no cover


@runtime_checkable
class ConsumerInterface(Protocol):
    """Receives events pushed by a transfer mode."""

    record: ProducerRecord

    def deliver(self, events: list[Any]) -> None:
        ...  # pragma: no cover


class DirectoryServiceInterface(Protocol):
    """Publish/search of component existence and metadata."""

    def publish(self, record: ProducerRecord) -> None:
        ...  # pragma: no cover

    def unpublish(self, name: str) -> None:
        ...  # pragma: no cover

    def search(
        self, kind: Optional[str] = None, event_type: Optional[str] = None
    ) -> list[ProducerRecord]:
        ...  # pragma: no cover
