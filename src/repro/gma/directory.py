"""The GMA directory service.

"The directory service is an information service where a producer or
consumer publishes its existence and relevant metadata to.  Consumer may
search directory for the producer that it is interested in.  Then they can
establish a connection and transfer data directly" (paper §II.A).

Lookups charge CPU on the hosting node — the paper's closing observation is
that "an important consideration is the efficiency of the middleware to
locate resources within a predefined time limit", so discovery latency is a
first-class modelled quantity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.gma.interfaces import ProducerRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator


class DirectoryService:
    """In-memory directory hosted on a node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        publish_cpu: float = 0.002,
        search_cpu_base: float = 0.001,
        search_cpu_per_record: float = 20e-6,
    ):
        self.sim = sim
        self.node = node
        self.publish_cpu = publish_cpu
        self.search_cpu_base = search_cpu_base
        self.search_cpu_per_record = search_cpu_per_record
        self._records: dict[str, ProducerRecord] = {}
        self.searches = 0

    def publish(self, record: ProducerRecord) -> Generator[Any, Any, None]:
        """Register (or refresh) a component's record."""
        yield from self.node.execute(self.publish_cpu)
        self._records[record.name] = record

    def unpublish(self, name: str) -> None:
        self._records.pop(name, None)

    def search(
        self,
        kind: Optional[str] = None,
        event_type: Optional[str] = None,
    ) -> Generator[Any, Any, list[ProducerRecord]]:
        """Find records matching the filters (linear scan, CPU-charged)."""
        self.searches += 1
        yield from self.node.execute(
            self.search_cpu_base + self.search_cpu_per_record * len(self._records)
        )
        out = []
        for record in self._records.values():
            if kind is not None and record.kind != kind:
                continue
            if event_type is not None and record.event_type != event_type:
                continue
            out.append(record)
        return sorted(out, key=lambda r: r.name)

    def __len__(self) -> int:
        return len(self._records)
