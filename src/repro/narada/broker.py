"""A single Narada broker.

The broker runs inside a modelled JVM on one cluster node.  Each client
connection is served by a dedicated JVM thread (blocking TCP / UDP) or by a
shared selector thread (NIO).  Per-message work — protocol decode, topic
lookup, selector evaluation, per-subscriber delivery, ack processing — is
charged to the node's CPU, so queueing at a loaded broker produces the
paper's RTT-vs-connections curve mechanistically, and per-connection heap +
thread stacks produce its out-of-memory wall.

Wire protocol (tuples over a transport channel):

====================  =====================================================
``("publish", msg)``                client → broker: publish a message
``("subscribe", id, dest, sel)``    client → broker: add subscription
``("subscribed", id)``              broker → client: subscription confirmed
``("unsubscribe", id)``             client → broker: remove subscription
``("ack", n, {id: k})``             client → broker: JMS ack for n messages
                                    (per-subscription counts settle durable
                                    retention)
``("deliver", id, msg)``            broker → client: push to subscription
``("forward", msg, targets, hop)``  broker → broker: routed/flooded event
``("interest", dest, broker, on)``  broker → broker: interest advertisement
====================  =====================================================
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.jms.destination import Destination, Queue, Topic
from repro.jms.selector import Selector, parse_selector
from repro.narada.config import NaradaConfig
from repro.narada.durable import DurableStore
from repro.sim import Store
from repro.telemetry.context import current as _telemetry
from repro.transport.base import EOF, Channel, ChannelClosed, MessageLost
from repro.transport.tcp import TcpTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.narada.broker_network import BrokerNetwork
    from repro.sim.kernel import Simulator


@dataclass
class BrokerStats:
    """Counters the experiments read off."""

    connections_accepted: int = 0
    connections_refused: int = 0
    messages_published: int = 0
    messages_delivered: int = 0
    messages_forwarded: int = 0
    forwards_received: int = 0
    deliveries_dropped: int = 0
    acks_processed: int = 0
    selector_evaluations: int = 0
    #: Retained copies replayed to a re-subscribing durable consumer.
    messages_replayed: int = 0
    #: Retained copies evicted (buffer bound or heap pressure).
    retention_evicted: int = 0


@dataclass
class _Subscription:
    sub_id: str
    destination_name: str
    is_queue: bool
    selector: Optional[Selector]
    channel: Optional[Channel]
    durable: bool = False
    #: Messages retained while a durable subscriber is disconnected.
    offline_buffer: list = field(default_factory=list)
    #: Delivered-but-unacknowledged copies (durable only).  A push the
    #: broker counted as delivered can still die on the wire when the
    #: connection is severed; only the JMS ack retires the copy.
    unacked: list = field(default_factory=list)


class Broker:
    """One broker instance on one node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        config: Optional[NaradaConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.config = config or NaradaConfig()
        self.jvm = Jvm(
            sim,
            node,
            f"{name}.jvm",
            heap_bytes=self.config.heap_bytes,
            thread_stack_bytes=self.config.thread_stack_bytes,
            native_budget_bytes=self.config.native_budget_bytes,
        )
        self.stats = BrokerStats()
        #: destination name -> ordered subscriptions.
        self._subs: dict[str, list[_Subscription]] = {}
        self._subs_by_id: dict[str, _Subscription] = {}
        #: Durable subscriptions, modelled as living on the persistent
        #: storage service — :meth:`crash` re-registers from here.
        self.durable_store = DurableStore()
        #: Queue round-robin cursors.
        self._rr: dict[str, int] = {}
        # NIO: one shared dispatch queue + selector thread, lazily started.
        self._nio_queue: Optional[Store] = None
        # Broker network plumbing (set by BrokerNetwork.attach).
        self.network: Optional["BrokerNetwork"] = None
        self.peer_channels: dict[str, Channel] = {}
        #: dest name -> set of broker names with local subscribers there.
        self.remote_interest: dict[str, set[str]] = {}
        # Flood dedup (bounded LRU of message ids).
        self._seen: OrderedDict[str, None] = OrderedDict()
        self.alive = True
        #: Currently-open client connections (drives scheduling overhead).
        self.open_connections = 0
        #: Open client channels, tracked so a crash can sever them.
        self._client_channels: list[Channel] = []
        self.crashes = 0
        self.restarts = 0
        #: Aggregation buffers: sub_id -> pending message copies.
        self._agg_buffers: dict[str, list] = {}

    # ------------------------------------------------------------- serving
    def serve(self, transport: Any, port: int) -> None:
        """Start accepting client connections on ``transport``/``port``."""
        transport.listen(self.node, port, self._accept)

    def _accept(self, channel: Channel) -> None:
        """Transport acceptor; raising refuses the connection."""
        if not self.alive:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} is down")
        try:
            self.jvm.alloc(self.config.per_connection_heap, "connection buffers")
            if channel.server_mode == "nio":
                self._register_nio(channel)
            else:
                self.jvm.spawn_thread(
                    self._connection_loop(channel), name=f"{self.name}.conn"
                )
        except OutOfMemoryError as exc:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} out of memory: {exc}") from exc
        self.stats.connections_accepted += 1
        self.open_connections += 1
        self._client_channels.append(channel)
        self.node.execute_process(self.config.accept_cpu)

    def _sched_overhead(self) -> float:
        """Per-message scheduling overhead growing with open connections."""
        return self.config.per_connection_cpu * self.open_connections

    # Thread-per-connection service (blocking TCP, UDP).
    def _connection_loop(self, channel: Channel) -> Generator[Any, Any, None]:
        while self.alive:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                self.jvm.free(self.config.per_connection_heap)
                self.open_connections -= 1
                self._on_channel_closed(channel)
                return
            if not self.alive:
                return  # shut down while parked in receive()
            yield from self.node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            yield from self._handle(channel, delivery.payload)

    # Shared-selector service (NIO).
    def _register_nio(self, channel: Channel) -> None:
        if self._nio_queue is None:
            self._nio_queue = Store(self.sim)
            self.jvm.spawn_thread(self._selector_loop(), name=f"{self.name}.selector")
        queue = self._nio_queue
        channel.on_deliver = lambda d: queue.put_nowait((channel, d))

    def _selector_loop(self) -> Generator[Any, Any, None]:
        assert self._nio_queue is not None
        while self.alive:
            channel, delivery = yield self._nio_queue.get()
            if delivery.payload is EOF:
                self.jvm.free(self.config.per_connection_heap)
                self.open_connections -= 1
                continue
            yield from self.node.execute(
                self.config.nio_dispatch_cpu
                + channel.cost_model.recv_cost(delivery.nbytes)
            )
            yield from self._handle(channel, delivery.payload)

    # ------------------------------------------------------------ protocol
    def _handle(self, channel: Channel, frame: tuple) -> Generator[Any, Any, None]:
        kind = frame[0]
        if kind == "publish":
            yield from self._on_publish(frame[1], origin_channel=channel)
        elif kind == "subscribe":
            _, sub_id, destination, selector_text, durable = frame
            yield from self._on_subscribe(
                channel, sub_id, destination, selector_text, durable
            )
        elif kind == "unsubscribe":
            self._remove_subscription(frame[1])
        elif kind == "ack":
            count = frame[1]
            self.stats.acks_processed += count
            yield from self.node.execute(self.config.ack_cpu * count)
            per_sub = frame[2] if len(frame) > 2 else None
            if per_sub:
                for sub_id, n in per_sub.items():
                    sub = self._subs_by_id.get(sub_id)
                    if sub is not None and sub.durable:
                        self._settle(sub, n)
        elif kind == "forward":
            _, message, targets, hop = frame
            yield from self._on_forward(message, targets, hop)
        elif kind == "interest":
            _, dest_name, broker_name, active = frame
            self._on_interest(dest_name, broker_name, active)
        else:
            raise ValueError(f"unknown frame kind {kind!r}")

    # ------------------------------------------------------------- publish
    def _on_publish(
        self, message: Any, origin_channel: Optional[Channel]
    ) -> Generator[Any, Any, None]:
        self.stats.messages_published += 1
        tel = _telemetry()
        if tel is not None:
            record = getattr(message, "_record", None)
            if record is not None:
                tel.mark(record, "broker_in", self.sim.now, "narada", self.name)
        cfg = self.config
        nbytes = message.wire_size()
        try:
            self.jvm.alloc(cfg.per_message_heap, "in-flight message")
        except OutOfMemoryError:
            self.stats.deliveries_dropped += 1
            return
        try:
            yield from self.node.execute(
                cfg.message_cpu(nbytes) + self._sched_overhead()
            )
            if message.delivery_mode == 2:  # PERSISTENT
                yield from self.node.execute(cfg.persist_cpu)
            if not self._mark_seen(message.message_id):
                return  # duplicate of an already-routed event
            yield from self._deliver_local(message)
            if self.network is not None:
                yield from self.network.forward_from(self, message)
        finally:
            self.jvm.free(cfg.per_message_heap)

    def _deliver_local(self, message: Any) -> Generator[Any, Any, None]:
        cfg = self.config
        dest = message.destination
        subs = self._subs.get(dest.name, [])
        if not subs:
            return
        if isinstance(dest, Queue):
            # Round-robin among matching queue receivers.
            start = self._rr.get(dest.name, 0)
            n = len(subs)
            for k in range(n):
                sub = subs[(start + k) % n]
                self.stats.selector_evaluations += 1
                yield from self.node.execute(cfg.selector_eval_cpu)
                if sub.selector is None or sub.selector.matches(message):
                    self._rr[dest.name] = (start + k + 1) % n
                    yield from self._push(sub, message)
                    return
            return
        for sub in list(subs):
            self.stats.selector_evaluations += 1
            yield from self.node.execute(cfg.selector_eval_cpu)
            if sub.selector is None or sub.selector.matches(message):
                yield from self._push(sub, message)

    def _on_channel_closed(self, channel: Channel) -> None:
        """Client disconnected: durable subscriptions go offline (messages
        buffer until re-subscribe); non-durable ones die with the channel."""
        try:
            self._client_channels.remove(channel)
        except ValueError:
            pass  # already severed by a crash
        for sub in list(self._subs_by_id.values()):
            if sub.channel is not channel and sub.channel is not channel.peer:
                continue
            if sub.durable:
                sub.channel = None
            else:
                self._remove_subscription(sub.sub_id)

    def _push(self, sub: _Subscription, message: Any) -> Generator[Any, Any, None]:
        cfg = self.config
        copy = message.copy()
        copy.destination = message.destination
        if sub.channel is None or sub.channel.closed:
            # Offline durable subscriber: retain for later delivery.
            if sub.durable:
                self._retain(sub, copy, sub.offline_buffer)
            else:
                self.stats.deliveries_dropped += 1
            return
        if cfg.aggregation_window > 0:
            yield from self.node.execute(cfg.aggregate_member_cpu)
            self._aggregate(sub, copy)
            return
        yield from self.node.execute(cfg.deliver_cpu)
        # Durable contract: the copy stays retained until the subscriber's
        # JMS ack comes back — a send the broker counts as delivered can
        # still die on the wire under a crash, and re-subscribe replays it.
        retained = sub.durable and self._retain(sub, copy, sub.unacked)
        try:
            yield from sub.channel.send(
                ("deliver", sub.sub_id, copy),
                copy.wire_size() + cfg.frame_overhead_bytes,
            )
            self.stats.messages_delivered += 1
            tel = _telemetry()
            if tel is not None:
                record = getattr(copy, "_record", None)
                if record is not None:
                    tel.mark(
                        record, "broker_out", self.sim.now, "narada", self.name
                    )
        except (MessageLost, ChannelClosed):
            if not retained:
                self.stats.deliveries_dropped += 1

    # ----------------------------------------------------- durable retention
    def _retain(self, sub: _Subscription, copy: Any, buffer: list) -> bool:
        """Retain a copy for replay, bounded by buffer size and broker heap.

        Returns False when the copy could not be retained (heap exhausted):
        the message is dropped like a non-durable delivery would be, instead
        of OOM-killing the broker over retention bookkeeping.
        """
        cfg = self.config
        try:
            self.jvm.alloc(cfg.per_message_heap, "durable retention")
        except OutOfMemoryError:
            self.stats.deliveries_dropped += 1
            self.stats.retention_evicted += 1
            return False
        buffer.append(copy)
        # One budget covers both windows; evict oldest-first (unacked
        # predates offline chronologically).
        while len(sub.unacked) + len(sub.offline_buffer) > cfg.durable_buffer_max:
            victim = sub.unacked if sub.unacked else sub.offline_buffer
            victim.pop(0)
            self.jvm.free(cfg.per_message_heap)
            self.stats.deliveries_dropped += 1
            self.stats.retention_evicted += 1
        return True

    def _settle(self, sub: _Subscription, count: int) -> None:
        """A JMS ack retires the oldest ``count`` retained deliveries."""
        settled = min(count, len(sub.unacked))
        if settled:
            del sub.unacked[:settled]
            self.jvm.free(self.config.per_message_heap * settled)

    # ---------------------------------------------------------- aggregation
    def _aggregate(self, sub: _Subscription, message: Any) -> None:
        """RMM-style aggregation: buffer per subscription, flush on a timer.

        One combined wire message per window pays the delivery cost once —
        "the quantity of the messages is the dominant overhead" (paper §IV).
        """
        buffer = self._agg_buffers.get(sub.sub_id)
        if buffer is not None:
            buffer.append(message)
            return
        self._agg_buffers[sub.sub_id] = [message]
        self.sim.call_at(
            self.sim.now + self.config.aggregation_window,
            lambda: self.sim.process(self._flush_aggregate(sub), name="agg.flush"),
        )

    def _flush_aggregate(self, sub: _Subscription) -> Generator[Any, Any, None]:
        batch = self._agg_buffers.pop(sub.sub_id, None)
        if not batch:
            return
        cfg = self.config
        yield from self.node.execute(cfg.deliver_cpu)
        nbytes = sum(m.wire_size() for m in batch) + cfg.frame_overhead_bytes
        try:
            yield from sub.channel.send(
                ("deliver_batch", sub.sub_id, batch), nbytes
            )
            self.stats.messages_delivered += len(batch)
            tel = _telemetry()
            if tel is not None:
                for m in batch:
                    record = getattr(m, "_record", None)
                    if record is not None:
                        tel.mark(
                            record, "broker_out", self.sim.now, "narada",
                            self.name,
                        )
        except (MessageLost, ChannelClosed):
            self.stats.deliveries_dropped += len(batch)

    # ------------------------------------------------------------ subscribe
    def _on_subscribe(
        self,
        channel: Channel,
        sub_id: str,
        destination: Destination,
        selector_text: Optional[str],
        durable: bool = False,
    ) -> Generator[Any, Any, None]:
        existing = self._subs_by_id.get(sub_id)
        if existing is not None and existing.durable and existing.channel is None:
            # Durable re-subscribe: reattach and replay the retained
            # backlog — unacked deliveries first (older), then the offline
            # buffer, in arrival order.  Replay re-enters :meth:`_push`, so
            # every copy is re-retained until its ack comes back; the
            # subscriber's (pub_id, seq) dedup absorbs any it already saw.
            existing.channel = channel
            yield from self.node.execute(self.config.routing_cpu)
            try:
                yield from channel.send(
                    ("subscribed", sub_id), self.config.control_bytes
                )
            except (MessageLost, ChannelClosed):
                return
            backlog = existing.unacked + existing.offline_buffer
            existing.unacked, existing.offline_buffer = [], []
            for message in backlog:
                self.jvm.free(self.config.per_message_heap)
                self.stats.messages_replayed += 1
                yield from self._push(existing, message)
            return
        sub = _Subscription(
            sub_id=sub_id,
            destination_name=destination.name,
            is_queue=isinstance(destination, Queue),
            selector=parse_selector(selector_text),
            channel=channel,
            durable=durable,
        )
        self._subs.setdefault(destination.name, []).append(sub)
        self._subs_by_id[sub_id] = sub
        if durable:
            self.durable_store.register(sub)
        yield from self.node.execute(self.config.routing_cpu)
        try:
            yield from channel.send(("subscribed", sub_id), self.config.control_bytes)
        except (MessageLost, ChannelClosed):
            pass
        if self.network is not None:
            yield from self.network.advertise_interest(self, destination.name, True)

    def _remove_subscription(self, sub_id: str) -> None:
        sub = self._subs_by_id.pop(sub_id, None)
        if sub is None:
            return
        if sub.durable:
            # Explicit unsubscribe forgets the durable name and frees its
            # retained messages.
            self.durable_store.forget(sub_id)
            retained = len(sub.unacked) + len(sub.offline_buffer)
            if retained:
                self.jvm.free(self.config.per_message_heap * retained)
                sub.unacked.clear()
                sub.offline_buffer.clear()
        bucket = self._subs.get(sub.destination_name, [])
        try:
            bucket.remove(sub)
        except ValueError:
            pass
        if not bucket and self.network is not None:
            self.sim.process(
                self.network.advertise_interest(self, sub.destination_name, False),
                name=f"{self.name}.interest-off",
            )

    def subscription_count(self, destination_name: Optional[str] = None) -> int:
        if destination_name is None:
            return len(self._subs_by_id)
        return len(self._subs.get(destination_name, []))

    # ------------------------------------------------- broker network hooks
    def _on_forward(
        self, message: Any, targets: Optional[tuple], hop_from: str
    ) -> Generator[Any, Any, None]:
        self.stats.forwards_received += 1
        cfg = self.config
        yield from self.node.execute(cfg.forward_recv_cpu + self._sched_overhead())
        if cfg.broadcast_flaw:
            if not self._mark_seen(message.message_id):
                return
            yield from self._deliver_local(message)
            if self.network is not None:
                yield from self.network.flood(self, message, exclude=hop_from)
        else:
            assert targets is not None
            if self.name in targets:
                yield from self._deliver_local(message)
            remaining = tuple(t for t in targets if t != self.name)
            if remaining and self.network is not None:
                yield from self.network.route(self, message, remaining)

    def _on_interest(self, dest_name: str, broker_name: str, active: bool) -> None:
        bucket = self.remote_interest.setdefault(dest_name, set())
        if active:
            bucket.add(broker_name)
        else:
            bucket.discard(broker_name)

    def _mark_seen(self, message_id: str) -> bool:
        """Record a routed event id; False when it is a duplicate."""
        if message_id in self._seen:
            return False
        self._seen[message_id] = None
        if len(self._seen) > self.config.dedup_capacity:
            self._seen.popitem(last=False)
        return True

    # ---------------------------------------------------------------- admin
    def shutdown(self) -> None:
        self.alive = False

    def crash(self) -> None:
        """Kill the broker process: refuse new connections, sever open ones.

        Each closed channel delivers an EOF through its normal service path
        (connection thread or NIO selector queue), so heap accounting and
        subscription teardown follow the clean-disconnect code.  Non-durable
        subscriptions are volatile broker memory: they die with their
        channels, so clients must reconnect *and* resubscribe after a
        restart.  Durable subscriptions live on the persistent storage
        service (:attr:`durable_store`) and are re-registered from it here —
        the stand-in for the recovery controller replaying the on-disk
        subscription registry — coming back *offline*, so deliveries racing
        the crash land in their replay buffers instead of a dead channel.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        for channel in list(self._client_channels):
            if not channel.closed:
                channel.close()
        self._client_channels.clear()
        for sub in self.durable_store.subscriptions():
            sub.channel = None
            if self._subs_by_id.get(sub.sub_id) is not sub:
                self._subs_by_id[sub.sub_id] = sub
                bucket = self._subs.setdefault(sub.destination_name, [])
                if sub not in bucket:
                    bucket.append(sub)

    def restart(self) -> None:
        """Bring a crashed broker back up (the listener stays registered).

        The NIO selector thread died with the crash; respawn it so stale
        EOFs drain and new registrations are served.
        """
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        if self._nio_queue is not None:
            self.jvm.spawn_thread(
                self._selector_loop(), name=f"{self.name}.selector"
            )
