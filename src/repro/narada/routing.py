"""Shortest-path event routing over the Broker Network Map.

"NaradaBrokering has a very efficient algorithm to find a shortest route to
send the events to the destination in a BNM" (paper §II.B).  The BNM is a
small graph of brokers with weighted links (we weight by measured link
latency); Dijkstra from each broker yields next-hop tables.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Mapping

Graph = Mapping[Hashable, Mapping[Hashable, float]]


def shortest_paths(
    graph: Graph, source: Hashable
) -> tuple[dict[Hashable, float], dict[Hashable, Hashable]]:
    """Dijkstra.  Returns ``(distance, first_hop)`` maps from ``source``.

    ``first_hop[target]`` is the neighbour of ``source`` on a shortest path
    to ``target`` — exactly what a broker needs to forward an event.
    """
    if source not in graph:
        raise KeyError(f"unknown source {source!r}")
    dist: dict[Hashable, float] = {source: 0.0}
    first_hop: dict[Hashable, Hashable] = {}
    heap: list[tuple[float, int, Hashable, Hashable]] = []
    seq = 0
    for neighbour, weight in graph[source].items():
        if weight < 0:
            raise ValueError("negative link weight")
        seq += 1
        heapq.heappush(heap, (weight, seq, neighbour, neighbour))
    visited = {source}
    while heap:
        d, _, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        dist[node] = d
        first_hop[node] = hop
        for neighbour, weight in graph.get(node, {}).items():
            if weight < 0:
                raise ValueError("negative link weight")
            if neighbour not in visited:
                seq += 1
                heapq.heappush(heap, (d + weight, seq, neighbour, hop))
    return dist, first_hop


def routing_tables(
    graph: Graph,
) -> dict[Hashable, dict[Hashable, Hashable]]:
    """First-hop table for every broker in the graph."""
    return {broker: shortest_paths(graph, broker)[1] for broker in graph}
