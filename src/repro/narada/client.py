"""Client-side Narada runtime: the JMS Provider implementation.

One provider per JMS connection.  A reader process on the client node
receives broker pushes, charges receive CPU and fans messages out to the
registered subscription callbacks; that hand-off instant is stamped on the
message (``_t_arrived_client``) so the harness can decompose RTT into the
paper's PRT / PT / SRT phases (Fig 15).
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.jms.destination import Destination
from repro.jms.errors import JMSException
from repro.narada.config import NaradaConfig
from repro.transport.base import EOF, Channel, ChannelClosed, MessageLost

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

_provider_ids = count(1)


class NaradaProvider:
    """Implements :class:`repro.jms.session.Provider` over a broker channel."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        channel: Channel,
        config: Optional[NaradaConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.channel = channel
        self.config = config or NaradaConfig()
        self.name = f"narada-client-{next(_provider_ids)}"
        self._sub_seq = count(1)
        self._subscriptions: dict[str, Callable[[Any], None]] = {}
        self._pending_subscribes: dict[str, Any] = {}
        self.messages_lost = 0
        self.closed = False
        self._reader = sim.process(self._read_loop(), name=f"{self.name}.reader")

    # ----------------------------------------------------------- provider API
    def publish(self, message: Any) -> Generator[Any, Any, None]:
        nbytes = message.wire_size() + self.config.frame_overhead_bytes
        try:
            yield from self.channel.send(("publish", message), nbytes)
        except MessageLost:
            self.messages_lost += 1

    def subscribe(
        self,
        destination: Destination,
        selector_text: Optional[str],
        deliver: Callable[[Any], None],
        durable_name: Optional[str] = None,
    ) -> Generator[Any, Any, str]:
        sub_id = durable_name or f"{self.name}.sub{next(self._sub_seq)}"
        if sub_id in self._subscriptions:
            raise JMSException(f"duplicate durable subscription {sub_id!r}")
        self._subscriptions[sub_id] = deliver
        confirm = self.sim.event()
        self._pending_subscribes[sub_id] = confirm
        yield from self.channel.send(
            ("subscribe", sub_id, destination, selector_text, durable_name is not None),
            self.config.control_bytes,
        )
        yield confirm  # broker round trip — subscription is live after this
        if self.channel.closed and sub_id in self._subscriptions:
            # The reader saw EOF before the broker confirmed: the confirm
            # event was released so we don't park forever, but the
            # subscription never went live.
            self._subscriptions.pop(sub_id, None)
            raise ChannelClosed(f"broker connection lost during subscribe {sub_id!r}")
        return sub_id

    def unsubscribe(self, handle: str) -> Generator[Any, Any, None]:
        self._subscriptions.pop(handle, None)
        try:
            yield from self.channel.send(
                ("unsubscribe", handle), self.config.control_bytes
            )
        except (MessageLost, ChannelClosed):
            pass

    def ack(self, messages: list) -> Generator[Any, Any, None]:
        if not messages or self.closed:
            return
        # Per-subscription counts let the broker settle durable retention
        # (frame *content* only — the wire cost stays ``control_bytes``).
        per_sub: dict[str, int] = {}
        for message in messages:
            sub_id = getattr(message, "_sub_id", None)
            if sub_id is not None:
                per_sub[sub_id] = per_sub.get(sub_id, 0) + 1
        try:
            yield from self.channel.send(
                ("ack", len(messages), per_sub), self.config.control_bytes
            )
        except (MessageLost, ChannelClosed):
            pass

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.channel.close()

    # ---------------------------------------------------------------- reader
    def _read_loop(self) -> Generator[Any, Any, None]:
        while True:
            delivery = yield self.channel.receive()
            payload = delivery.payload
            if payload is EOF:
                # Release any subscriber parked on a confirm round trip so
                # it can observe the dead channel and retry elsewhere.
                pending, self._pending_subscribes = self._pending_subscribes, {}
                for confirm in pending.values():
                    if not confirm.triggered:
                        confirm.succeed()
                return
            yield from self.node.execute(
                self.channel.cost_model.recv_cost(delivery.nbytes)
            )
            kind = payload[0]
            if kind == "deliver":
                _, sub_id, message = payload
                handler = self._subscriptions.get(sub_id)
                if handler is None:
                    continue  # unsubscribed while in flight
                # Arrival = the instant the bytes reached this host; the
                # receive CPU charge and session dispatch above/after it are
                # part of the Subscribing Response Time (paper Fig 15).
                message._t_arrived_client = delivery.delivered_at
                message._sub_id = sub_id
                handler(message)
            elif kind == "deliver_batch":
                _, sub_id, batch = payload
                handler = self._subscriptions.get(sub_id)
                if handler is None:
                    continue
                for message in batch:
                    message._t_arrived_client = delivery.delivered_at
                    message._sub_id = sub_id
                    handler(message)
            elif kind == "subscribed":
                confirm = self._pending_subscribes.pop(payload[1], None)
                if confirm is not None:
                    confirm.succeed()
            else:
                raise JMSException(f"unexpected frame from broker: {kind!r}")


def narada_connection_factory(
    sim: "Simulator",
    transport: Any,
    client_node: "Node",
    broker_host: str,
    port: int,
    config: Optional[NaradaConfig] = None,
):
    """A :class:`repro.jms.ConnectionFactory` for the given broker address."""
    from repro.jms.connection import ConnectionFactory

    def provider_factory() -> Generator[Any, Any, NaradaProvider]:
        channel = yield from transport.connect(client_node, broker_host, port)
        return NaradaProvider(sim, client_node, channel, config)

    return ConnectionFactory(provider_factory)
