"""Calibration constants for the Narada broker model.

Absolute latencies in the paper come from NaradaBrokering v1.1.3 on a
Pentium III 866 MHz under the Sun 1.4.2 JVM.  These constants were chosen so
the model's headline numbers land in the paper's reported ranges (see
EXPERIMENTS.md): TCP RTT of a few milliseconds at 800 connections growing
smoothly to ~25 ms at 3000 (Fig 7), >99 % of messages inside 100 ms
(§III.E.2), UDP mean RTT several times TCP's with a retransmission tail
(Figs 3–4), and an out-of-memory wall between 3000 and 4000 connections for
a single broker.

Era-plausibility: ~2.3 ms of broker CPU per message ≈ 430 msg/s per broker
core, in line with 2004-era Java MOM throughput on sub-GHz hardware, and a
dominant per-*message* (not per-byte) cost, which is exactly the RMM
observation the paper cites in §IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class NaradaConfig:
    """All knobs of the broker model (a frozen dataclass: derive variants
    with :func:`dataclasses.replace`)."""

    # -- broker per-message CPU costs (seconds on the reference node) -----
    #: Fixed routing cost: protocol decode, topic lookup, dispatch.
    routing_cpu: float = 0.0009
    #: Per-byte cost of deserialising + re-serialising a message (Java 1.4
    #: object streams were byte-expensive).
    per_byte_cpu: float = 1.0e-6
    #: Evaluating one subscription's selector against a message.
    selector_eval_cpu: float = 25e-6
    #: Delivering to one matched subscriber (copy + enqueue + socket write).
    deliver_cpu: float = 0.0005
    #: Processing one JMS acknowledgement from a consumer.
    ack_cpu: float = 0.00025
    #: Handling a new connection (accept, session setup).
    accept_cpu: float = 0.003
    #: Extra per-message dispatch cost on the shared NIO selector thread.
    nio_dispatch_cpu: float = 0.0005
    #: Extra per-message cost per open connection: thread-per-connection
    #: scheduling/scan overhead on the 2.4-kernel O(n) scheduler.  This term
    #: is what tilts RTT upward with connection count beyond pure queueing
    #: (paper Fig 7's smooth increase).
    per_connection_cpu: float = 0.1e-6

    # -- protocol bytes ----------------------------------------------------
    #: Framing the broker wire protocol adds per message.
    frame_overhead_bytes: int = 24
    #: Size of a JMS ack / control message on the wire.
    control_bytes: int = 48

    # -- broker JVM / memory ----------------------------------------------
    #: -Xmx for the broker JVM (paper: 1 GiB).
    heap_bytes: float = 1024 * 1024 * 1024
    #: Native stack per connection-serving thread.
    thread_stack_bytes: float = 256 * 1024
    #: Address space left for stacks next to the 1 GiB heap on a 2 GiB node.
    native_budget_bytes: float = 900 * 1024 * 1024
    #: Long-lived heap per client connection (buffers, session state).
    per_connection_heap: float = 96 * 1024
    #: Transient heap per in-flight message (freed after delivery).
    per_message_heap: float = 4096

    # -- persistence / durability ------------------------------------------
    #: Extra CPU for PERSISTENT delivery (synchronous store write).
    persist_cpu: float = 0.004

    # -- message aggregation (the §IV RMM technique; off by default) --------
    #: When > 0, deliveries to a subscriber are buffered for this many
    #: seconds and shipped as one combined message: "Message aggregation is
    #: to reduce the number of total messages by combining several messages
    #: addressed to the same destination into one big message" (paper §IV).
    aggregation_window: float = 0.0
    #: Residual CPU per message inside an aggregated batch (the per-message
    #: cost aggregation cannot remove: copying the payload).
    aggregate_member_cpu: float = 60e-6

    # -- durable subscriptions -----------------------------------------------
    #: Max messages retained per disconnected durable subscription.
    durable_buffer_max: int = 10_000

    # -- broker network -----------------------------------------------------
    #: CPU to forward one message to a neighbouring broker (send side).
    forward_cpu: float = 0.00025
    #: CPU to receive a forwarded event (binary relay: cheaper than a full
    #: client publish decode).
    forward_recv_cpu: float = 0.0009
    #: The v1.1.3 deficiency: forward every event to every neighbour
    #: regardless of remote interest (paper §III.E.2).  Set False for the
    #: fixed subscription-aware routing (the ablation).
    broadcast_flaw: bool = True
    #: Seen-set capacity for flood deduplication.
    dedup_capacity: int = 50_000

    def with_(self, **changes) -> "NaradaConfig":
        """Convenience wrapper around :func:`dataclasses.replace`."""
        return replace(self, **changes)

    def message_cpu(self, nbytes: float) -> float:
        """Total broker-side decode cost for a message of ``nbytes``."""
        return self.routing_cpu + self.per_byte_cpu * nbytes
