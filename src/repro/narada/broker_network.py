"""The Broker Network Map (BNM) and Broker Discovery Node (BDN).

"Several brokers can form a Broker Network Map.  A specialized node called
Broker Discovery Node can discover new brokers" (paper §II.B).  The paper's
Distributed Broker Network experiment uses four broker nodes, one acting as
the *unit controller* that "assigned addresses to the other three nodes"
(§III.E.2) — a star with the controller at the hub.

Two forwarding policies are implemented:

* **broadcast flaw** (default — what the paper measured in v1.1.3): every
  event is flooded to every neighbour with duplicate suppression.  "We have
  monitored unnecessary data flow between nodes, that is, data flowed to a
  node even if there was no subscriber linked to it" (§III.E.2).
* **subscription-aware routing** (the fix the paper anticipates): brokers
  advertise interest per destination; events are forwarded only along
  shortest paths to interested brokers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional

from repro.narada.broker import Broker
from repro.narada.routing import shortest_paths
from repro.transport.base import ChannelClosed, MessageLost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class BrokerDiscoveryNode:
    """Directory of live brokers: new brokers find peers through it."""

    def __init__(self) -> None:
        self._brokers: dict[str, Broker] = {}

    def register(self, broker: Broker) -> list[Broker]:
        """Add ``broker``; returns the already-known peers."""
        peers = list(self._brokers.values())
        self._brokers[broker.name] = broker
        return peers

    def deregister(self, broker: Broker) -> None:
        self._brokers.pop(broker.name, None)

    def lookup(self, name: str) -> Optional[Broker]:
        return self._brokers.get(name)

    @property
    def broker_names(self) -> list[str]:
        return sorted(self._brokers)


def star_network(
    sim: "Simulator",
    transport: Any,
    brokers: list[Broker],
    hub_index: int = 0,
    base_port: int = 19000,
) -> Generator[Any, Any, "BrokerNetwork"]:
    """Reusable single-network baseline: the paper's DBN star, built once.

    Registers every broker and wires a star with ``brokers[hub_index]`` as
    the unit-controller hub.  The forwarding policy comes from each
    broker's own config: ``broadcast_flaw=True`` reproduces the measured
    v1.1.3 flooding, ``broadcast_flaw=False`` the subscription-aware
    single-network routing — so the same builder serves the Narada DBN
    experiments, the routing ablation, and the ``federation_scaling``
    sweep's broadcast A/B leg, instead of each duplicating the setup.

    Run with ``sim.run_process``; returns the :class:`BrokerNetwork`.
    """
    network = BrokerNetwork(sim, transport, base_port=base_port)
    for broker in brokers:
        yield from network.add_broker(broker)
    hub = brokers[hub_index]
    yield from network.star(
        hub.name, [b.name for b in brokers if b is not hub]
    )
    return network


class BrokerNetwork:
    """A set of interconnected brokers sharing one event space."""

    def __init__(self, sim: "Simulator", transport: Any, base_port: int = 19000):
        self.sim = sim
        self.transport = transport
        self.base_port = base_port
        self.bdn = BrokerDiscoveryNode()
        self.brokers: dict[str, Broker] = {}
        #: adjacency: broker -> {neighbour: link weight}
        self.graph: dict[str, dict[str, float]] = {}
        self._routes: dict[str, dict[str, str]] = {}
        self._port_seq = 0

    # ------------------------------------------------------------- topology
    def add_broker(self, broker: Broker) -> Generator[Any, Any, None]:
        """Register ``broker`` with the BDN and give it an inter-broker port."""
        self.bdn.register(broker)
        self.brokers[broker.name] = broker
        self.graph.setdefault(broker.name, {})
        broker.network = self
        self._port_seq += 1
        port = self.base_port + self._port_seq
        broker._network_port = port  # type: ignore[attr-defined]
        self.transport.listen(
            broker.node, port, lambda ch, b=broker: self._accept_peer(b, ch)
        )
        if False:  # pragma: no cover - generator shape for API symmetry
            yield

    def _accept_peer(self, broker: Broker, channel: Any) -> None:
        """A peer broker connected; serve it like a (thread-per-link) client."""
        broker.jvm.spawn_thread(
            broker._connection_loop(channel), name=f"{broker.name}.peer"
        )

    def connect_brokers(
        self, a_name: str, b_name: str, weight: float = 1.0
    ) -> Generator[Any, Any, None]:
        """Create the bidirectional inter-broker link a <-> b."""
        a, b = self.brokers[a_name], self.brokers[b_name]
        channel = yield from self.transport.connect(
            a.node, b.node.name, b._network_port  # type: ignore[attr-defined]
        )
        a.peer_channels[b_name] = channel
        # The reverse direction uses the same full-duplex channel pair; the
        # b-side read loop was spawned by the accept hook, the a-side here.
        b.peer_channels[a_name] = channel.peer
        a.jvm.spawn_thread(a._connection_loop(channel), name=f"{a.name}.peer")
        self.graph[a_name][b_name] = weight
        self.graph[b_name][a_name] = weight
        self._routes.clear()  # recompute lazily

    def star(self, hub: str, leaves: Iterable[str]) -> Generator[Any, Any, None]:
        """The paper's DBN: a unit-controller hub with leaf brokers."""
        for leaf in leaves:
            yield from self.connect_brokers(hub, leaf)

    def first_hop(self, source: str, target: str) -> str:
        routes = self._routes.get(source)
        if routes is None:
            _, routes = shortest_paths(self.graph, source)
            self._routes[source] = routes
        return routes[target]

    # ------------------------------------------------------------ forwarding
    def forward_from(self, broker: Broker, message: Any) -> Generator[Any, Any, None]:
        """Called by a broker after local delivery of a fresh publish."""
        if broker.config.broadcast_flaw:
            yield from self.flood(broker, message, exclude=None)
            return
        interested = {
            name
            for name in broker.remote_interest.get(message.destination.name, ())
            if name != broker.name
        }
        if interested:
            yield from self.route(broker, message, tuple(sorted(interested)))

    def flood(
        self, broker: Broker, message: Any, exclude: Optional[str]
    ) -> Generator[Any, Any, None]:
        """v1.1.3 behaviour: copy to every neighbour (minus the inbound one)."""
        for peer_name, channel in list(broker.peer_channels.items()):
            if peer_name == exclude:
                continue
            yield from self._send_forward(broker, channel, message, None)

    def route(
        self, broker: Broker, message: Any, targets: tuple
    ) -> Generator[Any, Any, None]:
        """Subscription-aware shortest-path forwarding."""
        by_hop: dict[str, list[str]] = {}
        for target in targets:
            hop = self.first_hop(broker.name, target)
            by_hop.setdefault(hop, []).append(target)
        for hop, hop_targets in sorted(by_hop.items()):
            channel = broker.peer_channels[hop]
            yield from self._send_forward(
                broker, channel, message, tuple(hop_targets)
            )

    def _send_forward(
        self, broker: Broker, channel: Any, message: Any, targets: Optional[tuple]
    ) -> Generator[Any, Any, None]:
        cfg = broker.config
        yield from broker.node.execute(cfg.forward_cpu)
        try:
            yield from channel.send(
                ("forward", message.copy(), targets, broker.name),
                message.wire_size() + cfg.frame_overhead_bytes,
            )
            broker.stats.messages_forwarded += 1
        except (MessageLost, ChannelClosed):
            broker.stats.deliveries_dropped += 1

    # ------------------------------------------------------------- interest
    def advertise_interest(
        self, broker: Broker, dest_name: str, active: bool
    ) -> Generator[Any, Any, None]:
        """Tell every other broker that ``broker`` has local subscribers.

        Sent regardless of the flaw flag (cheap control traffic); only the
        fixed routing mode consumes it.
        """
        broker._on_interest(dest_name, broker.name, active)
        for peer_name, channel in list(broker.peer_channels.items()):
            try:
                yield from channel.send(
                    ("interest", dest_name, broker.name, active),
                    broker.config.control_bytes,
                )
            except (MessageLost, ChannelClosed):
                continue
        # Second-hop propagation: hub relays to other leaves.
        yield from self._relay_interest(broker, dest_name, active)

    def _relay_interest(
        self, broker: Broker, dest_name: str, active: bool
    ) -> Generator[Any, Any, None]:
        """Ensure interest reaches brokers not directly linked to the origin.

        With small BNMs (the paper's is 4 brokers) a one-shot global sync is
        faithful enough: every broker learns the mapping after a short delay.
        """
        yield self.sim.timeout(0.0)
        for other in self.brokers.values():
            other._on_interest(dest_name, broker.name, active)
