"""Durable-subscription store: the broker state that outlives a crash.

NaradaBrokering backs durable subscriptions with a persistent storage
service: the subscription registry and the retained-message log live on
disk, so a broker process crash loses neither.  This module models that
storage as an object graph held *outside* the broker's volatile maps —
:class:`repro.narada.broker.Broker.crash` wipes what a process death would
wipe and then re-registers every durable subscription from this store, the
way the recovery controller replays the on-disk registry at startup.

Each durable subscription retains two message windows (both bounded by
``NaradaConfig.durable_buffer_max`` and charged against broker heap):

* ``unacked`` — copies delivered to a *connected* subscriber that have not
  been JMS-acknowledged yet.  This is what closes the crash loss window:
  a push that the broker counted as delivered can still die on the wire
  when the connection is severed, and only the ack proves otherwise.
* ``offline_buffer`` — messages that arrived while the subscriber was
  disconnected (the classic durable-subscription backlog).

On durable re-subscribe the broker replays ``unacked + offline_buffer`` in
arrival order; the subscriber's ``(pub_id, seq)`` dedup index absorbs the
copies it had in fact already processed, so the contract is exactly-once
*processing* built from at-least-once delivery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.narada.broker import _Subscription


class DurableStore:
    """Registry of durable subscriptions surviving broker process death."""

    def __init__(self) -> None:
        self._subs: dict[str, "_Subscription"] = {}

    # ------------------------------------------------------------- registry
    def register(self, sub: "_Subscription") -> None:
        """Record a durable subscription (idempotent on re-register)."""
        self._subs[sub.sub_id] = sub

    def forget(self, sub_id: str) -> None:
        """Drop a durable subscription (JMS ``unsubscribe`` of the name)."""
        self._subs.pop(sub_id, None)

    def get(self, sub_id: str) -> Optional["_Subscription"]:
        return self._subs.get(sub_id)

    def subscriptions(self) -> list["_Subscription"]:
        """All registered durable subscriptions (stable insertion order)."""
        return list(self._subs.values())

    # ----------------------------------------------------------- inspection
    def retained_count(self) -> int:
        """Messages currently held for replay across all subscriptions."""
        return sum(
            len(sub.unacked) + len(sub.offline_buffer)
            for sub in self._subs.values()
        )

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subs

    def __len__(self) -> int:
        return len(self._subs)

    def __iter__(self) -> Iterator["_Subscription"]:
        return iter(self._subs.values())
