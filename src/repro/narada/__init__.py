"""A NaradaBrokering-like distributed messaging broker.

"NaradaBrokering is an open source, distributed messaging infrastructure.
It is fully compliant with JMS ... Several brokers can form a Broker Network
Map (BNM).  A specialized node called Broker Discovery Node (BDN) can
discover new brokers.  NaradaBrokering has a very efficient algorithm to
find a shortest route to send the events to the destination in a BNM"
(paper §II.B).

This package implements:

* :mod:`repro.narada.broker` — a single broker: subscription matching,
  thread-per-connection (TCP) or selector (NIO) serving, JMS ack handling;
* :mod:`repro.narada.client` — the client runtime implementing the
  :class:`repro.jms.session.Provider` protocol over any transport;
* :mod:`repro.narada.routing` — shortest-path event routing over the BNM;
* :mod:`repro.narada.broker_network` — the BNM + Broker Discovery Node,
  including the v1.1.3 *broadcast deficiency* the paper diagnosed
  ("data were broadcast and not diverged to different routes", §III.E.2);
* :mod:`repro.narada.config` — every calibration constant in one place.
"""

from repro.narada.broker import Broker, BrokerStats
from repro.narada.broker_network import (
    BrokerDiscoveryNode,
    BrokerNetwork,
    star_network,
)
from repro.narada.client import NaradaProvider, narada_connection_factory
from repro.narada.config import NaradaConfig
from repro.narada.durable import DurableStore
from repro.narada.routing import shortest_paths

__all__ = [
    "Broker",
    "BrokerDiscoveryNode",
    "BrokerNetwork",
    "BrokerStats",
    "DurableStore",
    "NaradaConfig",
    "NaradaProvider",
    "narada_connection_factory",
    "shortest_paths",
    "star_network",
]
