"""Per-broker topic routing tables with covering/aggregation.

Subscriptions propagate *up* the tree: when a topic first gains interest
anywhere in a broker's subtree (a local client, or any child subtree), the
broker advertises one ``fsub`` entry for that topic to its parent; when the
last interest disappears it withdraws the entry.  A parent therefore stores
at most ``children × topics`` entries — one per child-subtree × topic, not
one per client — which is the covering/aggregation property (Zuzak et al.,
arXiv:1209.4485 §III; SIENA-style subscription covering).

The table is pure bookkeeping: transitions are reported to the caller
(the :class:`~repro.federation.broker.FederatedBroker`), which turns them
into wire traffic.  Keeping it side-effect free is what makes convergence
properties unit-testable without a simulator.
"""

from __future__ import annotations


class RoutingTable:
    """One broker's view: local subscribers and per-child-link interest."""

    def __init__(self, owner: str):
        self.owner = owner
        #: topic -> local subscription ids.
        self._local: dict[str, set[str]] = {}
        #: topic -> child broker names that advertised downstream interest.
        self._downstream: dict[str, set[str]] = {}

    # ------------------------------------------------------------ queries
    def has_interest(self, topic: str) -> bool:
        """Any interest in ``topic`` anywhere in this broker's subtree."""
        return bool(self._local.get(topic)) or bool(self._downstream.get(topic))

    def has_local(self, topic: str) -> bool:
        return bool(self._local.get(topic))

    def local_sub_ids(self, topic: str) -> tuple[str, ...]:
        return tuple(sorted(self._local.get(topic, ())))

    def children_for(self, topic: str) -> tuple[str, ...]:
        """Child links an event on ``topic`` must be forwarded down."""
        return tuple(sorted(self._downstream.get(topic, ())))

    def topics(self) -> tuple[str, ...]:
        """Every topic with interest in this subtree — what the broker
        (re-)advertises to a (new) parent."""
        return tuple(
            sorted(set(self._local) | set(self._downstream))
        )

    def entry_count(self) -> int:
        """Stored routing entries: one per (child-subtree × topic) plus one
        per locally subscribed topic — the covering invariant's bound."""
        return sum(len(kids) for kids in self._downstream.values()) + len(
            self._local
        )

    # ---------------------------------------------------------- mutations
    # Every mutator returns True when the *aggregate* interest for the topic
    # transitioned (0 -> 1 on add, 1 -> 0 on remove): exactly the cases the
    # broker must (un)advertise up its parent link.

    def add_local(self, topic: str, sub_id: str) -> bool:
        had = self.has_interest(topic)
        self._local.setdefault(topic, set()).add(sub_id)
        return not had

    def remove_local(self, topic: str, sub_id: str) -> bool:
        subs = self._local.get(topic)
        if not subs or sub_id not in subs:
            return False
        subs.discard(sub_id)
        if not subs:
            del self._local[topic]
        return not self.has_interest(topic)

    def set_downstream(self, topic: str, child: str, active: bool) -> bool:
        had = self.has_interest(topic)
        if active:
            self._downstream.setdefault(topic, set()).add(child)
            return not had
        kids = self._downstream.get(topic)
        if kids is None or child not in kids:
            return False
        kids.discard(child)
        if not kids:
            del self._downstream[topic]
        return had and not self.has_interest(topic)

    def drop_child(self, child: str) -> tuple[str, ...]:
        """Remove every entry for ``child`` (its link died).

        Returns the topics whose aggregate interest went 1 -> 0 — the
        withdrawals the broker must now propagate up.
        """
        withdrawn = []
        for topic in sorted(self._downstream):
            kids = self._downstream.get(topic)
            if kids is None or child not in kids:
                continue
            if self.set_downstream(topic, child, False):
                withdrawn.append(topic)
        return tuple(withdrawn)

    def clear(self) -> None:
        """Forget everything (a crashed broker's in-memory state)."""
        self._local.clear()
        self._downstream.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RoutingTable {self.owner} local={sorted(self._local)} "
            f"downstream={ {t: sorted(c) for t, c in self._downstream.items()} }>"
        )
