"""Broker-tree topology: the shape of the federation overlay.

The hierarchical monitoring architecture of Zuzak et al. (arXiv:1209.4485)
arranges brokers in a tree: leaves sit next to the monitored sites, interior
brokers aggregate, the root is the control-room tier.  A
:class:`TreeTopology` is pure data — broker names, parent/child links and
depth arithmetic — with no simulation state, so routing tables and tests
can reason about the shape without building a deployment.

Brokers are named ``fed0`` (the root), ``fed1`` .. ``fedN-1`` in
breadth-first order: broker ``i``'s parent is ``(i - 1) // fanout``, which
makes membership changes (and their recovery paths) deterministic functions
of the index alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


def broker_name(index: int) -> str:
    return f"fed{index}"


@dataclass(frozen=True)
class FederationParams:
    """The knobs that define a federation run's topology and routing mode.

    ``cache_key()`` is folded into every sweep-cache key (both tiers) so a
    cached broadcast-mode sweep can never satisfy a routed-mode lookup, and
    trees of different shape never alias (see ``repro.harness.cache``).
    """

    fanout: int = 2
    depth: int = 3
    #: ``"routed"`` (topic-aware tree) or ``"broadcast"`` (modelled DBN).
    routing: str = "routed"

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.routing not in ("routed", "broadcast"):
            raise ValueError(f"unknown routing mode {self.routing!r}")

    def cache_key(self) -> tuple:
        return ("federation_params", self.depth, self.fanout, self.routing)

    @property
    def broker_count(self) -> int:
        """Brokers in a complete tree of this depth/fan-out."""
        if self.fanout == 1:
            return self.depth
        return (self.fanout**self.depth - 1) // (self.fanout - 1)


class TreeTopology:
    """A complete ``fanout``-ary tree over ``broker_count`` brokers.

    The tree need not be full at the last level: any ``broker_count >= 1``
    yields a valid left-packed tree (heap layout).
    """

    def __init__(self, broker_count: int, fanout: int = 2):
        if broker_count < 1:
            raise ValueError("broker_count must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.broker_count = broker_count
        self.fanout = fanout
        self.names: tuple[str, ...] = tuple(
            broker_name(i) for i in range(broker_count)
        )
        self._index = {name: i for i, name in enumerate(self.names)}

    @classmethod
    def from_params(cls, params: FederationParams) -> "TreeTopology":
        return cls(params.broker_count, params.fanout)

    # ------------------------------------------------------------ structure
    @property
    def root(self) -> str:
        return self.names[0]

    def index(self, name: str) -> int:
        return self._index[name]

    def parent(self, name: str) -> Optional[str]:
        """Parent broker name, or ``None`` for the root."""
        i = self._index[name]
        if i == 0:
            return None
        return self.names[(i - 1) // self.fanout]

    def grandparent(self, name: str) -> Optional[str]:
        parent = self.parent(name)
        return None if parent is None else self.parent(parent)

    def children(self, name: str) -> tuple[str, ...]:
        i = self._index[name]
        lo = i * self.fanout + 1
        hi = min(lo + self.fanout, self.broker_count)
        return self.names[lo:hi] if lo < self.broker_count else ()

    def is_leaf(self, name: str) -> bool:
        return not self.children(name)

    def leaves(self) -> tuple[str, ...]:
        return tuple(n for n in self.names if self.is_leaf(n))

    def depth_of(self, name: str) -> int:
        """Root is depth 0."""
        i = self._index[name]
        depth = 0
        while i > 0:
            i = (i - 1) // self.fanout
            depth += 1
        return depth

    @property
    def depth(self) -> int:
        """Levels in the tree (a lone root is depth 1)."""
        return self.depth_of(self.names[-1]) + 1

    def links(self) -> Iterator[tuple[str, str]]:
        """Every (parent, child) tree link, in child-index order."""
        for name in self.names[1:]:
            parent = self.parent(name)
            assert parent is not None
            yield (parent, name)

    @property
    def link_count(self) -> int:
        return self.broker_count - 1

    def path_to_root(self, name: str) -> tuple[str, ...]:
        """Brokers from ``name`` (inclusive) up to the root (inclusive)."""
        path = [name]
        parent = self.parent(name)
        while parent is not None:
            path.append(parent)
            parent = self.parent(parent)
        return tuple(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TreeTopology n={self.broker_count} fanout={self.fanout} "
            f"depth={self.depth}>"
        )
