"""Deployment: broker tree on a growing cluster, plus client helpers.

Unlike the fixed 8-node Hydra testbed, a federation sweep grows the broker
count, so :class:`FederationCluster` mints one node per broker (same node
spec and switch parameters as Hydra).  Clients — site publishers and local
subscribers — run *on their broker's node* (kernel loopback), which is the
paper's same-node measurement design ("data were received by the node where
they were sent", §III.E.2): every RTT reads one clock.

The deployment owns the per-link traffic ledger: every inter-broker send is
counted against its directed tree link (and mirrored into telemetry
counters when a session is active), which is what the ``federation_scaling``
experiment reads to compare routed-tree traffic against the broadcast DBN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.hydra import HYDRA_SPEC
from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.federation.broker import FederatedBroker
from repro.federation.topology import TreeTopology
from repro.narada.config import NaradaConfig
from repro.powergrid.generator import PowerGenerator
from repro.powergrid.payload import narada_map_message
from repro.telemetry.context import current as _telemetry
from repro.transport.base import EOF, Channel, ChannelClosed, MessageLost
from repro.transport.tcp import TcpTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.records import RecordBook
    from repro.sim.kernel import Simulator

FEDERATION_PORT = 6200


def site_topic(broker_index: int) -> str:
    """The monitoring topic of the site attached to broker ``i``."""
    return f"grid.site.{broker_index}"


class FederationCluster:
    """One node per broker on a single switched LAN.

    Exposes the same ``.node(name)`` / ``.lan`` surface as
    :class:`repro.cluster.hydra.HydraCluster`, so the fault scheduler's
    target resolution works unchanged against federation runs.
    """

    def __init__(self, sim: "Simulator", node_names: tuple[str, ...]):
        self.sim = sim
        self.lan = Lan(sim, bandwidth_bps=HYDRA_SPEC.lan_bandwidth_bps)
        self.nodes: dict[str, Node] = {}
        for name in node_names:
            self.nodes[name] = Node(
                sim, name, memory_bytes=HYDRA_SPEC.memory_bytes
            )
            self.lan.attach(name)

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def node_names(self) -> list[str]:
        return list(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


class FederationDeployment:
    """The broker tree, its cluster, and the traffic ledger."""

    def __init__(
        self,
        sim: "Simulator",
        topology: TreeTopology,
        config: Optional[NaradaConfig] = None,
        base_port: int = FEDERATION_PORT,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config or NaradaConfig()
        self.cluster = FederationCluster(sim, topology.names)
        self.transport = TcpTransport(sim, self.cluster.lan)
        #: directed tree link -> event (data) messages sent over it.
        self.link_traffic: dict[tuple[str, str], int] = {}
        #: directed tree link -> control (hello/fsub) messages.
        self.control_traffic: dict[tuple[str, str], int] = {}
        self.brokers: list[FederatedBroker] = []
        self._by_name: dict[str, FederatedBroker] = {}
        for name in topology.names:
            broker = FederatedBroker(
                sim, self.cluster.node(name), name, self.config
            )
            broker.serve(self.transport, base_port)
            broker.on_link_send = self._count_link
            self.brokers.append(broker)
            self._by_name[name] = broker

    def broker(self, name: str) -> FederatedBroker:
        return self._by_name[name]

    @property
    def root(self) -> FederatedBroker:
        return self.brokers[0]

    def node(self, name: str) -> Node:
        return self.cluster.node(name)

    # -------------------------------------------------------------- wiring
    def start(self) -> Generator[Any, Any, None]:
        """Connect every tree link, children to parents, in index order."""
        for parent_name, child_name in self.topology.links():
            yield from self._by_name[child_name].connect_to_parent(
                self.transport, self._by_name[parent_name]
            )

    # ------------------------------------------------------------- traffic
    def _count_link(self, src: str, dst: str, control: bool) -> None:
        ledger = self.control_traffic if control else self.link_traffic
        key = (src, dst)
        ledger[key] = ledger.get(key, 0) + 1
        tel = _telemetry()
        if tel is not None:
            tel.metrics.counter(
                "federation",
                f"link:{src}->{dst}",
                "control_messages" if control else "link_messages",
            ).inc()

    def link_snapshot(self) -> dict[tuple[str, str], int]:
        return dict(self.link_traffic)

    def link_totals(
        self, since_snapshot: Optional[dict[tuple[str, str], int]] = None
    ) -> dict[tuple[str, str], int]:
        """Per-directed-link event counts, optionally since a snapshot.

        Links with no traffic still appear (count 0) so per-link means
        divide by the full link population, not just the busy links.
        """
        base = since_snapshot or {}
        totals: dict[tuple[str, str], int] = {}
        for parent, child in self.topology.links():
            for key in ((parent, child), (child, parent)):
                totals[key] = self.link_traffic.get(key, 0) - base.get(key, 0)
        return totals

    # ------------------------------------------------------------ liveness
    def converged(self) -> bool:
        """Every live non-root broker has a live uplink — the quiescent
        routing-convergence precondition the tests assert."""
        for broker in self.brokers[1:]:
            if not broker.alive:
                continue
            channel = broker.parent_channel
            if channel is None or channel.closed:
                return False
        return True


class FederationSubscriber:
    """A raw-protocol subscriber client attached to one broker.

    ``stamp_records=True`` makes it the *measuring* endpoint: it stamps
    ``t_arrived``/``t_received`` on each delivered message's record and
    emits the ``delivered`` telemetry mark.  Site-local subscribers pass
    ``False`` so the control-room tier is the single RTT clock.
    """

    def __init__(
        self,
        sim: "Simulator",
        deployment: FederationDeployment,
        broker_name: str,
        sub_id: str,
        topics: tuple[str, ...],
        stamp_records: bool = True,
    ):
        self.sim = sim
        self.deployment = deployment
        self.broker_name = broker_name
        self.sub_id = sub_id
        self.topics = topics
        self.stamp_records = stamp_records
        self.channel: Optional[Channel] = None
        self.delivered = 0
        #: topic -> deliveries (tests assert matching-subscription safety).
        self.delivered_by_topic: dict[str, int] = {}

    def start(self) -> Generator[Any, Any, None]:
        broker = self.deployment.broker(self.broker_name)
        self.channel = yield from self.deployment.transport.connect(
            broker.node, broker.node.name, broker.port
        )
        self.sim.process(self._read_loop(), name=f"fedsub.{self.sub_id}")
        for i, topic in enumerate(self.topics):
            yield from self.channel.send(
                ("subscribe", f"{self.sub_id}.{i}", topic),
                self.deployment.config.control_bytes,
            )

    def unsubscribe(self, topic: str) -> Generator[Any, Any, None]:
        i = self.topics.index(topic)
        yield from self.channel.send(
            ("unsubscribe", f"{self.sub_id}.{i}"),
            self.deployment.config.control_bytes,
        )

    def _read_loop(self) -> Generator[Any, Any, None]:
        node = self.channel.node
        while True:
            delivery = yield self.channel.receive()
            if delivery.payload is EOF:
                return
            yield from node.execute(
                self.channel.cost_model.recv_cost(delivery.nbytes)
            )
            frame = delivery.payload
            if frame[0] != "deliver":
                continue  # "subscribed" confirmations
            _, _sub_id, message = frame
            self.delivered += 1
            topic = getattr(message, "_fed_topic", None)
            if topic is not None:
                self.delivered_by_topic[topic] = (
                    self.delivered_by_topic.get(topic, 0) + 1
                )
            if not self.stamp_records:
                continue
            record = getattr(message, "_record", None)
            if record is not None and record.t_received is None:
                record.t_arrived = delivery.delivered_at
                record.t_received = self.sim.now
                tel = _telemetry()
                if tel is not None:
                    tel.mark(
                        record, "delivered", self.sim.now, "federation",
                        node.name,
                    )


class FederationSitePublishers:
    """The publisher fleet of one site: ``n`` generators on the broker's
    node, publishing readings to the site topic at a fixed interval."""

    def __init__(
        self,
        sim: "Simulator",
        deployment: FederationDeployment,
        broker_name: str,
        topic: str,
        n_generators: int,
        publish_interval: float,
        book: Optional["RecordBook"],
        stop_at: float,
        warmup: tuple[float, float] = (0.0, 0.0),
        gen_id_base: int = 0,
    ):
        self.sim = sim
        self.deployment = deployment
        self.broker_name = broker_name
        self.topic = topic
        self.n_generators = n_generators
        self.publish_interval = publish_interval
        self.book = book
        self.stop_at = stop_at
        self.warmup = warmup
        self.gen_id_base = gen_id_base
        self.published = 0
        self.publish_failures = 0

    def start(self) -> None:
        for k in range(self.n_generators):
            self.sim.process(
                self._generator(self.gen_id_base + k),
                name=f"fedpub.{self.topic}.{k}",
            )

    def _generator(self, gen_id: int) -> Generator[Any, Any, None]:
        sim = self.sim
        deployment = self.deployment
        broker = deployment.broker(self.broker_name)
        try:
            channel = yield from deployment.transport.connect(
                broker.node, broker.node.name, broker.port
            )
        except (ChannelClosed, MessageLost):
            self.publish_failures += 1
            return
        model = PowerGenerator(
            gen_id,
            sim.rng.stream(f"fedgen.{gen_id}"),
            site=f"site-{gen_id % 97}",
        )
        lo, hi = self.warmup
        if hi > 0:
            yield sim.timeout(sim.rng.uniform(f"fedwarm.{gen_id}", lo, hi))
        seq = 0
        cfg = deployment.config
        while sim.now < self.stop_at:
            state = model.sample(sim.now)
            message = narada_map_message(state)
            message.message_id = f"fed.{gen_id}.{seq}"
            message._fed_topic = self.topic
            if self.book is not None:
                record = self.book.new_record(gen_id, seq, sim.now)
                message._record = record
            try:
                yield from channel.send(
                    ("publish", message, self.topic),
                    message.wire_size() + cfg.frame_overhead_bytes,
                )
            except (ChannelClosed, MessageLost):
                self.publish_failures += 1
                return
            if self.book is not None:
                record.t_after_send = sim.now
            self.published += 1
            seq += 1
            yield sim.timeout(self.publish_interval)
