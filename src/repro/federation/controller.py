"""Federation membership and parent failover.

Reuses the plog control plane's :class:`~repro.plog.replication.MembershipController`
— the same deterministic periodic liveness scan that drives partition
leader election drives tree re-parenting here:

* **parent crash** — each live child of the dead broker re-attaches to its
  nearest live ancestor (walking the topology towards the root), in child
  index order.  ``connect_to_parent`` re-advertises the child's aggregated
  subtree interest, so routing re-converges with one ``fsub`` per topic per
  rewired link;
* **broker return** — the returnee re-attaches to its topology parent
  (its table is empty: a crash loses in-memory state) and its original
  children are rewired back underneath it, restoring the configured tree.
  Rewiring closes the interim uplink, whose EOF withdraws the covering
  entries the interim parent held.

A root crash leaves the tree headless until the root returns — the
children keep serving their subtrees locally (degraded mode) rather than
electing a new root, mirroring the paper's observation that the v1.1.3
DBN had no recovery story at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.plog.replication import MembershipController
from repro.telemetry.context import current as _telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.federation.broker import FederatedBroker
    from repro.federation.deployment import FederationDeployment
    from repro.sim.kernel import Simulator

#: Default liveness-scan period (seconds) — matches the plog default order
#: of magnitude so chaos windows compare across subsystems.
DETECT_INTERVAL = 1.0


class FederationController(MembershipController):
    """Tree membership: failure detection, re-parenting, restore."""

    monitor_name = "federation.controller"

    def __init__(
        self,
        sim: "Simulator",
        deployment: "FederationDeployment",
        detect_interval: float = DETECT_INTERVAL,
    ):
        super().__init__(sim)
        self.deployment = deployment
        self.detect_interval = detect_interval
        self.reparents = 0
        self.restores = 0
        #: (time, child, new_parent) — the determinism witness.
        self.reparent_log: list[tuple[float, str, str]] = []

    def start(self) -> None:
        self._start_monitor()

    def _members(self) -> list["FederatedBroker"]:
        return self.deployment.brokers

    @property
    def _detect_interval(self) -> float:
        return self.detect_interval

    # ----------------------------------------------------------- transitions
    def _live_ancestor(self, name: str) -> Optional[str]:
        """Nearest ancestor of ``name`` that is up, or None."""
        topology = self.deployment.topology
        parent = topology.parent(name)
        while parent is not None:
            if self._broker_up(self.deployment.broker(parent)):
                return parent
            parent = topology.parent(parent)
        return None

    def _on_broker_failure(self, broker: "FederatedBroker") -> None:
        fallback = self._live_ancestor(broker.name)
        if fallback is None:
            return  # root (or whole ancestor chain) down: wait for return
        children = [
            child
            for child in self.deployment.topology.children(broker.name)
            if self._broker_up(self.deployment.broker(child))
        ]
        if not children:
            return
        self.sim.process(
            self._rewire(children, fallback), name="federation.reparent"
        )

    def _on_broker_return(self, broker: "FederatedBroker") -> None:
        topology = self.deployment.topology
        moves: list[tuple[str, str]] = []
        parent = topology.parent(broker.name)
        if parent is not None and self._broker_up(self.deployment.broker(parent)):
            moves.append((broker.name, parent))
        for child in topology.children(broker.name):
            if self._broker_up(self.deployment.broker(child)):
                moves.append((child, broker.name))
        if moves:
            self.restores += 1
            self.sim.process(
                self._rewire_moves(moves), name="federation.restore"
            )

    # -------------------------------------------------------------- rewiring
    def _rewire(
        self, children: list[str], new_parent: str
    ) -> Generator[Any, Any, None]:
        yield from self._rewire_moves([(child, new_parent) for child in children])

    def _rewire_moves(
        self, moves: list[tuple[str, str]]
    ) -> Generator[Any, Any, None]:
        """Re-attach ``(child, parent)`` pairs sequentially — one process,
        fixed order, so recovery is deterministic under a fixed seed."""
        for child_name, parent_name in moves:
            child = self.deployment.broker(child_name)
            parent = self.deployment.broker(parent_name)
            if not self._broker_up(child) or not self._broker_up(parent):
                continue
            yield from child.connect_to_parent(self.deployment.transport, parent)
            self.reparents += 1
            self.reparent_log.append((self.sim.now, child_name, parent_name))
            tel = _telemetry()
            if tel is not None:
                tel.metrics.counter("federation", "controller", "reparents").inc()
