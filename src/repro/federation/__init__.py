"""Hierarchical broker federation with topic-aware routing.

The fix for the paper's headline NaradaBrokering deficiency — "data were
broadcast and not diverged to different routes" (§III.E.2) — following the
hierarchical pub/sub monitoring architecture of Zuzak et al.
(arXiv:1209.4485): brokers form a tree; subscriptions propagate *up* as
covering routing-table entries (one per child-subtree × topic); events
climb to the root and descend only links with downstream subscribers.

Layout:

* :mod:`~repro.federation.topology` — tree shape + sweep parameters;
* :mod:`~repro.federation.routing` — per-broker covering routing tables;
* :mod:`~repro.federation.broker` — the federated broker (wire protocol,
  CPU/heap charges, telemetry hop marks);
* :mod:`~repro.federation.deployment` — cluster, tree wiring, per-link
  traffic ledger, publisher/subscriber clients;
* :mod:`~repro.federation.controller` — membership + parent failover,
  built on the plog :class:`~repro.plog.replication.MembershipController`.
"""

from repro.federation.broker import FederatedBroker, FederationBrokerStats
from repro.federation.controller import FederationController
from repro.federation.deployment import (
    FEDERATION_PORT,
    FederationCluster,
    FederationDeployment,
    FederationSitePublishers,
    FederationSubscriber,
    site_topic,
)
from repro.federation.routing import RoutingTable
from repro.federation.topology import FederationParams, TreeTopology, broker_name

__all__ = [
    "FEDERATION_PORT",
    "FederatedBroker",
    "FederationBrokerStats",
    "FederationCluster",
    "FederationController",
    "FederationDeployment",
    "FederationParams",
    "FederationSitePublishers",
    "FederationSubscriber",
    "RoutingTable",
    "TreeTopology",
    "broker_name",
    "site_topic",
]
