"""One federation broker: tree links, topic routing, client service.

The broker runs inside a modelled JVM on one cluster node, serving client
connections thread-per-connection like :class:`repro.narada.broker.Broker`
(whose :class:`~repro.narada.config.NaradaConfig` supplies the calibrated
per-message CPU charges and JVM budgets — the federation tier runs the same
broker software, arranged differently).

Wire protocol (tuples over a transport channel):

======================================  ===================================
``("publish", msg, topic)``             client → broker: publish
``("subscribe", id, topic)``            client → broker: add subscription
``("subscribed", id)``                  broker → client: confirmed
``("unsubscribe", id)``                 client → broker: remove
``("deliver", id, msg)``                broker → client: push
``("hello", name)``                     child → parent: link registration
``("fsub", topic, name, active)``       child → parent: (un)advertise that
                                        ``topic`` has interest in the
                                        child's subtree (covering entry)
``("up", msg, topic, name)``            child → parent: event moving up
``("down", msg, topic)``                parent → child: event moving down
======================================  ===================================

Events always climb to the root (the control-room tier must be reachable
without advertising interest *down* the tree) and descend **only** links
whose routing table names a downstream subscriber — the topic-aware half
that the v1.1.3 broadcast DBN lacks.  A tree has no cycles, so no flood
dedup is needed on the federated path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.federation.routing import RoutingTable
from repro.narada.config import NaradaConfig
from repro.telemetry.context import current as _telemetry
from repro.transport.base import EOF, Channel, ChannelClosed, MessageLost

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator


@dataclass
class FederationBrokerStats:
    """Counters the experiments read off."""

    connections_accepted: int = 0
    connections_refused: int = 0
    messages_published: int = 0
    messages_delivered: int = 0
    forwards_up: int = 0
    forwards_down: int = 0
    forwards_received: int = 0
    control_messages: int = 0
    deliveries_dropped: int = 0
    #: Publishes that could not climb: the parent link was down.
    orphaned_up: int = 0


@dataclass
class _LocalSub:
    sub_id: str
    topic: str
    channel: Optional[Channel]


class FederatedBroker:
    """One broker of the federation tree."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        config: Optional[NaradaConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.config = config or NaradaConfig()
        self.jvm = Jvm(
            sim,
            node,
            f"{name}.jvm",
            heap_bytes=self.config.heap_bytes,
            thread_stack_bytes=self.config.thread_stack_bytes,
            native_budget_bytes=self.config.native_budget_bytes,
        )
        self.stats = FederationBrokerStats()
        self.table = RoutingTable(name)
        #: Tree plumbing.
        self.parent_name: Optional[str] = None
        self.parent_channel: Optional[Channel] = None
        self.child_channels: dict[str, Channel] = {}
        self._channel_child: dict[int, str] = {}  # id(channel) -> child name
        #: Local subscriptions.
        self._subs_by_id: dict[str, _LocalSub] = {}
        self._subs_by_topic: dict[str, list[_LocalSub]] = {}
        #: Hook the deployment installs to count per-link traffic:
        #: ``(src, dst, control)``.
        self.on_link_send: Optional[Callable[[str, str, bool], None]] = None
        self.alive = True
        self.port: Optional[int] = None
        self.open_connections = 0
        self._client_channels: list[Channel] = []
        self.crashes = 0
        self.restarts = 0

    # ------------------------------------------------------------- serving
    def serve(self, transport: Any, port: int) -> None:
        self.port = port
        transport.listen(self.node, port, self._accept)

    def _accept(self, channel: Channel) -> None:
        """Transport acceptor; raising refuses the connection."""
        if not self.alive:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} is down")
        try:
            self.jvm.alloc(self.config.per_connection_heap, "connection buffers")
            self.jvm.spawn_thread(
                self._connection_loop(channel), name=f"{self.name}.conn"
            )
        except OutOfMemoryError as exc:
            self.stats.connections_refused += 1
            raise ChannelClosed(f"broker {self.name} out of memory: {exc}") from exc
        self.stats.connections_accepted += 1
        self.open_connections += 1
        self._client_channels.append(channel)
        self.node.execute_process(self.config.accept_cpu)

    def _sched_overhead(self) -> float:
        return self.config.per_connection_cpu * self.open_connections

    def _connection_loop(
        self, channel: Channel, charged: bool = True
    ) -> Generator[Any, Any, None]:
        """Service loop for one channel (client, child link or uplink).

        ``charged=False`` marks the connecting side of a tree link, which
        never paid the acceptor's per-connection heap.
        """
        while self.alive:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                if charged:
                    self.jvm.free(self.config.per_connection_heap)
                    self.open_connections -= 1
                self._on_channel_closed(channel)
                return
            if not self.alive:
                return  # crashed while parked in receive()
            yield from self.node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            yield from self._handle(channel, delivery.payload)

    # ------------------------------------------------------------ protocol
    def _handle(self, channel: Channel, frame: tuple) -> Generator[Any, Any, None]:
        kind = frame[0]
        if kind == "publish":
            _, message, topic = frame
            yield from self._on_publish(message, topic)
        elif kind == "up":
            _, message, topic, from_name = frame
            yield from self._on_up(message, topic, from_name)
        elif kind == "down":
            _, message, topic = frame
            yield from self._on_down(message, topic)
        elif kind == "subscribe":
            _, sub_id, topic = frame
            yield from self._on_subscribe(channel, sub_id, topic)
        elif kind == "unsubscribe":
            yield from self._on_unsubscribe(frame[1])
        elif kind == "hello":
            self._register_child(frame[1], channel)
        elif kind == "fsub":
            _, topic, child_name, active = frame
            yield from self._on_fsub(topic, child_name, active)
        else:
            raise ValueError(f"unknown frame kind {kind!r}")

    # -------------------------------------------------------------- events
    def _mark(self, message: Any, phase: str) -> None:
        tel = _telemetry()
        if tel is None:
            return
        record = getattr(message, "_record", None)
        if record is not None:
            tel.mark(record, phase, self.sim.now, "federation", self.name)

    def _on_publish(self, message: Any, topic: str) -> Generator[Any, Any, None]:
        self.stats.messages_published += 1
        self._mark(message, "broker_in")
        cfg = self.config
        try:
            self.jvm.alloc(cfg.per_message_heap, "in-flight message")
        except OutOfMemoryError:
            self.stats.deliveries_dropped += 1
            return
        try:
            yield from self.node.execute(
                cfg.message_cpu(message.wire_size()) + self._sched_overhead()
            )
            yield from self._deliver_local(topic, message)
            yield from self._forward_down(message, topic, exclude=None)
            yield from self._forward_up(message, topic)
        finally:
            self.jvm.free(cfg.per_message_heap)

    def _on_up(
        self, message: Any, topic: str, from_name: str
    ) -> Generator[Any, Any, None]:
        self.stats.forwards_received += 1
        self._mark(message, "broker_in")
        yield from self.node.execute(
            self.config.forward_recv_cpu + self._sched_overhead()
        )
        yield from self._deliver_local(topic, message)
        yield from self._forward_down(message, topic, exclude=from_name)
        yield from self._forward_up(message, topic)

    def _on_down(self, message: Any, topic: str) -> Generator[Any, Any, None]:
        self.stats.forwards_received += 1
        self._mark(message, "broker_in")
        yield from self.node.execute(
            self.config.forward_recv_cpu + self._sched_overhead()
        )
        yield from self._deliver_local(topic, message)
        yield from self._forward_down(message, topic, exclude=None)

    def _forward_up(self, message: Any, topic: str) -> Generator[Any, Any, None]:
        channel = self.parent_channel
        if channel is None or channel.closed:
            if self.parent_name is not None:
                self.stats.orphaned_up += 1
            return
        cfg = self.config
        yield from self.node.execute(cfg.forward_cpu)
        try:
            yield from channel.send(
                ("up", message.copy(), topic, self.name),
                message.wire_size() + cfg.frame_overhead_bytes,
            )
        except (MessageLost, ChannelClosed):
            self.stats.deliveries_dropped += 1
            return
        self.stats.forwards_up += 1
        self._count_link(self.parent_name, control=False)

    def _forward_down(
        self, message: Any, topic: str, exclude: Optional[str]
    ) -> Generator[Any, Any, None]:
        cfg = self.config
        for child_name in self.table.children_for(topic):
            if child_name == exclude:
                continue
            channel = self.child_channels.get(child_name)
            if channel is None or channel.closed:
                continue
            yield from self.node.execute(cfg.forward_cpu)
            try:
                yield from channel.send(
                    ("down", message.copy(), topic),
                    message.wire_size() + cfg.frame_overhead_bytes,
                )
            except (MessageLost, ChannelClosed):
                self.stats.deliveries_dropped += 1
                continue
            self.stats.forwards_down += 1
            self._count_link(child_name, control=False)

    def _deliver_local(self, topic: str, message: Any) -> Generator[Any, Any, None]:
        cfg = self.config
        for sub in list(self._subs_by_topic.get(topic, ())):
            channel = sub.channel
            if channel is None or channel.closed:
                self.stats.deliveries_dropped += 1
                continue
            yield from self.node.execute(cfg.deliver_cpu)
            copy = message.copy()
            try:
                yield from channel.send(
                    ("deliver", sub.sub_id, copy),
                    copy.wire_size() + cfg.frame_overhead_bytes,
                )
            except (MessageLost, ChannelClosed):
                self.stats.deliveries_dropped += 1
                continue
            self.stats.messages_delivered += 1
            self._mark(copy, "broker_out")

    def _count_link(self, peer: Optional[str], control: bool) -> None:
        if peer is not None and self.on_link_send is not None:
            self.on_link_send(self.name, peer, control)

    # --------------------------------------------------------- subscription
    def _on_subscribe(
        self, channel: Channel, sub_id: str, topic: str
    ) -> Generator[Any, Any, None]:
        sub = _LocalSub(sub_id=sub_id, topic=topic, channel=channel)
        self._subs_by_id[sub_id] = sub
        self._subs_by_topic.setdefault(topic, []).append(sub)
        yield from self.node.execute(self.config.routing_cpu)
        try:
            yield from channel.send(("subscribed", sub_id), self.config.control_bytes)
        except (MessageLost, ChannelClosed):
            pass
        if self.table.add_local(topic, sub_id):
            yield from self._send_fsub(topic, True)

    def _on_unsubscribe(self, sub_id: str) -> Generator[Any, Any, None]:
        sub = self._subs_by_id.pop(sub_id, None)
        if sub is None:
            return
        bucket = self._subs_by_topic.get(sub.topic, [])
        if sub in bucket:
            bucket.remove(sub)
        yield from self.node.execute(self.config.routing_cpu)
        if self.table.remove_local(sub.topic, sub_id):
            yield from self._send_fsub(sub.topic, False)

    def _on_fsub(
        self, topic: str, child_name: str, active: bool
    ) -> Generator[Any, Any, None]:
        """A child (un)advertised subtree interest: covering aggregation —
        only an *aggregate* 0↔1 transition propagates further up."""
        yield from self.node.execute(self.config.routing_cpu)
        if self.table.set_downstream(topic, child_name, active):
            yield from self._send_fsub(topic, active)

    def _send_fsub(self, topic: str, active: bool) -> Generator[Any, Any, None]:
        channel = self.parent_channel
        if channel is None or channel.closed:
            return
        try:
            yield from channel.send(
                ("fsub", topic, self.name, active), self.config.control_bytes
            )
        except (MessageLost, ChannelClosed):
            return
        self.stats.control_messages += 1
        self._count_link(self.parent_name, control=True)

    def subscription_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return len(self._subs_by_id)
        return len(self._subs_by_topic.get(topic, ()))

    # ----------------------------------------------------------- tree links
    def _register_child(self, child_name: str, channel: Channel) -> None:
        self.child_channels[child_name] = channel
        self._channel_child[id(channel)] = child_name

    def connect_to_parent(
        self, transport: Any, parent: "FederatedBroker"
    ) -> Generator[Any, Any, None]:
        """Attach (or re-attach) this broker below ``parent``.

        After the link is up the broker re-advertises its *aggregated*
        subtree interest — one ``fsub`` per topic, regardless of how many
        clients sit below — which is what re-converges routing tables after
        a re-parent.
        """
        if self.parent_channel is not None and not self.parent_channel.closed:
            self.parent_channel.close()
        channel = yield from transport.connect(
            self.node, parent.node.name, parent.port
        )
        self.parent_name = parent.name
        self.parent_channel = channel
        self.jvm.spawn_thread(
            self._connection_loop(channel, charged=False),
            name=f"{self.name}.uplink",
        )
        yield from channel.send(("hello", self.name), self.config.control_bytes)
        self.stats.control_messages += 1
        self._count_link(self.parent_name, control=True)
        for topic in self.table.topics():
            yield from self._send_fsub(topic, True)

    def _on_channel_closed(self, channel: Channel) -> None:
        """EOF housekeeping for all three channel roles."""
        child_name = self._channel_child.pop(id(channel), None)
        if child_name is None and channel.peer is not None:
            child_name = self._channel_child.pop(id(channel.peer), None)
        if child_name is not None:
            # A child subtree went away: withdraw its covering entries and
            # cascade any aggregate 1 -> 0 transitions up the tree.
            self.child_channels.pop(child_name, None)
            withdrawn = self.table.drop_child(child_name)
            if withdrawn and self.alive:
                self.sim.process(
                    self._withdraw_topics(withdrawn),
                    name=f"{self.name}.withdraw",
                )
            return
        if channel is self.parent_channel or (
            self.parent_channel is not None and channel is self.parent_channel.peer
        ):
            self.parent_channel = None
            return
        # A client channel: non-durable subscriptions die with it.
        try:
            self._client_channels.remove(channel)
        except ValueError:
            pass
        for sub in list(self._subs_by_id.values()):
            if sub.channel is channel or sub.channel is channel.peer:
                self.sim.process(
                    self._on_unsubscribe(sub.sub_id), name=f"{self.name}.unsub"
                )

    def _withdraw_topics(self, topics: tuple[str, ...]) -> Generator[Any, Any, None]:
        for topic in topics:
            yield from self._send_fsub(topic, False)

    # ---------------------------------------------------------------- admin
    def crash(self) -> None:
        """Kill the broker process: sever every channel, lose all state.

        Peers see EOFs through their normal service loops: the parent drops
        this broker's covering entries (withdrawing up as needed) and the
        children orphan their uplinks until the controller re-parents them.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        for channel in list(self._client_channels):
            if not channel.closed:
                channel.close()
        self._client_channels.clear()
        for channel in list(self.child_channels.values()):
            if not channel.closed:
                channel.close()
        self.child_channels.clear()
        self._channel_child.clear()
        if self.parent_channel is not None and not self.parent_channel.closed:
            self.parent_channel.close()
        self.parent_channel = None
        self.table.clear()
        self._subs_by_id.clear()
        self._subs_by_topic.clear()

    def restart(self) -> None:
        """Bring a crashed broker back up (the listener stays registered).

        Routing state was in-memory and is gone; the federation controller
        re-attaches the broker to its topology parent, and children re-
        advertise when they are rewired back, which rebuilds the table."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
