"""Upstream adapters: one pooled middleware client per gateway.

The pooling headline lives here: regardless of how many clients park on a
gateway, the gateway holds *one* upstream subscription per distinct topic
(Narada: one JMS connection, one subscriber per topic; plog: one
consumer-group member; R-GMA: one polling consumer per topic) — the
pgbouncer shape, with the per-subtree covering-subscription idea of
:mod:`repro.federation.routing` applied to the client edge.

Each adapter's :meth:`open` mints a *session* bound to one gateway
incarnation; a crashed gateway closes its session and a restarted one
opens a fresh session and re-subscribes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.jms.destination import Topic
from repro.narada.client import narada_connection_factory
from repro.transport.base import ChannelClosed, TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.plog.deployment import PlogDeployment
    from repro.rgma.site import RGMADeployment
    from repro.sim.kernel import Simulator

#: deliver(topic, payload, nbytes) — the gateway's ingest callback.
Deliver = Callable[[str, Any, float], None]


def record_of(payload: Any) -> Optional[Any]:
    """The :class:`MessageRecord` riding on a middleware payload, if any.

    Narada messages and plog values carry it as ``_record``; R-GMA tuples
    carry it in ``meta["record"]``.
    """
    record = getattr(payload, "_record", None)
    if record is not None:
        return record
    meta = getattr(payload, "meta", None)
    if isinstance(meta, dict):
        return meta.get("record")
    return None


def payload_bytes(payload: Any, default: float = 140.0) -> float:
    wire_size = getattr(payload, "wire_size", None)
    if callable(wire_size):
        return float(wire_size())
    return default


class NaradaUpstream:
    """One JMS connection per gateway; one subscriber per topic."""

    def __init__(
        self,
        sim: "Simulator",
        transport: Any,
        broker_address: tuple[str, int],
        config: Any = None,
    ):
        self.sim = sim
        self.transport = transport
        self.broker_address = broker_address
        self.config = config

    def open(self, node: "Node", name: str) -> "_NaradaSession":
        return _NaradaSession(self, node, name)


class _NaradaSession:
    def __init__(self, upstream: NaradaUpstream, node: "Node", name: str):
        self.upstream = upstream
        self.node = node
        self.name = name
        self._connection: Any = None
        self._session: Any = None
        self.closed = False

    @property
    def connections(self) -> int:
        return 1 if self._connection is not None and not self.closed else 0

    def subscribe(self, topic: str, deliver: Deliver) -> Generator[Any, Any, None]:
        if self._connection is None:
            factory = narada_connection_factory(
                self.upstream.sim,
                self.upstream.transport,
                self.node,
                self.upstream.broker_address[0],
                self.upstream.broker_address[1],
                self.upstream.config,
            )
            self._connection = yield from factory.create_connection()
            self._connection.start()
            self._session = self._connection.create_session()

        def listener(message: Any, _topic: str = topic) -> None:
            if not self.closed:
                deliver(_topic, message, payload_bytes(message))

        yield from self._session.create_subscriber(
            Topic(topic), selector=None, listener=listener
        )

    def close(self) -> None:
        self.closed = True
        if self._connection is not None:
            self._connection.close()
            self._connection = None
            self._session = None


class PlogUpstream:
    """One consumer-group member per gateway.

    The group is stable across gateway incarnations (``edge.<gateway>``),
    so a restarted gateway resumes from its committed offsets — the log
    *is* the catch-up window on this path; the member name is fresh per
    incarnation so the coordinator sees a clean rejoin.
    """

    def __init__(self, sim: "Simulator", deployment: "PlogDeployment"):
        self.sim = sim
        self.deployment = deployment

    def open(self, node: "Node", name: str) -> "_PlogSession":
        return _PlogSession(self, node, name)


class _PlogSession:
    def __init__(self, upstream: PlogUpstream, node: "Node", name: str):
        self.upstream = upstream
        self.node = node
        self.name = name
        self._consumer: Any = None
        self.closed = False

    @property
    def connections(self) -> int:
        if self._consumer is None or self.closed:
            return 0
        coord = 1 if self._consumer._coord is not None else 0
        return coord + len(self._consumer._sessions)

    def subscribe(self, topic: str, deliver: Deliver) -> Generator[Any, Any, None]:
        # One deployment serves one topic; the member covers all partitions.
        def on_record(value: Any, t_arrived: float, _topic: str = topic) -> None:
            if not self.closed:
                deliver(_topic, value, payload_bytes(value))

        group = self.name.rsplit(".", 1)[0]  # stable across incarnations
        self._consumer = self.upstream.deployment.consumer(
            self.node, self.name, group, on_record=on_record
        )
        self.upstream.sim.process(self._run(), name=f"{self.name}.member")
        yield self.upstream.sim.timeout(0.0)

    def _run(self) -> Generator[Any, Any, None]:
        try:
            yield from self._consumer.start()
        except (ChannelClosed, TransportError):
            return

    def close(self) -> None:
        self.closed = True
        if self._consumer is not None:
            self._consumer.close()
            self._consumer = None


class RgmaUpstream:
    """One polling :class:`ConsumerClient` per topic per gateway."""

    def __init__(
        self,
        sim: "Simulator",
        deployment: "RGMADeployment",
        poll_interval: float = 0.1,
        consumer_index_base: int = 100,
    ):
        self.sim = sim
        self.deployment = deployment
        self.poll_interval = poll_interval
        self._next_index = consumer_index_base

    def open(self, node: "Node", name: str) -> "_RgmaSession":
        return _RgmaSession(self, node, name)


class _RgmaSession:
    def __init__(self, upstream: RgmaUpstream, node: "Node", name: str):
        self.upstream = upstream
        self.node = node
        self.name = name
        self._clients: list[Any] = []
        self.closed = False

    @property
    def connections(self) -> int:
        return 0 if self.closed else len(self._clients)

    def subscribe(self, topic: str, deliver: Deliver) -> Generator[Any, Any, None]:
        client = self.upstream.deployment.consumer_client(
            self.node, self.upstream._next_index
        )
        self.upstream._next_index += 1
        yield from client.create(f"SELECT * FROM {topic}")
        self._clients.append(client)

        def on_tuple(t: Any, _topic: str = topic) -> None:
            if not self.closed:
                deliver(_topic, t, payload_bytes(t))

        self.upstream.sim.process(
            self._guarded_poll(client, on_tuple), name=f"{self.name}.poll"
        )

    def _guarded_poll(self, client: Any, on_tuple: Any) -> Generator[Any, Any, None]:
        try:
            yield from client.poll_loop(on_tuple, self.upstream.poll_interval)
        except Exception:
            # Registry/servlet unreachable or session torn down mid-poll;
            # the owning gateway decides whether to re-open.
            return

    def close(self) -> None:
        self.closed = True
        for client in self._clients:
            client.stop()
        self._clients = []
