"""Gateway-tier tunables.

One frozen dataclass so sweep-cache keys can fold the whole configuration
(:meth:`EdgeConfig.cache_key`) the way ``FederationParams`` does — a sweep
point run with a different gateway topology or budget must never satisfy a
lookup for another.
"""

from __future__ import annotations

from dataclasses import dataclass

MiB = 1024 * 1024


@dataclass(frozen=True)
class EdgeConfig:
    """Behaviour and budgets of one :class:`~repro.edge.gateway.EdgeGateway`."""

    #: Server-side park time for an empty long-poll before it returns 204.
    long_poll_timeout: float = 60.0
    #: Modeled body bytes of one ``/edge/poll`` request (topic + cursor).
    poll_request_bytes: float = 96.0
    #: Modeled body bytes per event in a poll response.
    event_bytes: float = 140.0
    #: Entries retained per topic in the replay ring.
    replay_capacity: int = 4096
    #: Heap retained per parked client connection (socket buffers + parked
    #: request state); multiplied by the poll's cohort weight.
    parked_heap_bytes: float = 9216.0
    #: Fraction of the gateway heap parked connections may occupy before
    #: new polls are shed with 503.
    shed_heap_fraction: float = 0.85
    #: Cap on events returned by a single poll response.
    max_events_per_poll: int = 64
    #: Base + jitter for the 503 Retry-After hint (seconds).
    retry_after: float = 1.0
    retry_after_jitter: float = 2.0
    #: Failover catch-up overlap: a client that switches gateways asks for
    #: everything created since ``last_created - catch_up_margin`` and
    #: deduplicates the overlap client-side.
    catch_up_margin: float = 1.0
    #: Gateway JVM heap.
    heap_bytes: float = 1024 * MiB
    #: CPU charged on the gateway per event written into a response, and
    #: per poll request handled.
    cpu_per_event: float = 20e-6
    cpu_per_poll: float = 30e-6

    def cache_key(self) -> tuple:
        return (
            self.long_poll_timeout,
            self.poll_request_bytes,
            self.event_bytes,
            self.replay_capacity,
            self.parked_heap_bytes,
            self.shed_heap_fraction,
            self.max_events_per_poll,
            self.retry_after,
            self.retry_after_jitter,
            self.catch_up_margin,
            self.heap_bytes,
            self.cpu_per_event,
            self.cpu_per_poll,
        )
