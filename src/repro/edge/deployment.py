"""Edge-tier deployment: gateways on their own cluster nodes.

The gateway tier fronts whichever middleware deployment the experiment
built; this module only owns the tier shape — one gateway per ``gw<i>``
node, all serving the same topic set on the same port — plus the address
book clients poll and the fault-injection attachment surface (gateways
duck-type brokers, so ``FaultScheduler.attach(brokers=tier.gateways)``
arms ``broker_crash`` windows against them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.edge.config import EdgeConfig
from repro.edge.gateway import EDGE_PORT, EdgeGateway

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


def gateway_node_names(n_gateways: int) -> tuple[str, ...]:
    """Cluster node names the tier expects (``gw0`` .. ``gw<n-1>``)."""
    return tuple(f"gw{i}" for i in range(n_gateways))


class EdgeTier:
    """All gateways of one run, plus their client-facing address book."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: Any,
        transport: Any,
        upstream: Any,
        n_gateways: int,
        topics: tuple[str, ...],
        config: Optional[EdgeConfig] = None,
        port: int = EDGE_PORT,
    ):
        self.sim = sim
        self.config = config or EdgeConfig()
        self.gateways = [
            EdgeGateway(
                sim,
                cluster.node(name),
                f"edge-{name}",
                upstream,
                topics,
                config=self.config,
                port=port,
                transport=transport,
            )
            for name in gateway_node_names(n_gateways)
        ]
        self.port = port

    def start(self) -> None:
        for gateway in self.gateways:
            gateway.start()

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return [(gateway.node.name, gateway.port) for gateway in self.gateways]

    def total_upstream_connections(self) -> int:
        return sum(gateway.upstream_connections for gateway in self.gateways)

    def total_parked_weight(self) -> float:
        return sum(gateway.parked_weight for gateway in self.gateways)
