"""repro.edge — long-poll gateway tier in front of the brokers.

Millions of grid operators don't speak JMS: in production they sit behind
an HTTP front door (R-GMA itself is servlet-shaped, arXiv cs/0308024).
This package models that tier: :class:`EdgeGateway` processes accept huge
client populations over :mod:`repro.transport.http`, park 60 s long-poll
requests per subscription, and multiplex them onto a *small* pool of
upstream broker connections — one pooled subscription per distinct topic
per gateway, à la pgbouncer, reusing the covering-subscription idea from
:mod:`repro.federation.routing`.  Missed windows replay from a per-topic
:class:`ReplayRing`, so a client whose poll timed out or whose gateway
crashed re-polls with a cursor and catches up exactly once.
"""

from repro.edge.client import EdgeClient, EdgeClientStats
from repro.edge.config import EdgeConfig
from repro.edge.gateway import EdgeGateway
from repro.edge.replay import ReplayRing
from repro.edge.upstream import (
    NaradaUpstream,
    PlogUpstream,
    RgmaUpstream,
    record_of,
)

__all__ = [
    "EdgeClient",
    "EdgeClientStats",
    "EdgeConfig",
    "EdgeGateway",
    "NaradaUpstream",
    "PlogUpstream",
    "RgmaUpstream",
    "record_of",
]
