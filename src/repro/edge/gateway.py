"""The edge gateway: park long-polls, pool upstream subscriptions.

One :class:`EdgeGateway` is an HTTP front door on its own cluster node: it
accepts ``/edge/poll`` requests from a huge client population, parks them
(up to ``long_poll_timeout``) until the pooled upstream subscription
delivers an event for the requested topic, and answers each poll from the
per-topic :class:`~repro.edge.replay.ReplayRing` so reconnecting clients
catch up on the window they missed.

Resource budgets are real: every parked client *connection* holds
``parked_heap_bytes × weight`` on the gateway JVM for as long as its
keep-alive socket lives (a poll can stand for a cohort of ``weight`` real
clients, which is how million-client populations stay simulable), and
polls arriving above the shed watermark are refused with 503 + a jittered
Retry-After — the standard overload story for a long-poll tier.

The gateway duck-types the fault injector's broker surface (``name`` /
``alive`` / ``jvm`` / ``node`` / ``crash()`` / ``restart()``), so
``broker_crash`` fault plans can kill and revive gateways: a crash severs
every parked connection and discards the rings; a restart is a *fresh
incarnation* — new ring epoch, new upstream session — and clients recover
via time-cursor catch-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.edge.config import EdgeConfig
from repro.edge.replay import ReplayEvent, ReplayRing
from repro.edge.upstream import record_of
from repro.telemetry.context import current as _telemetry
from repro.transport.base import Channel, TransportError
from repro.transport.http import HttpRequest, HttpServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

EDGE_PORT = 7070


@dataclass
class GatewayStats:
    polls_received: int = 0
    #: Cumulative polls that parked (the plog ``long_polls_parked`` twin).
    long_polls_parked: int = 0
    polls_timed_out: int = 0
    polls_shed: int = 0
    polls_refused: int = 0
    catch_up_polls: int = 0
    truncated_reads: int = 0
    events_in: int = 0
    events_out: int = 0


@dataclass
class _Waiter:
    topic: str
    cursor: int
    weight: float
    parked_at: float
    respond: Any = field(repr=False, default=None)
    active: bool = True


class EdgeGateway:
    """One long-poll gateway process on one cluster node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        upstream: Any,
        topics: tuple[str, ...],
        config: Optional[EdgeConfig] = None,
        port: int = EDGE_PORT,
        transport: Any = None,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.upstream = upstream
        self.topics = tuple(topics)
        self.config = config or EdgeConfig()
        self.port = port
        self.transport = transport
        self.jvm = Jvm(sim, node, f"{name}.jvm", heap_bytes=self.config.heap_bytes)
        self.alive = False
        self.incarnation = 0
        self.stats = GatewayStats()
        self._server: Optional[HttpServer] = None
        self._session: Any = None
        self._rings: dict[str, ReplayRing] = {}
        self._waiters: dict[str, list[_Waiter]] = {}
        self._channels: set[Channel] = set()
        #: Heap retained per client connection (allocated on its *first*
        #: parked poll, freed when the connection dies) — connection state
        #: lives as long as the keep-alive socket, not per poll, so steady
        #: parking causes no allocation churn (no GC pressure), while many
        #: distinct connections still fill the heap and trigger shedding.
        self._conn_heap: dict[Channel, float] = {}
        self._parked_weight = 0.0
        self._parked_polls = 0

    # ---------------------------------------------------------------- startup
    def start(self) -> None:
        """Begin serving; run once after construction (and per restart)."""
        self.sim.process(self._start(), name=f"{self.name}.start")

    def _start(self) -> Generator[Any, Any, None]:
        self.alive = True
        epoch = f"{self.name}#{self.incarnation}"
        self._rings = {
            topic: ReplayRing(topic, self.config.replay_capacity, epoch)
            for topic in self.topics
        }
        self._waiters = {topic: [] for topic in self.topics}
        self._server = HttpServer(
            self.sim,
            self.transport,
            self.node,
            self.port,
            self._dispatch,
            accept_hook=self._accept,
        )
        self._session = self.upstream.open(
            self.node, f"edge.{self.name}.{self.incarnation}"
        )
        for topic in self.topics:
            yield from self._session.subscribe(topic, self._on_upstream)
        self.sim.process(self._reaper(self.incarnation), name=f"{self.name}.reaper")
        self._update_gauges()

    def _reaper(self, incarnation: int) -> Generator[Any, Any, None]:
        """Release connection heap for sockets the peer has closed."""
        while self.alive and incarnation == self.incarnation:
            yield self.sim.timeout(1.0)
            dead = [ch for ch in self._conn_heap if ch.closed]
            for channel in dead:
                nbytes = self._conn_heap.pop(channel)
                if not self.jvm.dead:
                    self.jvm.free(nbytes)
                self._channels.discard(channel)

    def _accept(self, channel: Channel) -> None:
        if not self.alive:
            raise TransportError(f"{self.name} is down")
        self._channels.add(channel)

    # ------------------------------------------------------- upstream ingest
    @property
    def upstream_connections(self) -> int:
        """Current pooled connections to the middleware tier — the number
        the scaling experiment shows is O(topics), not O(clients)."""
        return self._session.connections if self._session is not None else 0

    def _on_upstream(self, topic: str, payload: Any, nbytes: float) -> None:
        if not self.alive:
            return
        ring = self._rings.get(topic)
        if ring is None:
            return
        self.stats.events_in += 1
        now = self.sim.now
        record = record_of(payload)
        created = record.t_before_send if record is not None else now
        tel = _telemetry()
        if tel is not None and record is not None:
            tel.mark(record, "edge_in", now, "edge", self.name)
        ring.append(payload, nbytes, now, created)
        waiters = self._waiters.get(topic)
        if not waiters:
            return
        self._waiters[topic] = []
        for waiter in waiters:
            self._unpark(waiter)
            self.sim.process(
                self._wake(waiter, ring), name=f"{self.name}.wake"
            )
        self._update_gauges()

    def _wake(self, waiter: _Waiter, ring: ReplayRing) -> Generator[Any, Any, None]:
        events, next_cursor, truncated = ring.read(
            waiter.cursor, self.config.max_events_per_poll
        )
        if truncated:
            self.stats.truncated_reads += 1
        yield from self._emit(waiter.respond, ring, events, next_cursor, waiter.parked_at)

    # --------------------------------------------------------- poll handling
    def _dispatch(self, request: HttpRequest, respond: Any) -> None:
        self.sim.process(self._handle(request, respond), name=f"{self.name}.poll")

    def _handle(self, request: HttpRequest, respond: Any) -> Generator[Any, Any, None]:
        if not self.alive:
            return
        yield from self.node.execute(self.config.cpu_per_poll)
        self.stats.polls_received += 1
        body = request.body or {}
        topic = body.get("topic")
        ring = self._rings.get(topic)
        if ring is None:
            self.stats.polls_refused += 1
            respond(404, {"error": f"unknown topic {topic!r}"}, 40.0)
            return

        weight = float(body.get("weight", 1.0))
        cursor = body.get("cursor")
        catch_up_from = body.get("catch_up_from")
        parked_at = self.sim.now

        events: list[ReplayEvent] = []
        if cursor is not None and cursor[0] == ring.epoch:
            events, next_cursor, truncated = ring.read(
                cursor[1], self.config.max_events_per_poll
            )
            if truncated:
                self.stats.truncated_reads += 1
        elif catch_up_from is not None:
            # Foreign or stale cursor: replay by created-time, overlapping
            # by the skew margin; the client deduplicates the overlap.
            self.stats.catch_up_polls += 1
            events, next_cursor = ring.read_since_created(
                catch_up_from - self.config.catch_up_margin,
                self.config.max_events_per_poll,
            )
        else:
            next_cursor = ring.end_seq

        if events:
            yield from self._emit(respond, ring, events, next_cursor, parked_at)
            return

        # Nothing pending: park the poll (or shed it under memory pressure).
        # Connection state is allocated once per client socket, on its
        # first park; re-parks on a keep-alive connection cost nothing.
        if request.channel not in self._conn_heap:
            heap = self.config.parked_heap_bytes * weight
            watermark = self.config.shed_heap_fraction * self.jvm.heap_bytes
            if self.jvm.dead or self.jvm.heap_used + heap > watermark:
                self._shed(respond)
                return
            try:
                self.jvm.alloc(heap, "parked long-poll connection")
            except OutOfMemoryError:
                self._shed(respond)
                return
            self._conn_heap[request.channel] = heap
        waiter = _Waiter(
            topic=topic,
            cursor=next_cursor,
            weight=weight,
            parked_at=parked_at,
            respond=respond,
        )
        self._waiters[topic].append(waiter)
        self.stats.long_polls_parked += 1
        self._parked_weight += weight
        self._parked_polls += 1
        incarnation = self.incarnation
        self.sim.call_at(
            self.sim.now + self.config.long_poll_timeout,
            lambda: self._expire(waiter, incarnation),
        )
        tel = _telemetry()
        if tel is not None:
            tel.metrics.counter("edge", self.name, "long_polls_parked").inc()
        self._update_gauges()

    def _emit(
        self,
        respond: Any,
        ring: ReplayRing,
        events: list[ReplayEvent],
        next_cursor: int,
        parked_at: float,
    ) -> Generator[Any, Any, None]:
        yield from self.node.execute(self.config.cpu_per_event * len(events))
        if not self.alive:
            return
        now = self.sim.now
        tel = _telemetry()
        if tel is not None:
            for event in events:
                record = record_of(event.payload)
                if record is not None:
                    tel.mark(record, "parked", parked_at, "edge", self.name)
                    tel.mark(record, "edge_out", now, "edge", self.name)
        self.stats.events_out += len(events)
        respond(
            200,
            {
                "events": [event.payload for event in events],
                "cursor": (ring.epoch, next_cursor),
            },
            self.config.event_bytes * len(events),
        )

    def _shed(self, respond: Any) -> None:
        self.stats.polls_shed += 1
        retry_after = self.config.retry_after + self.sim.rng.uniform(
            f"edge.{self.name}.retry_after", 0.0, self.config.retry_after_jitter
        )
        respond(503, {"retry_after": retry_after}, 24.0)

    def _expire(self, waiter: _Waiter, incarnation: int) -> None:
        if not waiter.active or not self.alive or incarnation != self.incarnation:
            return
        ring = self._rings.get(waiter.topic)
        self._waiters[waiter.topic].remove(waiter)
        self._unpark(waiter)
        self.stats.polls_timed_out += 1
        cursor = (ring.epoch, ring.end_seq) if ring is not None else None
        waiter.respond(204, {"cursor": cursor}, 16.0)
        self._update_gauges()

    def _unpark(self, waiter: _Waiter) -> None:
        waiter.active = False
        self._parked_weight -= waiter.weight
        self._parked_polls -= 1

    # -------------------------------------------------------------- telemetry
    @property
    def parked_weight(self) -> float:
        """Clients (cohort-weighted) currently parked on this gateway."""
        return self._parked_weight

    def _update_gauges(self) -> None:
        tel = _telemetry()
        if tel is None:
            return
        tel.metrics.gauge("edge", self.name, "parked_connections").set(
            self._parked_weight
        )
        tel.metrics.gauge("edge", self.name, "parked_polls").set(self._parked_polls)
        tel.metrics.gauge("edge", self.name, "upstream_connections").set(
            self.upstream_connections
        )

    # ------------------------------------------------------------ fault hooks
    def crash(self) -> None:
        """Kill the gateway process: sever parked polls, lose the rings."""
        if not self.alive:
            return
        self.alive = False
        if self._server is not None:
            self._server.close()
            self._server = None
        for channel in self._channels:
            if not channel.closed:
                channel.close()
        self._channels.clear()
        if self._session is not None:
            self._session.close()
            self._session = None
        for waiters in self._waiters.values():
            for waiter in waiters:
                waiter.active = False
        self._waiters = {}
        self._rings = {}
        if not self.jvm.dead:
            self.jvm.free(sum(self._conn_heap.values()))
        self._conn_heap = {}
        self._parked_weight = 0.0
        self._parked_polls = 0
        self._update_gauges()

    def restart(self) -> None:
        """Bring up a fresh incarnation (new ring epoch, new upstream)."""
        if self.alive:
            return
        self.incarnation += 1
        self.start()
