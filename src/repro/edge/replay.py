"""Per-topic replay ring: the gateway's catch-up window.

Every upstream event lands in a bounded ring and gets a monotonically
increasing sequence number.  A long-poll carries a cursor ``(epoch, seq)``:
``seq`` is the next ring sequence the client has not seen, ``epoch``
identifies the gateway incarnation that issued it (a restarted or different
gateway starts a fresh ring, so foreign cursors are meaningless there and
the client falls back to a *time* cursor — everything created since its
last delivered event, minus a skew margin).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class ReplayEvent:
    """One retained upstream event."""

    seq: int
    payload: Any
    nbytes: float
    #: Sim time the event entered the gateway.
    t_in: float
    #: Sim time the originating record was created (global clock — the
    #: portable cursor for cross-gateway failover catch-up).
    created: float


class ReplayRing:
    """Bounded per-topic event history with cursor and time reads."""

    def __init__(self, topic: str, capacity: int, epoch: str):
        self.topic = topic
        self.capacity = capacity
        #: Identifies the gateway incarnation that owns this ring.
        self.epoch = epoch
        self._events: deque[ReplayEvent] = deque()
        self._next_seq = 0
        self.appended = 0
        self.evicted = 0

    # ------------------------------------------------------------------ write
    def append(self, payload: Any, nbytes: float, t_in: float, created: float) -> ReplayEvent:
        event = ReplayEvent(self._next_seq, payload, nbytes, t_in, created)
        self._next_seq += 1
        self._events.append(event)
        self.appended += 1
        if len(self._events) > self.capacity:
            self._events.popleft()
            self.evicted += 1
        return event

    # ------------------------------------------------------------------- read
    @property
    def end_seq(self) -> int:
        """The cursor a fully caught-up client holds."""
        return self._next_seq

    @property
    def oldest_seq(self) -> Optional[int]:
        return self._events[0].seq if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    def read(
        self, cursor: int, limit: Optional[int] = None
    ) -> tuple[list[ReplayEvent], int, bool]:
        """Events at/after ``cursor``; returns ``(events, next_cursor,
        truncated)``.

        ``truncated`` is True when ``cursor`` fell off the ring's tail —
        the client was away longer than the retained window, so events were
        irrecoverably missed at this gateway.
        """
        truncated = bool(self._events) and cursor < self._events[0].seq
        if not self._events and cursor < self._next_seq:
            truncated = True
        out: list[ReplayEvent] = []
        for event in self._events:
            if event.seq >= cursor:
                out.append(event)
                if limit is not None and len(out) >= limit:
                    break
        next_cursor = out[-1].seq + 1 if out else max(cursor, self._next_seq)
        return out, next_cursor, truncated

    def read_since_created(
        self,
        since: float,
        limit: Optional[int] = None,
        matches: Optional[Callable[[ReplayEvent], bool]] = None,
    ) -> tuple[list[ReplayEvent], int]:
        """Events whose originating record was created at/after ``since``.

        The failover path: a client arriving from another gateway has no
        usable ``seq`` cursor here, only the created-time of its last
        delivered event (the one clock both gateways share).  Returns the
        matching events and the ``next_cursor`` that resumes normal cursor
        reads afterwards.
        """
        out: list[ReplayEvent] = []
        for event in self._events:
            if event.created >= since and (matches is None or matches(event)):
                out.append(event)
                if limit is not None and len(out) >= limit:
                    break
        next_cursor = out[-1].seq + 1 if out else self._next_seq
        return out, next_cursor
