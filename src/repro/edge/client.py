"""Edge clients: cursor-driven long-poll consumers with failover.

One :class:`EdgeClient` process stands for a *cohort* of ``weight`` real
clients (the gateway accounts parked memory per cohort weight), which is
what makes million-client populations simulable with bounded process
counts.  Exactly one client per run is usually *stamping* — it writes
``t_arrived``/``t_received`` onto message records, so RTT percentiles come
from a real client clock while the rest of the population only exerts
load.

Recovery protocol (the reconnect-catch-up story):

* poll returns 204 after the gateway's 60 s park → re-poll with the same
  cursor; nothing can be missed, the ring holds the gap.
* request times out / connection dies / gateway refuses → fail over to the
  next gateway address with a *time* cursor (``catch_up_from`` = created
  time of the last delivered event); the new gateway replays its ring from
  that point minus a skew margin, and client-side ``(gen_id, seq)`` dedup
  makes the overlap exactly-once at the application layer.
* 503 → honour the jittered Retry-After.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.dedup import DedupIndex
from repro.edge.config import EdgeConfig
from repro.edge.upstream import record_of
from repro.telemetry.context import current as _telemetry
from repro.transport.base import ChannelClosed, TransportError
from repro.transport.http import HttpClient, HttpTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator


@dataclass
class EdgeClientStats:
    polls: int = 0
    #: Unique events delivered to the application layer.
    received: int = 0
    #: Redeliveries suppressed by the cursor-overlap dedup (expected > 0
    #: across a failover; *not* an application-level duplicate).
    redeliveries: int = 0
    #: Application-level duplicates that escaped dedup (must stay 0).
    duplicates: int = 0
    empty_polls: int = 0
    timeouts: int = 0
    sheds: int = 0
    failovers: int = 0


class EdgeClient:
    """One (possibly cohort-weighted) long-polling subscriber."""

    def __init__(
        self,
        sim: "Simulator",
        transport: Any,
        node: "Node",
        gateway_addresses: list[tuple[str, int]],
        topic: str,
        config: Optional[EdgeConfig] = None,
        name: str = "edge-client",
        home: int = 0,
        weight: float = 1.0,
        stamping: bool = False,
        middleware_label: str = "edge",
        stop_at: Optional[float] = None,
        request_grace: float = 5.0,
        failover_backoff: float = 0.5,
    ):
        self.sim = sim
        self.transport = transport
        self.node = node
        self.gateway_addresses = list(gateway_addresses)
        self.topic = topic
        self.config = config or EdgeConfig()
        self.name = name
        self.weight = weight
        self.stamping = stamping
        self.middleware_label = middleware_label
        self.stop_at = stop_at
        self.request_grace = request_grace
        self.failover_backoff = failover_backoff
        self.stats = EdgeClientStats()
        self.gateway_index = home % len(self.gateway_addresses)
        self._http: Optional[HttpClient] = None
        self._cursor: Optional[tuple[str, int]] = None
        self._last_created: float = 0.0
        self._seen = DedupIndex()

    def start(self) -> None:
        self.sim.process(self.run(), name=self.name)

    # ------------------------------------------------------------------- loop
    def run(self) -> Generator[Any, Any, None]:
        # Cover everything created from client start on: a failover before
        # the first delivery still catches up from here.
        self._last_created = self.sim.now
        while self.stop_at is None or self.sim.now < self.stop_at:
            if self._http is None:
                host, port = self.gateway_addresses[self.gateway_index]
                self._http = HttpClient(
                    self.sim, self.transport, self.node, host, port
                )
            # catch_up_from always rides along: if the cursor's epoch is
            # stale (gateway restarted under us between polls), the gateway
            # falls back to time-based replay instead of the ring tail.
            body: dict[str, Any] = {
                "topic": self.topic,
                "weight": self.weight,
                "catch_up_from": self._last_created,
            }
            if self._cursor is not None:
                body["cursor"] = self._cursor
            self.stats.polls += 1
            try:
                response = yield from self._http.request(
                    "/edge/poll",
                    body,
                    self.config.poll_request_bytes,
                    timeout=self.config.long_poll_timeout + self.request_grace,
                )
            except HttpTimeout:
                self.stats.timeouts += 1
                yield from self._failover()
                continue
            except (ChannelClosed, TransportError):
                yield from self._failover()
                continue
            if response.status == 503:
                self.stats.sheds += 1
                yield self.sim.timeout(response.body["retry_after"])
                continue
            if response.status == 204:
                self.stats.empty_polls += 1
                if response.body.get("cursor") is not None:
                    self._cursor = tuple(response.body["cursor"])
                continue
            if response.status != 200:
                yield self.sim.timeout(self.failover_backoff)
                continue
            self._cursor = tuple(response.body["cursor"])
            for payload in response.body["events"]:
                self._on_event(payload)

    def _failover(self) -> Generator[Any, Any, None]:
        """Switch to the next gateway with a time cursor."""
        self.stats.failovers += 1
        if self._http is not None:
            self._http.close()
            self._http = None
        self.gateway_index = (self.gateway_index + 1) % len(self.gateway_addresses)
        self._cursor = None  # foreign epoch — fall back to catch_up_from
        jitter = self.sim.rng.uniform(f"{self.name}.failover", 0.0, 0.25)
        yield self.sim.timeout(self.failover_backoff + jitter)

    # ------------------------------------------------------------------ sink
    def _on_event(self, payload: Any) -> None:
        record = record_of(payload)
        if record is None:
            return
        if not self._seen.mark(record.gen_id, record.seq):
            self.stats.redeliveries += 1
            return
        self.stats.received += 1
        if record.t_before_send > self._last_created:
            self._last_created = record.t_before_send
        if not self.stamping:
            return
        if record.t_received is not None:
            self.stats.duplicates += 1
            return
        record.t_arrived = self.sim.now
        record.t_received = self.sim.now
        tel = _telemetry()
        if tel is not None:
            tel.mark(
                record,
                "delivered",
                self.sim.now,
                self.middleware_label,
                self.node.name,
            )
