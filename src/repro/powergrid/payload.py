"""The paper's exact payload shapes.

Narada (§III.E): "Two integer, five float, two long, three double and four
string values were packaged in a JMS MapMessage as monitoring data."

R-GMA (§III.F): "We used four integer, eight double and four char (length
20) values, which were wrapped in an SQL statement, as monitoring data."
"""

from __future__ import annotations

from typing import Any

from repro.jms.message import MapMessage
from repro.powergrid.generator import GeneratorState


def narada_map_message(state: GeneratorState) -> MapMessage:
    """2 int + 5 float + 2 long + 3 double + 4 string, plus the ``id``
    property the paper's selector ("id<10000") filters on."""
    m = MapMessage()
    # two integers
    m.set_int("genid", state.gen_id)
    m.set_int("seq", state.seq)
    # five floats
    m.set_float("power_kw", state.power_kw)
    m.set_float("voltage_v", state.voltage_v)
    m.set_float("frequency_hz", state.frequency_hz)
    m.set_float("reactive_kvar", round(state.power_kw * 0.18, 3))
    m.set_float("current_a", round(state.power_kw * 1.4, 3))
    # two longs
    m.set_long("sample_time_ms", int(state.time * 1000))
    m.set_long("uptime_ms", int(state.time * 1000) + state.gen_id)
    # three doubles
    m.set_double("energy_kwh", state.power_kw * state.time / 3600.0)
    m.set_double("setpoint_kw", state.power_kw)
    m.set_double("efficiency", 0.93)
    # four strings
    m.set_string("site", state.site[:20])
    m.set_string("status", "ON" if state.breaker_closed else "TRIPPED")
    m.set_string("model", "WT-50kW-mk2")
    m.set_string("operator", "grid-op-uk")
    # Selector property (paper: subscribed with "id<10000").
    m.set_property("id", state.gen_id)
    return m


def rgma_row(state: GeneratorState) -> dict[str, Any]:
    """4 integer + 8 double + 4 char(20) columns of the ``gridmon`` table."""
    return {
        # four integers
        "genid": state.gen_id,
        "ival1": state.seq,
        "ival2": int(state.breaker_closed),
        "ival3": int(state.time),
        # eight doubles
        "dval1": state.power_kw,
        "dval2": state.voltage_v,
        "dval3": state.frequency_hz,
        "dval4": round(state.power_kw * 0.18, 3),
        "dval5": round(state.power_kw * 1.4, 3),
        "dval6": state.power_kw * state.time / 3600.0,
        "dval7": state.power_kw,
        "dval8": 0.93,
        # four char(20)
        "sval1": state.site[:20],
        "sval2": ("ON" if state.breaker_closed else "TRIPPED")[:20],
        "sval3": "WT-50kW-mk2",
        "sval4": "grid-op-uk",
    }
