"""Counter-based deterministic noise for vectorized cohorts.

Sequential RNG streams (``numpy.random.Generator``) tie a draw's value to
*when* it is made — vectorizing a cohort would change every downstream
value.  The fleet engine instead keys every draw by **what it is for**:
``(seed, gen_id, seq, field)`` hashes through a splitmix64-style mixer to a
uniform, so a draw's value depends only on its coordinates.  The same
functions evaluate one generator (length-1 arrays, the zoomed per-process
path) or a whole cohort (the aggregate path) through identical numpy ops —
which is what makes aggregate and zoomed runs agree bit-for-bit, the
exactness contract ``tests/powergrid/test_fleet_engine.py`` asserts.

Normals come from Box-Muller over two derived uniforms (``log1p(-u)`` keeps
``u = 0`` finite); exponentials from inversion.  All helpers accept scalars
or arrays and return ``float64`` numpy arrays of the broadcast shape.
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Field tags namespacing the independent draws one message needs.  A
#: logical field owns two raw slots (``field`` and ``field + _SECOND``) so
#: Box-Muller pairs never collide with a neighbouring field.
FIELD_INIT = 1      # initial power level (one per generator)
FIELD_WARMUP = 2    # warm-up sleep (one per generator)
FIELD_POWER = 3     # OU power innovation (per message)
FIELD_TRIP = 4      # breaker trip / reclose draw (per message)
FIELD_VOLT = 5      # voltage noise (per message)
FIELD_FREQ = 6      # frequency noise (per message)
FIELD_SERVICE = 7   # service-latency jitter (per message)
FIELD_LOSS = 8      # fault-window loss draw (per message)
FIELD_DUP = 9       # duplicate-on-retransmit draw (per message)

_SECOND = np.uint64(1) << np.uint64(32)

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_INV_2_53 = 1.0 / float(1 << 53)


def _splitmix(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def _hash(seed: int, gen_ids: Any, seqs: Any, field: Any) -> np.ndarray:
    g = np.asarray(gen_ids, dtype=np.uint64)
    s = np.asarray(seqs, dtype=np.uint64)
    f = np.asarray(field, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = _splitmix(g ^ (np.uint64(seed) * _GOLDEN))
        x = _splitmix(x ^ (s * _GOLDEN))
        return _splitmix(x ^ f)


def u01(seed: int, gen_ids: Any, seqs: Any, field: Any) -> np.ndarray:
    """Uniform in ``[0, 1)``, a pure function of ``(seed, gen, seq, field)``."""
    return (_hash(seed, gen_ids, seqs, field) >> np.uint64(11)) * _INV_2_53


def normal(seed: int, gen_ids: Any, seqs: Any, field: int) -> np.ndarray:
    """Standard normal via Box-Muller over two derived uniforms."""
    u1 = u01(seed, gen_ids, seqs, np.uint64(field))
    u2 = u01(seed, gen_ids, seqs, np.uint64(field) + _SECOND)
    return np.sqrt(-2.0 * np.log1p(-u1)) * np.cos(2.0 * np.pi * u2)


def exponential(
    seed: int, gen_ids: Any, seqs: Any, field: int, mean: float
) -> np.ndarray:
    """Exponential of the given mean, by inversion."""
    return -mean * np.log1p(-u01(seed, gen_ids, seqs, field))


def uniform(
    seed: int, gen_ids: Any, seqs: Any, field: int, lo: float, hi: float
) -> np.ndarray:
    """Uniform in ``[lo, hi)``."""
    return lo + (hi - lo) * u01(seed, gen_ids, seqs, field)
