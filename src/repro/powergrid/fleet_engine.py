"""The vectorized cohort fleet engine: million-publisher sweep points.

Every existing sweep models each generator as its own sim process, so the
cost of a point grows linearly in publisher count and caps sweeps near the
paper's thousands.  This engine scales load the way hierarchical pub/sub
evaluations do — by aggregating homogeneous client populations into
batched arrival processes — while keeping an **exactness escape hatch**:

* **aggregate mode** — generators partition into :class:`CohortSpec`
  cohorts; each cohort is one :class:`repro.sim.CohortProcess` whose tick
  (a single heap entry) emits the whole cohort's readings for the next
  publish interval as array ops: OU power dynamics, breaker trips, voltage
  sag, payload stamping, service latency, fault-window loss/duplicate
  draws, all vectorized over the cohort;
* **process mode / zoom** — the same generators as real sim processes,
  one :func:`rate_sleep` timeout per message, stepping the same
  :class:`~repro.powergrid.cohort.CohortDynamics` on length-1 arrays.

Both modes draw every random quantity from :mod:`repro.powergrid.noise`
(counter-based, keyed ``(seed, gen_id, seq, field)``) and share every float
expression — publish timestamps via
:func:`~repro.powergrid.cohort.advance_interval` mirroring
:func:`~repro.powergrid.rates.rate_sleep`, dynamics via
:class:`CohortDynamics`, delivery via one service model — so an aggregate
cohort and its zoomed per-process twin produce **identical** message sets:
same timestamps, same payload bytes, same latencies, same loss/duplicate
decisions.  :func:`verify_agreement` asserts exactly that.

Delivery is an analytic per-middleware service model (base + payload +
load terms with counter-keyed jitter), calibrated to the paper's measured
scales: Narada ~1.5 ms at-most-once, R-GMA ~0.9 s with retry-on-loss,
plog ~4 ms at-least-once (retransmissions can duplicate).  ``packet_loss``
windows of a :class:`repro.faults.FaultPlan` drive the loss draws against
message timestamps; other fault kinds are ignored by this closed model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.faults import PLANS
from repro.powergrid import noise
from repro.powergrid.cohort import (
    CohortDynamics,
    CohortSpec,
    advance_interval,
    warmup_times,
)
from repro.powergrid.rates import RateSchedule, rate_sleep
from repro.sim import CohortProcess, Simulator
from repro.telemetry import context as tel_context

#: Middlewares the engine models.
FLEET_MIDDLEWARES = ("narada", "rgma", "plog")

#: Default cohort width: wide enough that per-tick numpy fixed costs
#: amortize, small enough that a 10^6-publisher point stays cache-friendly.
DEFAULT_COHORT_SIZE = 8192

#: Aggregate points cap the per-generator publishing phase so a
#: 10^6-publisher point at ``full`` scale stays within laptop memory
#: (message buffers grow linearly in duration x publishers).
DURATION_CAP = 90.0


@dataclass(frozen=True)
class ServiceModel:
    """Analytic delivery model for one middleware."""

    name: str
    base_s: float
    per_byte_s: float
    per_publisher_s: float
    jitter_mean_s: float
    #: "at_most_once" drops on loss; "retry" redelivers late; and
    #: "at_least_once" redelivers late and may duplicate.
    delivery: str
    retry_penalty_s: float = 0.0

    def cache_key(self) -> tuple:
        return (
            self.name,
            self.base_s,
            self.per_byte_s,
            self.per_publisher_s,
            self.jitter_mean_s,
            self.delivery,
            self.retry_penalty_s,
        )


SERVICE_MODELS: dict[str, ServiceModel] = {
    "narada": ServiceModel(
        "narada", 1.5e-3, 2.0e-8, 2.0e-9, 5.0e-4, "at_most_once"
    ),
    "rgma": ServiceModel(
        "rgma", 0.9, 1.0e-7, 4.0e-8, 0.08, "retry", retry_penalty_s=1.0
    ),
    "plog": ServiceModel(
        "plog", 4.0e-3, 3.0e-8, 4.0e-9, 1.2e-3, "at_least_once",
        retry_penalty_s=0.05,
    ),
}

#: Fixed payload framing per middleware (map message / tuple row / record),
#: plus the breaker-status string ("ON" vs "TRIPPED") per message.
_PAYLOAD_BASE = {"narada": 230, "rgma": 180, "plog": 120}


@dataclass(frozen=True)
class FleetRunParams:
    """Timeline shape of one fleet point (a pure function of scale and n)."""

    n_publishers: int
    publish_interval: float
    creation_interval: float
    warmup_lo: float
    warmup_hi: float
    duration: float

    @classmethod
    def from_scale(cls, scale: Any, n_publishers: int) -> "FleetRunParams":
        """The paper's workload shape, ramp-compressed for huge fleets.

        The creation stagger shrinks so the whole fleet is born within one
        publishing duration — a million generators at the paper's 0.5 s
        stagger would spend days just ramping.
        """
        duration = min(scale.duration, DURATION_CAP)
        creation = min(
            scale.creation_interval_narada, duration / n_publishers
        )
        return cls(
            n_publishers=n_publishers,
            publish_interval=10.0,
            creation_interval=creation,
            warmup_lo=scale.warmup[0],
            warmup_hi=scale.warmup[1],
            duration=duration,
        )

    def cache_key(self) -> tuple:
        return (
            self.n_publishers,
            self.publish_interval,
            self.creation_interval,
            self.warmup_lo,
            self.warmup_hi,
            self.duration,
        )


@dataclass(frozen=True)
class FleetOutcome:
    """Compact result of one fleet point (no per-message arrays)."""

    middleware: str
    mode: str
    n_publishers: int
    cohort_size: int
    published: int
    delivered: int
    lost: int
    duplicates: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    sim_span_s: float
    events_scheduled: int
    ticks: int
    wall_s: float

    @property
    def events_per_s(self) -> float:
        return self.published / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def wall_per_publisher_s(self) -> float:
        return self.wall_s / self.n_publishers


def payload_bytes(
    middleware: str, breaker_closed: np.ndarray, payload_multiplier: int = 1
) -> np.ndarray:
    """Message size: framing plus the status string, as an int array."""
    status = np.where(breaker_closed, 2, 7)  # "ON" / "TRIPPED"
    return (_PAYLOAD_BASE[middleware] + status) * payload_multiplier


def loss_windows_of(plan: Any) -> tuple[tuple[float, float, float], ...]:
    """The ``packet_loss`` windows of a fault plan as (at, until, p)."""
    if plan is None:
        return ()
    return tuple(
        (s.at, s.until, s.param("probability", 0.0))
        for s in plan
        if s.kind == "packet_loss"
    )


class _DeliverySink:
    """Accumulates delivery stats; identical math for both modes."""

    def __init__(
        self,
        middleware: str,
        seed: int,
        n_publishers: int,
        loss_windows: tuple[tuple[float, float, float], ...],
        payload_multiplier: int = 1,
    ):
        self.model = SERVICE_MODELS[middleware]
        self.middleware = middleware
        self.seed = seed
        self.n_publishers = n_publishers
        self.loss_windows = loss_windows
        self.payload_multiplier = payload_multiplier
        self.published = 0
        self.lost = 0
        self.duplicates = 0
        self._latencies: list[np.ndarray] = []
        tel = tel_context.current()
        self._hist = (
            tel.metrics.histogram(middleware, "fleet", "delivery_ms")
            if tel is not None
            else None
        )

    def emit(
        self,
        gen_ids: np.ndarray,
        seqs: np.ndarray,
        times: np.ndarray,
        reading: dict[str, np.ndarray],
        batched: bool,
    ) -> None:
        model = self.model
        nbytes = payload_bytes(
            self.middleware, reading["breaker_closed"], self.payload_multiplier
        )
        lat = (
            model.base_s
            + model.per_byte_s * nbytes
            + model.per_publisher_s * self.n_publishers
            + noise.exponential(
                self.seed, gen_ids, seqs, noise.FIELD_SERVICE,
                model.jitter_mean_s,
            )
        )
        lost = np.zeros(times.shape, dtype=bool)
        dup = np.zeros(times.shape, dtype=bool)
        if self.loss_windows:
            u = noise.u01(self.seed, gen_ids, seqs, noise.FIELD_LOSS)
            hit = np.zeros(times.shape, dtype=bool)
            for at, until, p in self.loss_windows:
                hit |= (times >= at) & (times < until) & (u < p)
            if model.delivery == "at_most_once":
                lost = hit
            elif model.delivery == "retry":
                lat = np.where(hit, lat + model.retry_penalty_s, lat)
            else:  # at_least_once
                lat = np.where(hit, lat + model.retry_penalty_s, lat)
                dup = hit & (
                    noise.u01(self.seed, gen_ids, seqs, noise.FIELD_DUP) < 0.5
                )
        self.published += int(times.size)
        self.lost += int(lost.sum())
        self.duplicates += int(dup.sum())
        delivered = lat[~lost]
        if delivered.size:
            self._latencies.append(delivered)
        if self._hist is not None and delivered.size:
            if batched:
                self._hist.add_many(delivered * 1e3)
            else:
                for x in delivered:
                    self._hist.observe(float(x) * 1e3)

    def summarise(
        self,
        mode: str,
        n_publishers: int,
        cohort_size: int,
        sim: Simulator,
        ticks: int,
        wall_s: float,
    ) -> FleetOutcome:
        if self._latencies:
            lat = np.sort(np.concatenate(self._latencies))
        else:
            lat = np.zeros(0)
        if lat.size:
            p50, p95, p99 = (
                float(np.quantile(lat, q) * 1e3) for q in (0.50, 0.95, 0.99)
            )
            mean = float(lat.sum() / lat.size * 1e3)
            peak = float(lat[-1] * 1e3)
        else:
            p50 = p95 = p99 = mean = peak = float("nan")
        return FleetOutcome(
            middleware=self.middleware,
            mode=mode,
            n_publishers=n_publishers,
            cohort_size=cohort_size,
            published=self.published,
            delivered=self.published - self.lost,
            lost=self.lost,
            duplicates=self.duplicates,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            mean_ms=mean,
            max_ms=peak,
            sim_span_s=sim.now,
            events_scheduled=sim.events_scheduled,
            ticks=ticks,
            wall_s=wall_s,
        )


class _CohortEngine:
    """One aggregate cohort: a single batch tick per publish interval."""

    def __init__(
        self,
        sim: Simulator,
        seed: int,
        spec: CohortSpec,
        params: FleetRunParams,
        schedule: Optional[RateSchedule],
        sink: _DeliverySink,
    ):
        self.params = params
        self.schedule = schedule
        self.sink = sink
        self.dynamics = CohortDynamics(seed, spec)
        self.ids = spec.gen_ids()
        births = self.ids * params.creation_interval
        start = births + warmup_times(
            seed, self.ids, params.warmup_lo, params.warmup_hi
        )
        self.stop = start + params.duration
        self.next_pub = start.copy()
        self.seq = np.zeros(self.ids.shape, dtype=np.int64)
        self.power = self.dynamics.initial_power(self.ids)
        self.closed = np.ones(self.ids.shape, dtype=bool)
        self.process = CohortProcess(
            sim, self.on_tick, at=float(start.min())
        )

    def on_tick(self, now: float) -> Optional[float]:
        """Emit every message due before ``now + publish_interval``.

        Message timestamps come straight from the per-generator wake-time
        arrays (exact floats), so the tick cadence affects only how many
        heap entries the kernel sees — never the emitted record.  Inner
        rounds handle rate multipliers > 1 (several publishes per
        generator inside one window).
        """
        horizon = now + self.params.publish_interval
        while True:
            due = self.next_pub < horizon
            if not due.any():
                break
            t = self.next_pub[due]
            ids = self.ids[due]
            seqs = self.seq[due] + 1
            self.seq[due] = seqs
            power, closed, reading = self.dynamics.step(
                ids, seqs, self.power[due], self.closed[due]
            )
            self.power[due] = power
            self.closed[due] = closed
            self.sink.emit(ids, seqs, t, reading, batched=True)
            stop = self.stop[due]
            nxt = advance_interval(
                self.schedule, ids, t, self.params.publish_interval, stop
            )
            alive = (nxt < stop) & (nxt > t)
            self.next_pub[due] = np.where(alive, nxt, np.inf)
        pending = self.next_pub[np.isfinite(self.next_pub)]
        if pending.size == 0:
            return None
        return float(pending.min())


def _gen_process(
    sim: Simulator,
    seed: int,
    gen_id: int,
    spec: CohortSpec,
    params: FleetRunParams,
    schedule: Optional[RateSchedule],
    sink: _DeliverySink,
    stop: float,
) -> Generator[Any, Any, None]:
    """One zoomed generator: a real sim process, one timeout per message.

    Steps the same :class:`CohortDynamics` on length-1 arrays and sleeps
    through the real :func:`rate_sleep`, so its trajectory is bit-identical
    to the aggregate path's row for this ``gen_id``.
    """
    dynamics = CohortDynamics(seed, spec)
    ids = np.array([gen_id], dtype=np.int64)
    power = dynamics.initial_power(ids)
    closed = np.ones(1, dtype=bool)
    seq = 0
    while True:
        t = sim.now
        seq += 1
        seqs = np.array([seq], dtype=np.int64)
        power, closed, reading = dynamics.step(ids, seqs, power, closed)
        sink.emit(ids, seqs, np.array([t]), reading, batched=False)
        yield from rate_sleep(
            sim, schedule, gen_id, params.publish_interval, stop
        )
        if not (sim.now < stop and sim.now > t):
            return


def _cohort_ranges(
    n: int, cohort_size: int, zoom: Optional[tuple[int, int]]
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Partition ``[0, n)`` into aggregate ranges and zoomed ranges."""
    zoom_ranges: list[tuple[int, int]] = []
    if zoom is not None:
        lo, hi = zoom
        if not (0 <= lo < hi <= n):
            raise ValueError(f"zoom range {zoom!r} outside [0, {n})")
        zoom_ranges.append((lo, hi))
    aggregate: list[tuple[int, int]] = []
    for chunk_lo in range(0, n, cohort_size):
        chunk_hi = min(n, chunk_lo + cohort_size)
        pieces = [(chunk_lo, chunk_hi)]
        for zlo, zhi in zoom_ranges:
            next_pieces = []
            for lo, hi in pieces:
                if zhi <= lo or zlo >= hi:
                    next_pieces.append((lo, hi))
                    continue
                if lo < zlo:
                    next_pieces.append((lo, zlo))
                if zhi < hi:
                    next_pieces.append((zhi, hi))
            pieces = next_pieces
        aggregate.extend(pieces)
    return aggregate, zoom_ranges


def run_fleet_point(
    middleware: str,
    n_publishers: int,
    scale: Any,
    seed: int = 1,
    mode: str = "aggregate",
    cohort_size: int = DEFAULT_COHORT_SIZE,
    schedule: Optional[RateSchedule] = None,
    fault_plan: Optional[str] = None,
    zoom: Optional[tuple[int, int]] = None,
    payload_multiplier: int = 1,
) -> FleetOutcome:
    """One fleet sweep point; returns its :class:`FleetOutcome`.

    ``mode="aggregate"`` runs cohorts as batched arrival processes;
    ``mode="process"`` runs every generator as its own sim process (the
    exactness reference); ``zoom=(lo, hi)`` carves that id range out of an
    aggregate run and simulates it per-process instead — the outcome must
    be identical either way (:func:`verify_agreement`).
    """
    if middleware not in SERVICE_MODELS:
        raise ValueError(
            f"unknown middleware {middleware!r}; choose from {FLEET_MIDDLEWARES}"
        )
    if mode not in ("aggregate", "process"):
        raise ValueError(f"unknown fleet mode {mode!r}")
    if zoom is not None and mode != "aggregate":
        raise ValueError("zoom only applies to aggregate mode")
    params = FleetRunParams.from_scale(scale, n_publishers)
    plan = None
    if fault_plan is not None:
        plan = PLANS[fault_plan](params.warmup_hi, params.duration)
    t0 = time.perf_counter()
    sim = Simulator(seed=seed)
    sink = _DeliverySink(
        middleware, seed, n_publishers, loss_windows_of(plan),
        payload_multiplier,
    )
    if mode == "process":
        aggregate_ranges: list[tuple[int, int]] = []
        process_ranges = [(0, n_publishers)]
    else:
        aggregate_ranges, process_ranges = _cohort_ranges(
            n_publishers, cohort_size, zoom
        )
    ticks = 0
    engines = []
    for lo, hi in aggregate_ranges:
        engines.append(
            _CohortEngine(
                sim, seed, CohortSpec(lo, hi), params, schedule, sink
            )
        )
    for lo, hi in process_ranges:
        spec = CohortSpec(lo, hi)
        ids = np.arange(lo, hi, dtype=np.int64)
        births = ids * params.creation_interval
        starts = births + warmup_times(
            seed, ids, params.warmup_lo, params.warmup_hi
        )
        for offset, gen_id in enumerate(range(lo, hi)):
            start = float(starts[offset])
            stop = start + params.duration

            def launch(
                gen_id: int = gen_id, spec: CohortSpec = spec,
                stop: float = stop,
            ) -> None:
                sim.process(
                    _gen_process(
                        sim, seed, gen_id, spec, params, schedule, sink, stop
                    )
                )

            sim.call_at(start, launch)
    sim.run()
    ticks = sum(e.process.ticks for e in engines)
    wall = time.perf_counter() - t0
    return sink.summarise(
        mode if zoom is None else "aggregate+zoom",
        n_publishers,
        cohort_size,
        sim,
        ticks,
        wall,
    )


def verify_agreement(
    a: FleetOutcome, b: FleetOutcome, rtol: float = 1e-9
) -> None:
    """Assert two fleet outcomes describe the same message record.

    Message/loss/duplicate counts must match **exactly**; the tracked
    percentiles (P50/P95/P99) within ``rtol`` (they are bit-identical in
    practice — the tolerance only allows for quantile interpolation over
    equal multisets).  Raises ``AssertionError`` with a field-by-field
    report otherwise.
    """
    problems = []
    for field_name in ("published", "delivered", "lost", "duplicates"):
        va, vb = getattr(a, field_name), getattr(b, field_name)
        if va != vb:
            problems.append(f"{field_name}: {va} != {vb}")
    for field_name in ("p50_ms", "p95_ms", "p99_ms"):
        va, vb = getattr(a, field_name), getattr(b, field_name)
        both_nan = np.isnan(va) and np.isnan(vb)
        if not both_nan and not np.isclose(va, vb, rtol=rtol, atol=0.0):
            problems.append(f"{field_name}: {va!r} !~ {vb!r}")
    if problems:
        raise AssertionError(
            f"fleet outcomes disagree ({a.mode} vs {b.mode}, "
            f"n={a.n_publishers}): " + "; ".join(problems)
        )
