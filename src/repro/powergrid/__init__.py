"""The power-grid monitoring workload.

"We have developed a Java program to simulate the activities of a large
number of distributed power generators.  It could fork into a large number
of threads.  Each thread may simulate one power generator and generate
monitoring data, such as power output and voltage.  These monitoring data
were published to the middleware periodically at a specified frequency"
(paper §III.B).  This package is that program: a generator state model, the
paper's exact payload shapes for both middlewares, fleet builders with the
paper's staggered creation and randomised warm-up, and recording receivers.
"""

from repro.powergrid.cohort import (
    CohortDynamics,
    CohortSpec,
    advance_interval,
    warmup_times,
)
from repro.powergrid.generator import GeneratorState, PowerGenerator
from repro.powergrid.payload import narada_map_message, rgma_row
from repro.powergrid.rates import RateSchedule, RateWindow, rate_sleep
from repro.powergrid.workload import (
    FleetConfig,
    NaradaFleet,
    PlogFleet,
    RgmaFleet,
)
from repro.powergrid.receiver import NaradaReceiver, PlogReceiver, RgmaReceiver

__all__ = [
    "CohortDynamics",
    "CohortSpec",
    "FleetConfig",
    "GeneratorState",
    "advance_interval",
    "warmup_times",
    "NaradaFleet",
    "NaradaReceiver",
    "PlogFleet",
    "PlogReceiver",
    "PowerGenerator",
    "RateSchedule",
    "RateWindow",
    "RgmaFleet",
    "RgmaReceiver",
    "narada_map_message",
    "rate_sleep",
    "rgma_row",
]
