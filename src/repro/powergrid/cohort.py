"""Vectorized generator-cohort dynamics and rate integration.

A homogeneous cohort — contiguous ``gen_id`` range, one capacity, one site
— evolves as arrays: the mean-reverting power process, breaker trips,
voltage sag and frequency noise of :class:`repro.powergrid.generator.
PowerGenerator` computed for the whole cohort in a handful of numpy ops.
Randomness comes from :mod:`repro.powergrid.noise` (counter-based, keyed by
``(seed, gen_id, seq, field)``), so the *same* functions evaluated over a
length-1 array reproduce one generator's trajectory bit-for-bit — the
zoom escape hatch of :mod:`repro.powergrid.fleet_engine`.

:func:`advance_interval` is the cohort-wide twin of
:func:`repro.powergrid.rates.rate_sleep`: it integrates a
:class:`~repro.powergrid.rates.RateSchedule` over one publication interval
for every generator at once, replicating ``rate_sleep``'s float operations
expression-for-expression (including ``now + (horizon - now)`` at window
boundaries and the ``_EPS`` comparisons) so a vectorized cohort and a
per-process generator wake at *identical* float timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.powergrid import noise
from repro.powergrid.rates import _EPS, RateSchedule


@dataclass(frozen=True)
class CohortSpec:
    """One homogeneous generator cohort: ``gen_lo <= gen_id < gen_hi``."""

    gen_lo: int
    gen_hi: int
    capacity_kw: float = 50.0
    site: str = "uk-site"
    trip_probability: float = 0.002

    def __post_init__(self) -> None:
        if self.gen_hi <= self.gen_lo:
            raise ValueError("cohort needs a non-empty generator range")

    @property
    def size(self) -> int:
        return self.gen_hi - self.gen_lo

    def gen_ids(self) -> np.ndarray:
        return np.arange(self.gen_lo, self.gen_hi, dtype=np.int64)

    def cache_key(self) -> tuple:
        return (
            self.gen_lo,
            self.gen_hi,
            self.capacity_kw,
            self.site,
            self.trip_probability,
        )


class CohortDynamics:
    """The :class:`PowerGenerator` state model over generator-id arrays.

    Every method accepts arrays of any shape (length-1 for the zoomed
    per-process path) and is a pure function of ``(seed, gen_id, seq)`` plus
    the carried state — no sequential RNG, no call-order dependence.
    """

    NOMINAL_VOLTAGE = 415.0
    NOMINAL_FREQUENCY = 50.0

    def __init__(self, seed: int, spec: CohortSpec):
        self.seed = seed
        self.spec = spec

    def initial_power(self, gen_ids: Any) -> np.ndarray:
        """Start between 20 % and 80 % of capacity (the generator's init)."""
        return self.spec.capacity_kw * noise.uniform(
            self.seed, gen_ids, 0, noise.FIELD_INIT, 0.2, 0.8
        )

    def step(
        self,
        gen_ids: Any,
        seqs: Any,
        power: np.ndarray,
        breaker_closed: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Advance one publish interval; returns (power', closed', reading).

        Mirrors :meth:`PowerGenerator.sample`: OU power with multiplicative
        noise, clip to capacity, one trip/reclose draw, load-coupled voltage
        sag, frequency jitter, and the same per-field rounding.
        """
        cap = self.spec.capacity_kw
        target = 0.55 * cap
        power = power + 0.15 * (target - power) + 0.06 * cap * noise.normal(
            self.seed, gen_ids, seqs, noise.FIELD_POWER
        )
        power = np.clip(power, 0.0, cap)
        u = noise.u01(self.seed, gen_ids, seqs, noise.FIELD_TRIP)
        closed = np.where(
            breaker_closed, u >= self.spec.trip_probability, u < 0.2
        )
        out = np.where(closed, power, 0.0)
        voltage = self.NOMINAL_VOLTAGE * (
            1.0
            - 0.01 * out / cap
            + 0.002 * noise.normal(self.seed, gen_ids, seqs, noise.FIELD_VOLT)
        )
        frequency = self.NOMINAL_FREQUENCY + 0.01 * noise.normal(
            self.seed, gen_ids, seqs, noise.FIELD_FREQ
        )
        reading = {
            "power_kw": np.round(out, 3),
            "voltage_v": np.round(voltage, 2),
            "frequency_hz": np.round(frequency, 3),
            "breaker_closed": closed,
        }
        return power, closed, reading


def warmup_times(
    seed: int, gen_ids: Any, warmup_lo: float, warmup_hi: float
) -> np.ndarray:
    """Per-generator warm-up sleeps in ``[lo, hi)`` (paper: 10-20 s)."""
    return noise.uniform(
        seed, gen_ids, 0, noise.FIELD_WARMUP, warmup_lo, warmup_hi
    )


def _multiplier_at(
    schedule: RateSchedule, gen_ids: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Vector twin of :meth:`RateSchedule.multiplier_at` (same window order,
    so the product accumulates through the same float multiplications)."""
    m = np.ones(t.shape)
    for w in schedule:
        mask = (
            (gen_ids >= w.gen_lo)
            & (gen_ids < w.gen_hi)
            & (t >= w.start)
            & (t < w.end)
        )
        if mask.any():
            m = np.where(mask, m * w.multiplier, m)
    return m


def _next_boundary(
    schedule: RateSchedule, gen_ids: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Vector twin of :meth:`RateSchedule.next_boundary`; ``inf`` for none."""
    best = np.full(t.shape, np.inf)
    for w in schedule:
        in_range = (gen_ids >= w.gen_lo) & (gen_ids < w.gen_hi)
        for edge in (w.start, w.end):
            better = in_range & (edge > t + _EPS) & (edge < best)
            if better.any():
                best = np.where(better, edge, best)
    return best


def advance_interval(
    schedule: Optional[RateSchedule],
    gen_ids: Any,
    now: Any,
    base_interval: float,
    stop_at: Any,
) -> np.ndarray:
    """The wake time ending one publication interval begun at ``now``.

    Per-generator, vectorized; replicates :func:`rate_sleep` float-op for
    float-op, so the returned times equal ``sim.now`` after ``yield from
    rate_sleep(...)`` exactly.  A generator that ``rate_sleep`` would leave
    untouched (entry with ``now >= stop_at - _EPS``) keeps its entry time —
    callers detect the lack of progress the same way the publish loops do.
    """
    ids = np.asarray(gen_ids, dtype=np.int64)
    now = np.array(now, dtype=float)
    stop = np.broadcast_to(np.asarray(stop_at, dtype=float), now.shape)
    if schedule is None or not len(schedule):
        return now + base_interval
    need = np.ones(now.shape)
    returned = np.zeros(now.shape, dtype=bool)
    while True:
        work = ~returned & (need > _EPS)
        if not work.any():
            return now
        stopped = work & (now >= stop - _EPS)
        returned |= stopped
        work &= ~stopped
        if not work.any():
            continue
        m = _multiplier_at(schedule, ids, now)
        horizon = np.minimum(_next_boundary(schedule, ids, now), stop)
        frozen = work & (m <= 0.0)
        rest = work & ~frozen
        with np.errstate(divide="ignore", invalid="ignore"):
            remaining = need * base_interval / m
        finish = rest & (now + remaining <= horizon + _EPS)
        cont = rest & ~finish
        step = now + (horizon - now)
        need = np.where(
            cont, need - (horizon - now) * m / base_interval, need
        )
        now = np.where(finish, now + remaining, np.where(
            frozen | cont, step, now
        ))
        returned |= finish
