"""Recording receivers.

"Another Java program received data from the middleware.  Information of
the monitoring data (such as sending and receiving time, etc) was dumped
into a local text file for later analysis" (§III.B).  The receivers stamp
``t_arrived`` / ``t_received`` on each message's record; the "text file" is
the shared :class:`~repro.core.records.RecordBook`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.dedup import DedupIndex
from repro.jms import AckMode
from repro.jms.destination import Topic
from repro.narada.client import narada_connection_factory
from repro.telemetry.context import current as _telemetry
from repro.transport.base import ChannelClosed, MessageLost, TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.narada.config import NaradaConfig
    from repro.plog.deployment import PlogDeployment
    from repro.rgma.site import RGMADeployment
    from repro.sim.kernel import Simulator

#: The paper's subscriber selector: "this selector did not filter out any
#: data but just to simulate real uses" (§III.E).
PAPER_SELECTOR = "id<10000"


class NaradaReceiver:
    """One subscriber connection with a recording listener.

    With ``durable_name`` the subscription is durable: the broker retains
    delivered-but-unacked and offline messages for replay, and this side
    deduplicates redeliveries by ``(gen_id, seq)``.  With ``recover`` the
    receiver is *supervised*: :meth:`start` becomes a long-running process
    that reconnects and durably re-subscribes whenever its connection dies
    (a broker crash — or its own, via :meth:`close`, which models the
    subscriber process being killed and restarted by its supervisor).
    """

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        transport: Any,
        broker_address: tuple[str, int],
        node_name: str,
        topic: Topic,
        selector: Optional[str] = PAPER_SELECTOR,
        ack_mode: int = AckMode.AUTO_ACKNOWLEDGE,
        client_ack_batch: int = 10,
        config: Optional["NaradaConfig"] = None,
        durable_name: Optional[str] = None,
        recover: bool = False,
        reconnect_backoff: float = 0.25,
        name: Optional[str] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.transport = transport
        self.broker_address = broker_address
        self.node_name = node_name
        self.topic = topic
        self.selector = selector
        self.ack_mode = ack_mode
        self.client_ack_batch = client_ack_batch
        self.config = config
        self.durable_name = durable_name
        self.recover = recover
        self.reconnect_backoff = reconnect_backoff
        #: Fault-injector surface (consumer_crash / slow_consumer targets).
        self.name = name or f"narada-recv.{node_name}"
        self.record_cpu_multiplier = 1.0
        self.received = 0
        self.duplicates = 0
        #: Redeliveries the (gen_id, seq) index suppressed (durable mode).
        self.redeliveries = 0
        self.reconnects = 0
        self.crashes = 0
        self.connected = False
        self.stopped = False
        self._connection = None
        self._seen = DedupIndex()

    def start(self) -> Generator[Any, Any, None]:
        """Connect and subscribe; raises if the broker refuses.

        With ``recover`` this is a supervising loop instead: it keeps the
        subscription alive until :meth:`stop`, swallowing connection-level
        failures and retrying with a fixed backoff.
        """
        if not self.recover:
            yield from self._connect_once()
            return
        while not self.stopped:
            try:
                yield from self._connect_once()
            except (ChannelClosed, MessageLost, TransportError):
                self.connected = False
                yield self.sim.timeout(self.reconnect_backoff)
                continue
            # Watch the connection; reconnect + durable re-subscribe on EOF.
            while not self.stopped:
                yield self.sim.timeout(self.reconnect_backoff)
                channel = self._connection.provider.channel
                if channel.closed:
                    self.connected = False
                    break
            if self.stopped:
                return
            self.reconnects += 1

    def _connect_once(self) -> Generator[Any, Any, None]:
        factory = narada_connection_factory(
            self.sim,
            self.transport,
            self.cluster.node(self.node_name),
            self.broker_address[0],
            self.broker_address[1],
            self.config,
        )
        connection = yield from factory.create_connection()
        connection.start()
        session = connection.create_session(ack_mode=self.ack_mode)
        yield from session.create_subscriber(
            self.topic,
            selector=self.selector,
            listener=self._on_message,
            durable_name=self.durable_name,
        )
        self.connected = True
        self._connection = connection

    def close(self) -> None:
        """Consumer-crash hook: kill the subscriber process.

        Severs the connection abruptly (no unsubscribe — the durable
        subscription stays registered at the broker).  Without ``recover``
        the receiver stays down, like the plog consumer it mirrors; with
        ``recover`` the supervising loop restarts it, and the broker's
        durable replay plus the ``(gen_id, seq)`` index cover the gap.
        """
        self.crashes += 1
        self.connected = False
        if not self.recover:
            self.stopped = True
        if self._connection is not None:
            channel = self._connection.provider.channel
            if not channel.closed:
                channel.close()

    def stop(self) -> None:
        """Permanently shut the receiver down (ends the supervisor loop)."""
        self.stopped = True
        self.close()

    def _on_message(self, message: Any) -> None:
        record = getattr(message, "_record", None)
        if self.durable_name is not None and record is not None:
            # Exactly-once processing: replayed deliveries are acknowledged
            # (so the broker can settle its retention) but not re-counted.
            if not self._seen.mark(record.gen_id, record.seq):
                self.redeliveries += 1
                return
        self.received += 1
        if record is not None:
            # First delivery wins: a retried publish reaching a second
            # subscriber path counts once (the duplicate-% scorecard column).
            if record.t_received is not None:
                self.duplicates += 1
            else:
                record.t_arrived = getattr(
                    message, "_t_arrived_client", self.sim.now
                )
                record.t_received = self.sim.now
                tel = _telemetry()
                if tel is not None:
                    tel.mark(
                        record, "delivered", self.sim.now, "narada",
                        self.node_name,
                    )
        if (
            self.ack_mode == AckMode.CLIENT_ACKNOWLEDGE
            and self.received % self.client_ack_batch == 0
        ):
            message.acknowledge()


class PlogReceiver:
    """One consumer-group member with a recording record callback.

    ``t_arrived`` is when the fetch response carrying the record landed at
    the consumer (the pull analogue of delivery time); ``t_received`` is
    stamped after the per-record processing CPU.  The guard on
    ``t_received`` makes redeliveries after a rebalance (at-least-once)
    count once.
    """

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        deployment: "PlogDeployment",
        node_name: str,
        group: str = "grid.monitor",
        name: Optional[str] = None,
        dedup: Optional[DedupIndex] = None,
    ):
        self.sim = sim
        self.received = 0
        self.duplicates = 0
        #: Redeliveries suppressed by the shared ``(gen_id, seq)`` index —
        #: post-rebalance replay of records another member already
        #: processed (the idempotent-sink half of exactly-once).
        self.redeliveries = 0
        self._dedup = dedup
        self.consumer = deployment.consumer(
            cluster.node(node_name),
            name or f"consumer.{node_name}",
            group,
            on_record=self._on_record,
        )

    @property
    def connected(self) -> bool:
        return self.consumer._coord is not None and not self.consumer.closed

    def start(self) -> None:
        """Spawn the consumer's group-membership process."""
        self.sim.process(self._run(), name=f"{self.consumer.name}.main")

    def _run(self) -> Generator[Any, Any, None]:
        try:
            yield from self.consumer.start()
        except (ChannelClosed, TransportError):
            return

    def _on_record(self, value: Any, t_arrived: float) -> None:
        record = getattr(value, "_record", None)
        if self._dedup is not None and record is not None:
            if not self._dedup.mark(record.gen_id, record.seq):
                self.redeliveries += 1
                return
        self.received += 1
        if record is None:
            return
        if record.t_received is not None:
            self.duplicates += 1
            return
        record.t_arrived = t_arrived
        record.t_received = self.sim.now
        tel = _telemetry()
        if tel is not None:
            tel.mark(
                record, "delivered", self.sim.now, "plog", self.consumer.name
            )


class RgmaReceiver:
    """The paper's R-GMA subscriber: a 100 ms polling loop."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        deployment: "RGMADeployment",
        node_name: str,
        select_sql: str = "SELECT * FROM gridmon",
        consumer_index: int = 0,
        producer_type: Optional[str] = None,
        poll_interval: float = 0.1,
    ):
        self.sim = sim
        self.deployment = deployment
        self.client = deployment.consumer_client(
            cluster.node(node_name), consumer_index
        )
        self.select_sql = select_sql
        self.producer_type = producer_type
        self.poll_interval = poll_interval
        self.received = 0
        self.duplicates = 0
        self.connected = False

    def start(self) -> Generator[Any, Any, None]:
        yield from self.client.create(
            self.select_sql, producer_type=self.producer_type
        )
        self.connected = True
        self.sim.process(
            self.client.poll_loop(self._on_tuple, self.poll_interval),
            name="rgma.subscriber",
        )

    def _on_tuple(self, t: Any) -> None:
        self.received += 1
        record = t.meta.get("record")
        if record is not None:
            # A republished tuple (e.g. via a Secondary Producer) counts once.
            if record.t_received is not None:
                self.duplicates += 1
                return
            record.t_arrived = t.meta.get("t_poll_start", self.sim.now)
            record.t_received = self.sim.now
            tel = _telemetry()
            if tel is not None:
                tel.mark(record, "delivered", self.sim.now, "rgma", "subscriber")

    def stop(self) -> None:
        self.client.stop()
