"""Recording receivers.

"Another Java program received data from the middleware.  Information of
the monitoring data (such as sending and receiving time, etc) was dumped
into a local text file for later analysis" (§III.B).  The receivers stamp
``t_arrived`` / ``t_received`` on each message's record; the "text file" is
the shared :class:`~repro.core.records.RecordBook`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.jms import AckMode
from repro.jms.destination import Topic
from repro.narada.client import narada_connection_factory
from repro.telemetry.context import current as _telemetry
from repro.transport.base import ChannelClosed, TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.narada.config import NaradaConfig
    from repro.plog.deployment import PlogDeployment
    from repro.rgma.site import RGMADeployment
    from repro.sim.kernel import Simulator

#: The paper's subscriber selector: "this selector did not filter out any
#: data but just to simulate real uses" (§III.E).
PAPER_SELECTOR = "id<10000"


class NaradaReceiver:
    """One subscriber connection with a recording listener."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        transport: Any,
        broker_address: tuple[str, int],
        node_name: str,
        topic: Topic,
        selector: Optional[str] = PAPER_SELECTOR,
        ack_mode: int = AckMode.AUTO_ACKNOWLEDGE,
        client_ack_batch: int = 10,
        config: Optional["NaradaConfig"] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.transport = transport
        self.broker_address = broker_address
        self.node_name = node_name
        self.topic = topic
        self.selector = selector
        self.ack_mode = ack_mode
        self.client_ack_batch = client_ack_batch
        self.config = config
        self.received = 0
        self.duplicates = 0
        self.connected = False

    def start(self) -> Generator[Any, Any, None]:
        """Connect and subscribe; raises if the broker refuses."""
        factory = narada_connection_factory(
            self.sim,
            self.transport,
            self.cluster.node(self.node_name),
            self.broker_address[0],
            self.broker_address[1],
            self.config,
        )
        connection = yield from factory.create_connection()
        connection.start()
        session = connection.create_session(ack_mode=self.ack_mode)
        yield from session.create_subscriber(
            self.topic, selector=self.selector, listener=self._on_message
        )
        self.connected = True
        self._connection = connection

    def _on_message(self, message: Any) -> None:
        self.received += 1
        record = getattr(message, "_record", None)
        if record is not None:
            # First delivery wins: a retried publish reaching a second
            # subscriber path counts once (the duplicate-% scorecard column).
            if record.t_received is not None:
                self.duplicates += 1
            else:
                record.t_arrived = getattr(
                    message, "_t_arrived_client", self.sim.now
                )
                record.t_received = self.sim.now
                tel = _telemetry()
                if tel is not None:
                    tel.mark(
                        record, "delivered", self.sim.now, "narada",
                        self.node_name,
                    )
        if (
            self.ack_mode == AckMode.CLIENT_ACKNOWLEDGE
            and self.received % self.client_ack_batch == 0
        ):
            message.acknowledge()


class PlogReceiver:
    """One consumer-group member with a recording record callback.

    ``t_arrived`` is when the fetch response carrying the record landed at
    the consumer (the pull analogue of delivery time); ``t_received`` is
    stamped after the per-record processing CPU.  The guard on
    ``t_received`` makes redeliveries after a rebalance (at-least-once)
    count once.
    """

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        deployment: "PlogDeployment",
        node_name: str,
        group: str = "grid.monitor",
        name: Optional[str] = None,
    ):
        self.sim = sim
        self.received = 0
        self.duplicates = 0
        self.consumer = deployment.consumer(
            cluster.node(node_name),
            name or f"consumer.{node_name}",
            group,
            on_record=self._on_record,
        )

    @property
    def connected(self) -> bool:
        return self.consumer._coord is not None and not self.consumer.closed

    def start(self) -> None:
        """Spawn the consumer's group-membership process."""
        self.sim.process(self._run(), name=f"{self.consumer.name}.main")

    def _run(self) -> Generator[Any, Any, None]:
        try:
            yield from self.consumer.start()
        except (ChannelClosed, TransportError):
            return

    def _on_record(self, value: Any, t_arrived: float) -> None:
        self.received += 1
        record = getattr(value, "_record", None)
        if record is None:
            return
        if record.t_received is not None:
            self.duplicates += 1
            return
        record.t_arrived = t_arrived
        record.t_received = self.sim.now
        tel = _telemetry()
        if tel is not None:
            tel.mark(
                record, "delivered", self.sim.now, "plog", self.consumer.name
            )


class RgmaReceiver:
    """The paper's R-GMA subscriber: a 100 ms polling loop."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        deployment: "RGMADeployment",
        node_name: str,
        select_sql: str = "SELECT * FROM gridmon",
        consumer_index: int = 0,
        producer_type: Optional[str] = None,
        poll_interval: float = 0.1,
    ):
        self.sim = sim
        self.deployment = deployment
        self.client = deployment.consumer_client(
            cluster.node(node_name), consumer_index
        )
        self.select_sql = select_sql
        self.producer_type = producer_type
        self.poll_interval = poll_interval
        self.received = 0
        self.duplicates = 0
        self.connected = False

    def start(self) -> Generator[Any, Any, None]:
        yield from self.client.create(
            self.select_sql, producer_type=self.producer_type
        )
        self.connected = True
        self.sim.process(
            self.client.poll_loop(self._on_tuple, self.poll_interval),
            name="rgma.subscriber",
        )

    def _on_tuple(self, t: Any) -> None:
        self.received += 1
        record = t.meta.get("record")
        if record is not None:
            # A republished tuple (e.g. via a Secondary Producer) counts once.
            if record.t_received is not None:
                self.duplicates += 1
                return
            record.t_arrived = t.meta.get("t_poll_start", self.sim.now)
            record.t_received = self.sim.now
            tel = _telemetry()
            if tel is not None:
                tel.mark(record, "delivered", self.sim.now, "rgma", "subscriber")

    def stop(self) -> None:
        self.client.stop()
