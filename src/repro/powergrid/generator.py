"""A small dynamic model of one distributed power generator.

The paper's motivation (§I): many small renewable generators whose "power
output and voltage" must be monitored.  The model is a wind-like source:
power output follows a mean-reverting (Ornstein-Uhlenbeck-style) process
clipped to the unit's capacity; voltage sits near nominal with load-coupled
sag; a breaker trip zeroes output occasionally — giving the monitoring
stream realistic variety without dominating simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GeneratorState:
    """One sampled reading."""

    gen_id: int
    seq: int
    time: float
    power_kw: float
    voltage_v: float
    frequency_hz: float
    breaker_closed: bool
    site: str


#: Noise-block width: draws are pre-generated this many samples at a time.
_NOISE_BLOCK = 64


class PowerGenerator:
    """Stateful reading source for one generator.

    The three per-field ``rng.normal`` calls and the trip/reclose uniform
    that :meth:`sample` needs are drawn as one pre-generated noise block of
    ``_NOISE_BLOCK`` samples: one vectorized draw per block instead of four
    interpreter round-trips per reading — the per-message hot path of every
    per-process fleet.  The block is a recorded noise stream: a generator's
    trajectory is a pure function of its rng's initial state, regardless of
    when blocks refill.
    """

    NOMINAL_VOLTAGE = 415.0  # three-phase LV distribution
    NOMINAL_FREQUENCY = 50.0

    def __init__(
        self,
        gen_id: int,
        rng: np.random.Generator,
        capacity_kw: float = 50.0,
        site: str = "uk-site",
        trip_probability: float = 0.002,
    ):
        self.gen_id = gen_id
        self.rng = rng
        self.capacity_kw = capacity_kw
        self.site = site
        self.trip_probability = trip_probability
        self._power = capacity_kw * float(rng.uniform(0.2, 0.8))
        self._breaker_closed = True
        self._seq = 0
        self._cursor = _NOISE_BLOCK  # refill on first sample

    def _refill(self) -> None:
        # Columns: power innovation, voltage noise, frequency noise.
        self._normals = self.rng.standard_normal((_NOISE_BLOCK, 3))
        self._uniforms = self.rng.random(_NOISE_BLOCK)
        self._cursor = 0

    def sample(self, now: float) -> GeneratorState:
        """Advance the state one publish interval and read it."""
        if self._cursor >= _NOISE_BLOCK:
            self._refill()
        row = self._normals[self._cursor]
        u = self._uniforms[self._cursor]
        self._cursor += 1
        # Mean-reverting power with multiplicative noise.
        target = 0.55 * self.capacity_kw
        self._power += 0.15 * (target - self._power) + 0.06 * self.capacity_kw * float(row[0])
        self._power = float(np.clip(self._power, 0.0, self.capacity_kw))
        # Occasional breaker trip / reclose.
        if self._breaker_closed:
            if u < self.trip_probability:
                self._breaker_closed = False
        else:
            if u < 0.2:  # reclose fairly quickly
                self._breaker_closed = True
        power = self._power if self._breaker_closed else 0.0
        # Voltage sags slightly with output; small noise.
        voltage = self.NOMINAL_VOLTAGE * (
            1.0 - 0.01 * power / self.capacity_kw + 0.002 * float(row[1])
        )
        frequency = self.NOMINAL_FREQUENCY + 0.01 * float(row[2])
        self._seq += 1
        return GeneratorState(
            gen_id=self.gen_id,
            seq=self._seq,
            time=now,
            power_kw=round(power, 3),
            voltage_v=round(voltage, 2),
            frequency_hz=round(frequency, 3),
            breaker_closed=self._breaker_closed,
            site=self.site,
        )
