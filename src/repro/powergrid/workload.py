"""Fleet builders: many simulated generators publishing monitoring data.

Reproduces the paper's workload shape: generators are created at a fixed
interval (0.5 s for the Narada tests, 1 s for R-GMA), each "first slept for
a random time between 10 to 20 seconds to allow the monitoring data to
distribute evenly", then published every 10 seconds (§III.E, §III.F).

Fleet sizes and durations are scalable so the benchmark suite can run at
laptop scale; the paper-scale values are the defaults of
:class:`FleetConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.records import RecordBook
from repro.faults.recovery import RetryPolicy
from repro.jms import AckMode, Topic
from repro.jms.errors import IllegalStateException
from repro.jms.message import MapMessage
from repro.narada.client import narada_connection_factory
from repro.powergrid.generator import PowerGenerator
from repro.powergrid.payload import narada_map_message, rgma_row
from repro.powergrid.rates import RateSchedule, rate_sleep
from repro.transport.base import ChannelClosed, MessageLost, TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.narada.config import NaradaConfig
    from repro.plog.deployment import PlogDeployment
    from repro.rgma.site import RGMADeployment
    from repro.sim.kernel import Simulator

MONITORING_TOPIC = Topic("power.monitoring")


@dataclass
class FleetConfig:
    """Workload shape; defaults are the paper's values."""

    n_generators: int = 800
    publish_interval: float = 10.0
    creation_interval: float = 0.5
    warmup_min: float = 10.0
    warmup_max: float = 20.0
    #: Publishing duration per generator, measured from the end of its
    #: warm-up (paper: 30-minute tests).
    duration: float = 1800.0
    #: Absolute simulated stop time.  When set, every generator keeps
    #: publishing (and stays connected) until this instant, so all
    #: ``n_generators`` connections are concurrently open in steady state —
    #: the paper's "concurrent connections" axis.  Overrides ``duration``.
    stop_at: float | None = None
    #: Payload multiplier (comparison test 5 "Triple": x3 payload, 1/3 rate).
    payload_multiplier: int = 1
    #: Hosts that run generator client threads.
    client_nodes: tuple[str, ...] = ("hydra5", "hydra6", "hydra7", "hydra8")
    #: Skip the random warm-up (the R-GMA loss experiment).
    skip_warmup: bool = False
    #: "block": node k hosts the contiguous id range [k*n/K, (k+1)*n/K) —
    #: the paper's layout, letting each node's co-located receiver subscribe
    #: to its own generators with an id-range selector.  "roundrobin"
    #: interleaves instead.
    assignment: str = "block"
    #: Publisher-side recovery: retry failed publishes with exponential
    #: backoff (``None`` keeps the paper's one-shot behaviour, where a lost
    #: publish is simply a lost message).
    retry: Optional[RetryPolicy] = None
    #: On a dead connection, fail over to the next broker address instead
    #: of reconnecting to the same one (needs >1 broker to matter).
    failover: bool = False
    #: Mid-run per-generator rate overrides (``repro.scenario`` compiles
    #: scenario events into one).  ``None`` keeps the paper's fixed rates.
    rates: Optional[RateSchedule] = None

    def node_index(self, gen_id: int) -> int:
        """Which client node hosts generator ``gen_id``."""
        k = len(self.client_nodes)
        if self.assignment == "block":
            return min(k - 1, gen_id * k // max(1, self.n_generators))
        return gen_id % k

    def id_range(self, node_index: int) -> tuple[int, int]:
        """[lo, hi) of generator ids hosted on ``client_nodes[node_index]``
        under block assignment: ``gen_id*k//n == j  <=>  lo <= gen_id < hi``
        with ``lo = ceil(j*n/k)``."""
        k = len(self.client_nodes)
        n = self.n_generators
        lo = (node_index * n + k - 1) // k
        hi = ((node_index + 1) * n + k - 1) // k
        return lo, hi

    def scaled(self, scale: float) -> "FleetConfig":
        """A laptop-scale variant: fewer generators, compressed phases."""
        import dataclasses

        return dataclasses.replace(
            self,
            n_generators=max(1, int(self.n_generators * scale)),
            duration=max(30.0, self.duration * scale),
            creation_interval=self.creation_interval * scale,
        )


@dataclass
class FleetStats:
    connections_ok: int = 0
    connections_refused: int = 0
    publishes_attempted: int = 0
    publish_failures: int = 0
    #: Recovery counters (only move when ``FleetConfig.retry`` is set).
    publish_retries: int = 0
    reconnects: int = 0


class NaradaFleet:
    """Generators publishing JMS MapMessages to Narada brokers."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        transport: Any,
        broker_addresses: list[tuple[str, int]],
        fleet: FleetConfig,
        book: RecordBook,
        config: Optional["NaradaConfig"] = None,
        topic: Topic = MONITORING_TOPIC,
    ):
        self.sim = sim
        self.cluster = cluster
        self.transport = transport
        self.broker_addresses = broker_addresses
        self.fleet = fleet
        self.book = book
        self.config = config
        self.topic = topic
        self.stats = FleetStats()
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self.sim.process(self._spawner(), name="narada.fleet")

    def _spawner(self) -> Generator[Any, Any, None]:
        for i in range(self.fleet.n_generators):
            node_index = self.fleet.node_index(i)
            node_name = self.fleet.client_nodes[node_index]
            broker_index = node_index % len(self.broker_addresses)
            self.sim.process(
                self._generator(i, node_name, broker_index), name=f"gen{i}"
            )
            yield self.sim.timeout(self.fleet.creation_interval)

    def _connect(
        self, node_name: str, broker_index: int
    ) -> Generator[Any, Any, tuple]:
        """Build connection/session/publisher against one broker address."""
        broker = self.broker_addresses[broker_index % len(self.broker_addresses)]
        factory = narada_connection_factory(
            self.sim,
            self.transport,
            self.cluster.node(node_name),
            broker[0],
            broker[1],
            self.config,
        )
        connection = yield from factory.create_connection()
        connection.start()
        session = connection.create_session()
        publisher = session.create_publisher(self.topic)
        return connection, publisher

    def _generator(
        self, gen_id: int, node_name: str, broker_index: int
    ) -> Generator[Any, Any, None]:
        sim = self.sim
        fleet = self.fleet
        try:
            connection, publisher = yield from self._connect(
                node_name, broker_index
            )
        except (ChannelClosed, TransportError):
            self.stats.connections_refused += 1
            return
        self.stats.connections_ok += 1
        model = PowerGenerator(
            gen_id, sim.rng.stream(f"powergen.{gen_id}"),
            site=f"site-{gen_id % 97}",
        )
        if not fleet.skip_warmup:
            yield sim.timeout(
                sim.rng.uniform("fleet.warmup", fleet.warmup_min, fleet.warmup_max)
            )
        interval = fleet.publish_interval * fleet.payload_multiplier
        stop_at = fleet.stop_at if fleet.stop_at is not None else sim.now + fleet.duration
        retry = fleet.retry
        seq = 0
        while sim.now < stop_at:
            seq += 1
            state = model.sample(sim.now)
            message = narada_map_message(state)
            if fleet.payload_multiplier > 1:
                _inflate_payload(message, fleet.payload_multiplier)
            record = self.book.new_record(gen_id, seq, sim.now)
            message._record = record
            self.stats.publishes_attempted += 1
            published = False
            attempt = 0
            while True:
                try:
                    yield from publisher.publish(message)
                    record.t_after_send = sim.now
                    published = True
                    break
                except (MessageLost, ChannelClosed, IllegalStateException) as exc:
                    # IllegalStateException: the session died under us (a
                    # failed reconnect leaves the old closed one in place) —
                    # same recovery as a dead connection.
                    if retry is None or not retry.enabled or attempt >= retry.retries:
                        break
                    attempt += 1
                    self.stats.publish_retries += 1
                    yield sim.timeout(
                        retry.delay(attempt, sim, f"narada.retry.{gen_id}")
                    )
                    if isinstance(exc, (ChannelClosed, IllegalStateException)):
                        # Dead connection: rebuild it — against the next
                        # broker when failing over, the same one otherwise.
                        if fleet.failover:
                            broker_index = (
                                broker_index + 1
                            ) % len(self.broker_addresses)
                        try:
                            connection.close()
                        except (ChannelClosed, TransportError):
                            pass
                        try:
                            connection, publisher = yield from self._connect(
                                node_name, broker_index
                            )
                            self.stats.reconnects += 1
                        except (ChannelClosed, TransportError):
                            continue  # broker still down; back off again
            if not published:
                self.stats.publish_failures += 1
            yield from rate_sleep(sim, fleet.rates, gen_id, interval, stop_at)
        connection.close()


def _inflate_payload(message: MapMessage, multiplier: int) -> None:
    """Comparison test 5: replicate the field set to triple the payload."""
    names = list(message.item_names())
    for k in range(1, multiplier):
        for name in names:
            jms_type, value = message._body[name]
            message._body[f"{name}_x{k}"] = (jms_type, value)


class PlogFleet:
    """Generators producing keyed records to a partitioned-log deployment.

    Each generator is its own producer with its own connection to the
    broker owning its partition — the "concurrent connections" axis is the
    same as Narada's — but the broker side holds no thread per connection,
    which is what lets this fleet scale past the Narada OOM wall.
    ``t_after_send`` is stamped by the producer's ack machinery (acks=1),
    not by the fleet loop.
    """

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        deployment: "PlogDeployment",
        fleet: FleetConfig,
        book: RecordBook,
    ):
        self.sim = sim
        self.cluster = cluster
        self.deployment = deployment
        self.fleet = fleet
        self.book = book
        self.stats = FleetStats()
        self._producers: list = []
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self.sim.process(self._spawner(), name="plog.fleet")

    def _spawner(self) -> Generator[Any, Any, None]:
        for i in range(self.fleet.n_generators):
            node_index = self.fleet.node_index(i)
            node_name = self.fleet.client_nodes[node_index]
            self.sim.process(self._generator(i, node_name), name=f"pgen{i}")
            yield self.sim.timeout(self.fleet.creation_interval)

    @property
    def publish_failures(self) -> int:
        return self.stats.publish_failures + sum(
            p.send_failures for p in self._producers
        )

    def _generator(
        self, gen_id: int, node_name: str
    ) -> Generator[Any, Any, None]:
        sim = self.sim
        fleet = self.fleet
        topic = self.deployment.topic
        producer = self.deployment.producer(
            self.cluster.node(node_name), f"producer.{gen_id}"
        )
        try:
            yield from producer.connect_for(topic, gen_id)
        except (ChannelClosed, TransportError):
            self.stats.connections_refused += 1
            return
        self.stats.connections_ok += 1
        self._producers.append(producer)
        model = PowerGenerator(
            gen_id, sim.rng.stream(f"powergen.{gen_id}"),
            site=f"site-{gen_id % 97}",
        )
        if not fleet.skip_warmup:
            yield sim.timeout(
                sim.rng.uniform("fleet.warmup", fleet.warmup_min, fleet.warmup_max)
            )
        interval = fleet.publish_interval * fleet.payload_multiplier
        stop_at = fleet.stop_at if fleet.stop_at is not None else sim.now + fleet.duration
        seq = 0
        while sim.now < stop_at:
            seq += 1
            state = model.sample(sim.now)
            message = narada_map_message(state)
            if fleet.payload_multiplier > 1:
                _inflate_payload(message, fleet.payload_multiplier)
            record = self.book.new_record(gen_id, seq, sim.now)
            message._record = record
            self.stats.publishes_attempted += 1
            try:
                producer.send(
                    topic, gen_id, message, message.wire_size(), record=record
                )
            except ChannelClosed:
                self.stats.publish_failures += 1
            yield from rate_sleep(sim, fleet.rates, gen_id, interval, stop_at)
        # Graceful shutdown: a record sent within ``linger`` of the loop's
        # last iteration is still batched client-side — drain it before
        # tearing the channels down, like Kafka's flushing close().
        yield from producer.flush()
        producer.close()


class RgmaFleet:
    """Generators inserting rows through R-GMA Primary Producers."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        deployment: "RGMADeployment",
        fleet: FleetConfig,
        book: RecordBook,
        table: str = "gridmon",
    ):
        self.sim = sim
        self.cluster = cluster
        self.deployment = deployment
        self.fleet = fleet
        self.book = book
        self.table = table
        self.stats = FleetStats()
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        self.sim.process(self._spawner(), name="rgma.fleet")

    def _spawner(self) -> Generator[Any, Any, None]:
        for i in range(self.fleet.n_generators):
            node_index = self.fleet.node_index(i)
            node_name = self.fleet.client_nodes[node_index]
            self.sim.process(
                self._generator(i, node_name, node_index), name=f"rgen{i}"
            )
            yield self.sim.timeout(self.fleet.creation_interval)

    def _generator(
        self, gen_id: int, node_name: str, node_index: int
    ) -> Generator[Any, Any, None]:
        from repro.rgma.errors import RGMAException

        sim = self.sim
        fleet = self.fleet
        client = self.deployment.producer_client(
            self.cluster.node(node_name), node_index
        )
        try:
            yield from client.create(self.table)
        except (RGMAException, ChannelClosed, TransportError):
            self.stats.connections_refused += 1
            return
        self.stats.connections_ok += 1
        model = PowerGenerator(
            gen_id, sim.rng.stream(f"powergen.{gen_id}"),
            site=f"site-{gen_id % 97}"[:20],
        )
        if not fleet.skip_warmup:
            yield sim.timeout(
                sim.rng.uniform("fleet.warmup", fleet.warmup_min, fleet.warmup_max)
            )
        stop_at = fleet.stop_at if fleet.stop_at is not None else sim.now + fleet.duration
        seq = 0
        while sim.now < stop_at:
            seq += 1
            state = model.sample(sim.now)
            row = rgma_row(state)
            record = self.book.new_record(gen_id, seq, sim.now)
            self.stats.publishes_attempted += 1
            try:
                yield from client.insert(row, meta={"record": record})
                record.t_after_send = sim.now
            except (RGMAException, ChannelClosed, TransportError):
                self.stats.publish_failures += 1
            yield from rate_sleep(
                sim, fleet.rates, gen_id, fleet.publish_interval, stop_at
            )
        yield from client.close()
