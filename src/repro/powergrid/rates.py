"""Mid-run publication-rate overrides.

The paper's workload publishes at a fixed per-generator rate for the whole
test.  Grid *scenarios* (``repro.scenario``) need the rate to move while the
fleet is running — an alarm storm multiplies a region's publication rate for
a window, a substation outage silences its generators — without restarting
the fleet or touching its RNG draws.

A :class:`RateSchedule` is pure data: a sorted set of piecewise-constant
:class:`RateWindow` entries, each multiplying the base publication rate of a
contiguous generator-id cohort over an absolute time window.  Overlapping
windows compose by *product* (a regional storm on top of a fleet-wide surge
multiplies), and a multiplier of ``0`` silences the cohort (publisher
die-off).  Ramps are discretized into constant steps at compile time
(:mod:`repro.scenario.compiler`), so the schedule stays piecewise-constant
and every window boundary is known in advance.

The fleet loops sleep through :func:`rate_sleep`, which integrates the
schedule: under multiplier ``m`` a generator accrues publication "work" at
``m`` base-intervals per base-interval, and it wakes at every window
boundary to re-read the multiplier — so a rate change takes effect *at the
event timestamp*, not at the generator's next full sleep.  With no schedule
the sleep degenerates to the paper's plain ``timeout(interval)``, event for
event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Boundary comparisons tolerate accumulated float error from the phase
#: integration without ever sleeping a zero-length segment.
_EPS = 1e-9


@dataclass(frozen=True)
class RateWindow:
    """One piecewise-constant rate multiplier.

    Applies to generators with ``gen_lo <= gen_id < gen_hi`` between the
    absolute simulated times ``start`` (inclusive) and ``end`` (exclusive).
    """

    start: float
    end: float
    gen_lo: int
    gen_hi: int
    multiplier: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("rate window must start at >= 0")
        if self.end <= self.start:
            raise ValueError("rate window must end after it starts")
        if self.gen_hi <= self.gen_lo:
            raise ValueError("rate window needs a non-empty generator range")
        if self.multiplier < 0:
            raise ValueError("rate multiplier must be >= 0")

    def covers(self, gen_id: int, t: float) -> bool:
        return (
            self.gen_lo <= gen_id < self.gen_hi and self.start <= t < self.end
        )


class RateSchedule:
    """A builder-style ordered set of :class:`RateWindow` entries."""

    def __init__(self) -> None:
        self._windows: list[RateWindow] = []

    def window(
        self,
        start: float,
        end: float,
        gen_lo: int,
        gen_hi: int,
        multiplier: float,
    ) -> "RateSchedule":
        """Multiply the cohort's base rate by ``multiplier`` over a window."""
        self._windows.append(RateWindow(start, end, gen_lo, gen_hi, multiplier))
        self._windows.sort(
            key=lambda w: (w.start, w.end, w.gen_lo, w.gen_hi, w.multiplier)
        )
        return self

    @property
    def windows(self) -> tuple[RateWindow, ...]:
        return tuple(self._windows)

    def __iter__(self) -> Iterator[RateWindow]:
        return iter(self._windows)

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RateSchedule {len(self._windows)} windows>"

    def multiplier_at(self, gen_id: int, t: float) -> float:
        """Product of every active window's multiplier for one generator."""
        multiplier = 1.0
        for w in self._windows:
            if w.covers(gen_id, t):
                multiplier *= w.multiplier
        return multiplier

    def next_boundary(self, gen_id: int, t: float) -> float | None:
        """The next window edge after ``t`` that affects ``gen_id``.

        Between consecutive boundaries the multiplier is constant, so a
        sleeping generator only ever needs to wake at the next one.
        """
        best: float | None = None
        for w in self._windows:
            if not (w.gen_lo <= gen_id < w.gen_hi):
                continue
            for edge in (w.start, w.end):
                if edge > t + _EPS and (best is None or edge < best):
                    best = edge
        return best

    def cache_key(self) -> tuple:
        """Stable tuple for sweep-cache keys."""
        return tuple(
            (w.start, w.end, w.gen_lo, w.gen_hi, w.multiplier)
            for w in self._windows
        )


def rate_sleep(
    sim: "Simulator",
    schedule: RateSchedule | None,
    gen_id: int,
    base_interval: float,
    stop_at: float,
) -> Generator[Any, Any, None]:
    """Sleep one *publication interval* of work under ``schedule``.

    Phase integration: the generator owes one base interval of waiting; a
    multiplier ``m`` burns that debt ``m`` times faster (``m = 0`` freezes
    it).  The sleep is segmented at window boundaries, so the effective rate
    changes exactly when the schedule says — a generator mid-sleep when a
    burst starts finishes the *remaining* fraction at the burst rate.

    Returns as soon as the debt is paid or ``stop_at`` is reached (the
    caller's publish loop re-checks ``sim.now < stop_at`` anyway).
    """
    if schedule is None or not len(schedule):
        yield sim.timeout(base_interval)
        return
    need = 1.0  # fraction of one base interval still owed
    while need > _EPS:
        now = sim.now
        if now >= stop_at - _EPS:
            return
        m = schedule.multiplier_at(gen_id, now)
        boundary = schedule.next_boundary(gen_id, now)
        horizon = stop_at if boundary is None else min(boundary, stop_at)
        if m <= 0.0:
            # Silenced: hold the debt until the window lifts (or the run ends).
            yield sim.timeout(horizon - now)
            continue
        remaining = need * base_interval / m
        if now + remaining <= horizon + _EPS:
            yield sim.timeout(remaining)
            return
        yield sim.timeout(horizon - now)
        need -= (horizon - now) * m / base_interval
