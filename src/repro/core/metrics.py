"""The paper's performance metrics (§III.C), vectorised with numpy.

"RTT was calculated as the mean round-trip time of all the messages. ...
RTT variation was calculated as the standard deviation (STDDEV) of all the
round-trip times.  Percentile of RTT was the percentage of the round-trip
times."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.records import MessageRecord, RecordBook

#: The percentile grid used by every percentile figure (Figs 4, 8-10, 12, 14).
PERCENTILE_POINTS = (95.0, 96.0, 97.0, 98.0, 99.0, 100.0)


@dataclass(frozen=True)
class RttStats:
    """Headline numbers for one test run."""

    count: int
    sent: int
    mean_ms: float
    stddev_ms: float
    min_ms: float
    max_ms: float
    loss_rate: float

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"RTT {self.mean_ms:.1f} ms ± {self.stddev_ms:.1f} "
            f"(n={self.count}, loss {self.loss_rate * 100:.2f}%)"
        )


@dataclass(frozen=True)
class PhaseBreakdown:
    """Fig 15: mean phase durations, RTT = PRT + PT + SRT."""

    prt_ms: float
    pt_ms: float
    srt_ms: float

    @property
    def rtt_ms(self) -> float:
        return self.prt_ms + self.pt_ms + self.srt_ms


def rtt_stats(book: RecordBook, since: float = 0.0) -> RttStats:
    """Mean/STDDEV RTT and loss over messages sent at/after ``since``.

    Edge cases: an empty window (nothing sent) is all-zeros with zero loss;
    a window where everything sent was lost keeps NaN latencies (there is
    no RTT to report, and a zero would read as "instant") with loss 1.0.
    """
    relevant = [r for r in book.records if r.t_before_send >= since]
    sent = len(relevant)
    rtts = np.array([r.rtt for r in relevant if r.delivered], dtype=float)
    if rtts.size == 0:
        if sent == 0:
            return RttStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return RttStats(0, sent, float("nan"), float("nan"), float("nan"),
                        float("nan"), 1.0)
    return RttStats(
        count=int(rtts.size),
        sent=sent,
        mean_ms=float(rtts.mean() * 1e3),
        stddev_ms=float(rtts.std(ddof=0) * 1e3),
        min_ms=float(rtts.min() * 1e3),
        max_ms=float(rtts.max() * 1e3),
        loss_rate=1.0 - rtts.size / sent if sent else 0.0,
    )


def loss_rate(sent: int, received: int) -> float:
    """Fraction of messages lost."""
    if received > sent:
        raise ValueError(f"received {received} > sent {sent}")
    return 0.0 if sent == 0 else 1.0 - received / sent


def percentile_curve(
    rtts_seconds: Sequence[float] | np.ndarray,
    points: Sequence[float] = PERCENTILE_POINTS,
) -> list[tuple[float, float]]:
    """(percentile, RTT ms) pairs — one figure series.

    ``numpy.percentile`` with linear interpolation; the 100th percentile is
    the maximum, matching how the paper's plots terminate.  No samples →
    no curve (an empty list, not NaN points, so plots and tables simply
    omit the series instead of rendering NaNs).
    """
    arr = np.asarray(rtts_seconds, dtype=float)
    if arr.size == 0:
        return []
    values = np.percentile(arr, list(points)) * 1e3
    return [(float(p), float(v)) for p, v in zip(points, values)]


def within_threshold(
    rtts_seconds: Sequence[float] | np.ndarray, threshold_s: float
) -> float:
    """Fraction of messages within ``threshold_s`` (e.g. the paper's
    '99.8% of messages arrived within 100 milliseconds').

    With zero samples the constraint is vacuously satisfied (1.0); note
    that loss is tracked separately, so "nothing delivered" shows up in
    ``loss_rate``, not here.
    """
    arr = np.asarray(rtts_seconds, dtype=float)
    if arr.size == 0:
        return 1.0
    return float((arr <= threshold_s).mean())


def decompose(book: RecordBook, since: float = 0.0) -> PhaseBreakdown:
    """Mean PRT / PT / SRT over fully-stamped delivered messages."""
    rows = [
        r
        for r in book.records
        if r.delivered
        and r.t_arrived is not None
        and r.t_after_send is not None
        and r.t_before_send >= since
    ]
    if not rows:
        return PhaseBreakdown(float("nan"), float("nan"), float("nan"))
    prt = np.array([r.prt for r in rows])
    srt = np.array([r.srt for r in rows])
    pt = np.array([r.pt for r in rows])
    return PhaseBreakdown(
        prt_ms=float(prt.mean() * 1e3),
        pt_ms=float(pt.mean() * 1e3),
        srt_ms=float(srt.mean() * 1e3),
    )


def soft_realtime_compliance(
    book: RecordBook,
    deadline_s: float = 5.0,
    max_loss: float = 0.005,
    since: float = 0.0,
) -> tuple[bool, float, float]:
    """The paper's §I requirement: data within ~5 s, delays/loss < 0.5 %.

    Returns (compliant, fraction_late_or_lost, loss_rate).
    """
    relevant = [r for r in book.records if r.t_before_send >= since]
    if not relevant:
        return True, 0.0, 0.0
    late_or_lost = sum(
        1 for r in relevant if not r.delivered or r.rtt > deadline_s
    )
    lost = sum(1 for r in relevant if not r.delivered)
    frac = late_or_lost / len(relevant)
    return frac <= max_loss, frac, lost / len(relevant)
