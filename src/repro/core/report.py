"""Plain-text rendering of tables and figure series."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.experiment import SeriesPoint


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    series: Mapping[str, Sequence["SeriesPoint"]],
) -> str:
    """All series merged into one x-indexed table (like reading the figure)."""
    labels = list(series)
    xs = sorted({p.x for pts in series.values() for p in pts})
    by_label = {
        label: {p.x: p.y for p in pts} for label, pts in series.items()
    }
    headers = [x_label] + [f"{label} ({y_label})" for label in labels]
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for label in labels:
            row.append(by_label[label].get(x, float("nan")))
        rows.append(row)
    return render_table(headers, rows)
