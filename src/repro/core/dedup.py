"""Shared ``(source, seq)`` delivery deduplication.

Every exactly-once path in the system rests on the same primitive: a
publisher-scoped, monotonically numbered stream in which redeliveries
(retries, replays, failover overlap) must be detected and suppressed.  The
edge tier's long-poll clients, Narada durable-subscription replay and the
plog idempotent-producer broker state all share :class:`DedupIndex` rather
than growing three parallel implementations.

The index is compact by construction: per source it keeps a contiguous
*floor* (every sequence at or below it has been seen) plus a sparse set of
out-of-order sightings above the floor.  An in-order stream therefore costs
O(1) memory per source no matter how long it runs; reordering costs memory
proportional to the reordering window only, and the floor advances to
swallow the sparse set as gaps fill.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set


class DedupIndex:
    """First-sighting index over ``(source, seq)`` delivery keys.

    ``mark()`` returns ``True`` exactly once per key — callers deliver on
    ``True`` and count a suppressed redelivery on ``False``.  Sequences are
    integers, assumed to start at 0 (or any non-negative value) and to be
    assigned contiguously per source by the publisher.
    """

    def __init__(self) -> None:
        #: source -> highest seq S such that all of 0..S have been seen.
        self._floor: Dict[Hashable, int] = {}
        #: source -> out-of-order sightings above the floor.
        self._above: Dict[Hashable, Set[int]] = {}
        #: Total first sightings (unique keys marked).
        self.unique = 0
        #: Total suppressed re-sightings.
        self.repeats = 0

    # ----------------------------------------------------------------- mark
    def mark(self, source: Hashable, seq: int) -> bool:
        """Record a sighting; ``True`` iff this is the first one."""
        floor = self._floor.get(source, -1)
        if seq <= floor:
            self.repeats += 1
            return False
        above = self._above.get(source)
        if above is not None and seq in above:
            self.repeats += 1
            return False
        if seq == floor + 1:
            floor += 1
            # Gaps may have filled: advance the floor through the sparse set.
            if above:
                while floor + 1 in above:
                    floor += 1
                    above.discard(floor)
                if not above:
                    del self._above[source]
            self._floor[source] = floor
        else:
            self._above.setdefault(source, set()).add(seq)
        self.unique += 1
        return True

    def seen(self, source: Hashable, seq: int) -> bool:
        """Whether ``(source, seq)`` has been marked (no side effects)."""
        if seq <= self._floor.get(source, -1):
            return True
        above = self._above.get(source)
        return above is not None and seq in above

    # ------------------------------------------------------------ watermarks
    def next_expected(self, source: Hashable) -> int:
        """The lowest sequence not yet contiguously seen for ``source``.

        This is the idempotent-producer watermark: a broker accepting only
        ``seq == next_expected(pid)`` (per batch base) guarantees the log
        holds each producer sequence exactly once, in order.
        """
        return self._floor.get(source, -1) + 1

    def mark_run(self, source: Hashable, start_seq: int, count: int) -> None:
        """Mark ``count`` contiguous sequences starting at ``start_seq``.

        Used when whole batches are admitted atomically (plog appends).
        """
        for seq in range(start_seq, start_seq + count):
            self.mark(source, seq)

    # ----------------------------------------------------------- introspection
    def sources(self) -> int:
        return len(self._floor.keys() | self._above.keys())

    def snapshot(self) -> Dict[Hashable, int]:
        """Per-source contiguous floors (for replication/recovery hand-off)."""
        return dict(self._floor)

    def restore(self, floors: Dict[Hashable, int]) -> None:
        """Raise floors to at least ``floors`` (monotonic merge)."""
        for source, floor in floors.items():
            if floor > self._floor.get(source, -1):
                self._floor[source] = floor
                above = self._above.get(source)
                if above:
                    stale = {seq for seq in above if seq <= floor}
                    above -= stale
                    if not above:
                        del self._above[source]

    def __len__(self) -> int:
        return self.unique

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DedupIndex(sources={self.sources()}, unique={self.unique}, "
            f"repeats={self.repeats})"
        )
