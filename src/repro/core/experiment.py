"""Experiment result containers shared by the harness and benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.report import render_series, render_table


@dataclass
class SeriesPoint:
    """One x/y point of a figure series, with optional extras."""

    x: float
    y: float
    extra: dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """What a harness experiment returns.

    ``series`` maps a legend label (e.g. "RTT", "STDDEV2") to its points;
    ``table`` is an optional ready-to-print row set; ``notes`` collects
    observations the paper states in prose (OOM walls, loss rates).
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[SeriesPoint]] = field(default_factory=dict)
    table: Optional[tuple[list[str], list[list[Any]]]] = None
    notes: list[str] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def add_point(self, label: str, x: float, y: float, **extra: float) -> None:
        self.series.setdefault(label, []).append(SeriesPoint(x, y, dict(extra)))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_dict(self) -> dict:
        """JSON-serialisable form (for tooling and plotting scripts)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {
                label: [
                    {"x": p.x, "y": p.y, **({"extra": p.extra} if p.extra else {})}
                    for p in points
                ]
                for label, points in self.series.items()
            },
            "table": (
                {"headers": self.table[0], "rows": self.table[1]}
                if self.table is not None
                else None
            ),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Human-readable reproduction of the figure/table data."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.table is not None:
            headers, rows = self.table
            parts.append(render_table(headers, rows))
        if self.series:
            parts.append(
                render_series(self.x_label, self.y_label, self.series)
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
